"""repro — reproduction of Moise, Antoniu & Bougé (HPDC'10):
*Improving the Hadoop Map/Reduce Framework to Support Concurrent Appends
through the BlobSeer BLOB management system*.

The package provides:

* :mod:`repro.blobseer` — a Python reimplementation of the BlobSeer
  versioning BLOB store (providers, provider manager, distributed
  segment-tree metadata over a DHT, centralized version manager,
  replication, persistence);
* :mod:`repro.bsfs` — the BlobSeer File System layer (namespace manager,
  client block cache, layout/locality primitive);
* :mod:`repro.hdfs` — an HDFS baseline with the paper's semantics
  (write-once, no append, client buffering, readahead);
* :mod:`repro.mapreduce` — a Hadoop-style Map/Reduce engine with both the
  original (file-per-reducer) and the modified (shared-file append)
  output paths;
* :mod:`repro.sim` — a discrete-event cluster simulator standing in for
  the Grid'5000 testbed;
* :mod:`repro.experiments` — drivers that regenerate every figure of the
  paper's evaluation section.
"""

__version__ = "1.0.0"

from .common import (
    CHUNK_SIZE,
    BlobSeerConfig,
    ClusterConfig,
    ExperimentConfig,
    HDFSConfig,
    MapReduceConfig,
)

__all__ = [
    "__version__",
    "CHUNK_SIZE",
    "BlobSeerConfig",
    "ClusterConfig",
    "ExperimentConfig",
    "HDFSConfig",
    "MapReduceConfig",
]
