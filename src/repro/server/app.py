"""The HTTP blob/file front-end: real traffic against the BlobSeer stack.

One :class:`BlobServer` is one network-facing deployment: an
:class:`~repro.engine.aio.AsyncioEngine` over the threaded components
(version manager, providers, namespace manager), the sans-IO protocol
cores on top, and a handwritten HTTP/1.1 loop (:mod:`repro.server.http`)
in front. Every concurrent connection drives its own protocol
generators as asyncio tasks, so hundreds of clients share one process —
concurrent appends serialize exactly where BlobSeer says they should
(the version manager's ticket/commit queue) and nowhere else.

Endpoints (all bodies are raw bytes; responses are JSON unless the
route returns data):

==========================================  =================================
``POST /blob``                              create a BLOB → ``{"blob_id"}``
``POST /blob/{id}/append``                  append body → version/offset
``PUT  /blob/{id}/write?offset=``           write-at-offset → version
``GET  /blob/{id}?version=&offset=&length=``  ranged versioned read (bytes)
``GET  /blob/{id}/stat?version=``           size/version metadata
``POST /fs/files{path}``                    create file (fresh BLOB behind)
``POST /fs/append{path}``                   two-step BSFS append
``GET  /fs/files{path}?offset=&length=``    read through the namespace size
``GET  /fs/stat{path}``                     file status
``GET  /fs/list{path}``                     directory listing
``POST /fs/mkdirs{path}``                   create directories
``POST /fs/rename?src=&dst=``               rename
``DELETE /fs/files{path}?recursive=``       delete
``GET  /healthz``, ``GET /metrics``         liveness / registry snapshot
==========================================  =================================

Observability is threaded through every request: one ``http.request``
span per request (child ops hang off it through the engine's
trace-parent handoff), a per-route latency histogram
(``http.<route>_s``), and ``http.requests``/``http.errors`` counters —
the same :class:`~repro.obs.MetricsRegistry` the load-test harness
reads its p50/p99 tables from.

Shutdown is graceful by contract: :meth:`BlobServer.stop` stops
accepting, drains (then cancels) open connections, and closes the
service so the version manager cancels every armed lease timer — a
long-running process must exit without leaked ``threading.Timer``
threads, and ``tests/server`` asserts ``live_lease_timers == 0`` after
a stop.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import Optional, Tuple

from ..blobseer.client import BlobSeerService
from ..bsfs.client import BSFS
from ..common.config import BlobSeerConfig
from ..common.errors import (
    AppendAbortedError,
    BlobNotFoundError,
    FileAlreadyExistsError,
    FileNotFoundInNamespaceError,
    FileSystemError,
    OutOfRangeReadError,
    PageNotFoundError,
    ReplicationError,
    VersionNotFoundError,
    VersionNotReadyError,
)
from ..engine.aio import AsyncioEngine
from ..engine.base import Payload
from ..obs import NULL_OBS, Observability
from .http import (
    DEFAULT_MAX_BODY,
    HttpError,
    Request,
    Response,
    read_request,
)

#: exception -> HTTP status for expected failures; anything else is a 500
_ERROR_STATUS = (
    (FileAlreadyExistsError, 409),
    (FileNotFoundInNamespaceError, 404),
    (FileSystemError, 400),
    (BlobNotFoundError, 404),
    (VersionNotFoundError, 404),
    (VersionNotReadyError, 409),
    (AppendAbortedError, 409),
    (PageNotFoundError, 404),
    (OutOfRangeReadError, 416),
    (ReplicationError, 503),
    (ValueError, 400),
)


class BlobServer:
    """One network-facing BlobSeer/BSFS deployment on asyncio."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[BlobSeerConfig] = None,
        n_providers: int = 8,
        seed: int = 0,
        obs: Optional[Observability] = None,
        max_body: int = DEFAULT_MAX_BODY,
        max_wait_threads: int = 256,
    ) -> None:
        self.obs = obs or NULL_OBS
        self.host = host
        self.port = port  # 0 until start() binds an ephemeral port
        self.engine = AsyncioEngine(
            seed=seed, obs=self.obs, max_wait_threads=max_wait_threads
        )
        self.service = BlobSeerService(
            config=config,
            n_providers=n_providers,
            seed=seed,
            obs=self.obs,
            engine=self.engine,
        )
        self.deployment = BSFS(service=self.service, obs=self.obs)
        self.namespace = self.deployment.namespace
        self.blobseer = self.service.protocol
        self.bsfs = self.deployment.protocol
        self._max_body = max_body
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()
        self._conn_ids = itertools.count(1)
        self._stopped = False
        registry = self.obs.registry
        self._c_requests = registry.counter("http.requests")
        self._c_errors = registry.counter("http.errors")
        self._c_conns = registry.counter("http.connections")
        self._tracer = self.obs.tracer

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self, drain_s: float = 2.0) -> None:
        """Graceful stop: close the listener, give open connections
        *drain_s* seconds to finish their in-flight request, cancel the
        stragglers, then release the service (which drains every armed
        lease timer) and the engine's wait pool. Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = list(self._conn_tasks)
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=drain_s)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self.service.close()
        self.engine.close()

    @property
    def live_lease_timers(self) -> int:
        """Armed version-manager lease timers (must be 0 after stop)."""
        return self.service.version_manager.live_lease_timers

    # -- connection loop -----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._c_conns.inc()
        client = f"http-{next(self._conn_ids)}"
        try:
            while not self._stopped:
                try:
                    request = await read_request(reader, self._max_body)
                except HttpError as err:
                    writer.write(
                        Response.error(err.status, err.message).encode(False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request, client)
                keep = request.keep_alive and not self._stopped
                writer.write(response.encode(keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # graceful stop cancels straggler connections; swallowing
            # here keeps asyncio's connection callback from logging it
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request, client: str) -> Response:
        """Route, run, observe, and map failures to statuses."""
        self._c_requests.inc()
        try:
            route, handler = self._route(request)
        except HttpError as err:
            self._c_errors.inc()
            return Response.error(err.status, err.message)
        registry = self.obs.registry
        span = self._tracer.start(
            "http.request",
            cat="http",
            track=client,
            route=route,
            method=request.method,
            path=request.path,
        )
        t0 = self.engine.now()
        try:
            self.engine.trace_parent(span)
            response = await handler(request, client)
        except HttpError as err:
            self._c_errors.inc()
            response = Response.error(err.status, err.message)
        except Exception as exc:  # noqa: BLE001 - mapped to HTTP statuses
            self._c_errors.inc()
            for exc_type, status in _ERROR_STATUS:
                if isinstance(exc, exc_type):
                    response = Response.error(status, str(exc))
                    break
            else:
                response = Response.error(
                    500, f"{type(exc).__name__}: {exc}"
                )
            span.set(error=type(exc).__name__)
        registry.histogram(f"http.{route}_s").observe(self.engine.now() - t0)
        span.finish(status=response.status)
        return response

    # -- routing -------------------------------------------------------------

    def _route(self, request: Request):
        """Resolve (route_name, handler); fills ``request.params``."""
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return "healthz", self._h_healthz
        if path == "/metrics" and method == "GET":
            return "metrics", self._h_metrics
        if path == "/blob" or path == "/blob/":
            if method == "POST":
                return "blob_create", self._h_blob_create
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/blob/"):
            rest = path[len("/blob/"):]
            blob_part, _, action = rest.partition("/")
            if not blob_part.isdigit():
                raise HttpError(400, f"bad blob id {blob_part!r}")
            request.params["blob_id"] = blob_part
            if action == "" and method == "GET":
                return "blob_read", self._h_blob_read
            if action == "" and method == "PUT":
                return "blob_write", self._h_blob_write
            if action == "append" and method == "POST":
                return "blob_append", self._h_blob_append
            if action == "stat" and method == "GET":
                return "blob_stat", self._h_blob_stat
            raise HttpError(
                405 if action in ("", "append", "stat") else 404,
                f"{method} {path} not routable",
            )
        for prefix, routes in _FS_ROUTES.items():
            if path.startswith(prefix):
                fs_path = path[len(prefix):] or "/"
                handler_name = routes.get(request.method)
                if handler_name is None:
                    raise HttpError(405, f"{method} not allowed on {prefix}")
                request.params["path"] = fs_path
                return handler_name, getattr(self, f"_h_{handler_name}")
        if path == "/fs/rename" and method == "POST":
            return "fs_rename", self._h_fs_rename
        raise HttpError(404, f"no route for {method} {path}")

    # -- handlers: service ---------------------------------------------------

    async def _h_healthz(self, request: Request, client: str) -> Response:
        return Response.json({"status": "ok"})

    async def _h_metrics(self, request: Request, client: str) -> Response:
        doc = self.obs.registry.snapshot()
        # the storage-plane placement view rides along: which policy is
        # routing pages, per-provider byte loads, and who is down (the
        # placement.* counters are already in the snapshot proper)
        pm = self.service.provider_manager
        doc["placement"] = {
            "policy": pm.policy.name,
            "read_policy": self.service.protocol.read_policy.name,
            "provider_load": pm.load_snapshot(),
            "down": pm.down_snapshot(),
        }
        return Response.json(doc)

    # -- handlers: blob plane ------------------------------------------------

    async def _h_blob_create(self, request: Request, client: str) -> Response:
        page_size = request.query_int("page_size")
        blob_id = self.service.create_blob(page_size)
        return Response.json({"blob_id": blob_id}, status=201)

    async def _h_blob_append(self, request: Request, client: str) -> Response:
        blob_id = int(request.params["blob_id"])
        if not request.body:
            raise HttpError(400, "append body must not be empty")
        version, offset = await self.engine.run(
            self.blobseer.append(client, blob_id, Payload(request.body))
        )
        return Response.json(
            {
                "blob_id": blob_id,
                "version": version,
                "offset": offset,
                "nbytes": len(request.body),
            }
        )

    async def _h_blob_write(self, request: Request, client: str) -> Response:
        blob_id = int(request.params["blob_id"])
        offset = request.query_int("offset")
        if offset is None:
            raise HttpError(400, "write requires an offset query parameter")
        if not request.body:
            raise HttpError(400, "write body must not be empty")
        version = await self.engine.run(
            self.blobseer.write(
                client, blob_id, offset, Payload(request.body)
            )
        )
        return Response.json(
            {"blob_id": blob_id, "version": version, "offset": offset}
        )

    async def _h_blob_read(self, request: Request, client: str) -> Response:
        blob_id = int(request.params["blob_id"])
        version = request.query_int("version")
        record, _ps = self.service.version_manager.resolve(blob_id, version)
        offset = request.query_int("offset", 0)
        length = request.query_int("length")
        if length is None:
            length = max(0, record.size - offset)
        _version, data = await self.engine.run(
            self.blobseer.read(
                client, blob_id, offset, length, version=record.version
            )
        )
        return Response(
            status=200,
            body=data if data is not None else b"",
            headers={
                "X-Blob-Version": str(record.version),
                "X-Blob-Size": str(record.size),
            },
        )

    async def _h_blob_stat(self, request: Request, client: str) -> Response:
        blob_id = int(request.params["blob_id"])
        version = request.query_int("version")
        record, page_size = self.service.version_manager.resolve(
            blob_id, version
        )
        return Response.json(
            {
                "blob_id": blob_id,
                "version": record.version,
                "size": record.size,
                "page_size": page_size,
                "kind": record.kind,
            }
        )

    # -- handlers: file plane ------------------------------------------------

    async def _h_fs_create(self, request: Request, client: str) -> Response:
        path = request.params["path"]
        page_size = request.query_int(
            "page_size", self.service.config.page_size
        )
        overwrite = request.query.get("overwrite", "") in ("1", "true")
        blob_id = self.service.create_blob(page_size)
        await self.engine.run(
            self.bsfs.create_file(
                client, path, blob_id, page_size, overwrite=overwrite
            )
        )
        if request.body:
            await self.engine.run(
                self.bsfs.append_file(client, path, Payload(request.body))
            )
        return Response.json({"path": path, "blob_id": blob_id}, status=201)

    async def _h_fs_append(self, request: Request, client: str) -> Response:
        path = request.params["path"]
        if not request.body:
            raise HttpError(400, "append body must not be empty")
        version = await self.engine.run(
            self.bsfs.append_file(client, path, Payload(request.body))
        )
        return Response.json(
            {"path": path, "version": version, "nbytes": len(request.body)}
        )

    async def _h_fs_read(self, request: Request, client: str) -> Response:
        path = request.params["path"]
        size = self.namespace.get_status(path).size
        offset = request.query_int("offset", 0)
        length = request.query_int("length")
        if length is None:
            length = max(0, size - offset)
        length = max(0, min(length, size - offset))
        if length == 0:
            return Response(status=200, body=b"", headers={"X-File-Size": str(size)})
        _version, data = await self.engine.run(
            self.bsfs.read_file(client, path, offset, length)
        )
        return Response(
            status=200,
            body=data if data is not None else b"",
            headers={"X-File-Size": str(size)},
        )

    async def _h_fs_stat(self, request: Request, client: str) -> Response:
        status = self.namespace.get_status(request.params["path"])
        return Response.json(_status_doc(status))

    async def _h_fs_list(self, request: Request, client: str) -> Response:
        entries = self.namespace.list_dir(request.params["path"])
        return Response.json({"entries": [_status_doc(s) for s in entries]})

    async def _h_fs_mkdirs(self, request: Request, client: str) -> Response:
        self.namespace.mkdirs(request.params["path"])
        return Response.json({"path": request.params["path"]}, status=201)

    async def _h_fs_delete(self, request: Request, client: str) -> Response:
        recursive = request.query.get("recursive", "") in ("1", "true")
        removed = self.namespace.delete(
            request.params["path"], recursive=recursive
        )
        if removed is None:
            raise HttpError(404, f"no such path {request.params['path']!r}")
        return Response.json({"deleted": request.params["path"]})

    async def _h_fs_rename(self, request: Request, client: str) -> Response:
        src, dst = request.query.get("src"), request.query.get("dst")
        if not src or not dst:
            raise HttpError(400, "rename requires src and dst")
        self.namespace.rename(src, dst)
        return Response.json({"src": src, "dst": dst})


#: prefix -> {method: handler suffix} for the file plane
_FS_ROUTES = {
    "/fs/files": {
        "POST": "fs_create",
        "GET": "fs_read",
        "DELETE": "fs_delete",
    },
    "/fs/append": {"POST": "fs_append"},
    "/fs/stat": {"GET": "fs_stat"},
    "/fs/list": {"GET": "fs_list"},
    "/fs/mkdirs": {"POST": "fs_mkdirs"},
}


def _status_doc(status) -> dict:
    return {
        "path": status.path,
        "is_directory": status.is_directory,
        "size": status.size,
    }


class ServerThread:
    """Run a :class:`BlobServer` on a dedicated event-loop thread.

    The synchronous harnesses (tests, the load-test's self-serve mode,
    CI) need a server they can start, hit over real sockets, and stop
    from ordinary blocking code.
    """

    def __init__(self, server: BlobServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Boot the loop thread; returns the bound ``(host, port)``."""
        self._thread = threading.Thread(
            target=self._run, name="blob-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self.server.host, self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful stop from any thread (idempotent)."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None and loop.is_running():
            loop.call_soon_threadsafe(event.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()
