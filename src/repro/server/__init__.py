"""``repro.server`` — an HTTP blob/file front-end over the asyncio engine.

The paper's stack served over real sockets: :class:`BlobServer` binds an
:class:`~repro.engine.aio.AsyncioEngine` deployment behind a handwritten
HTTP/1.1 loop (:mod:`.http`), so concurrent append traffic from many
network clients exercises exactly the versioning protocol the
simulations model. :class:`ServerThread` runs it from synchronous code
(tests, the load-test harness, CI); ``repro-serve`` (:mod:`.cli`) runs
it as a long-lived process with graceful signal-driven shutdown.
"""

from .app import BlobServer, ServerThread
from .http import HttpError, Request, Response

__all__ = [
    "BlobServer",
    "ServerThread",
    "HttpError",
    "Request",
    "Response",
]
