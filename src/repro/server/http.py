"""A small handwritten HTTP/1.1 layer over asyncio streams.

No web framework and no new dependencies: the front-end needs exactly
request parsing (request line, headers, a ``Content-Length`` body),
keep-alive, and response writing, in the style of ucondb's handwritten
``UCon_blob_server`` loop. Everything protocol-shaped lives here so
:mod:`repro.server.app` is pure routing/handler code, and both are
testable without sockets (the parser reads from any
``asyncio.StreamReader``-compatible object).

Limits are deliberate: a request line/header block over
``MAX_HEADER_BYTES`` or a body over ``max_body`` is rejected rather
than buffered — a long-running server must bound per-connection memory.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

#: request line + header block ceiling (per request)
MAX_HEADER_BYTES = 16 * 1024
#: default body ceiling; the app overrides per instance
DEFAULT_MAX_BODY = 64 * 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    416: "Range Not Satisfiable",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request the server refuses; becomes a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    #: decoded path (no query string)
    path: str
    #: raw query dict: name -> first value
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    keep_alive: bool = True
    #: route captures filled by the router (e.g. blob id, fs path)
    params: Dict[str, str] = field(default_factory=dict)

    def query_int(
        self, name: str, default: Optional[int] = None
    ) -> Optional[int]:
        """An integer query parameter, 400 on garbage."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise HttpError(400, f"query parameter {name!r} must be an integer")


@dataclass(slots=True)
class Response:
    """One response to serialize; ``body`` is always materialized."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/octet-stream"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, doc, status: int = 200) -> "Response":
        return cls(
            status=status,
            body=(json.dumps(doc) + "\n").encode(),
            content_type="application/json",
        )

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        return cls.json({"error": message, "status": status}, status=status)

    def encode(self, keep_alive: bool) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


async def read_request(
    reader, max_body: int = DEFAULT_MAX_BODY
) -> Optional[Request]:
    """Parse one request off *reader*.

    Returns ``None`` on a clean EOF before any byte of a new request
    (the peer closed a keep-alive connection). Raises :class:`HttpError`
    on malformed or over-limit input — the caller answers it and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query = {
        name: values[0]
        for name, values in parse_qs(
            split.query, keep_blank_values=True
        ).items()
    }

    body = b""
    length_raw = headers.get("content-length")
    if length_raw is not None:
        try:
            length = int(length_raw)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_raw!r}")
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body:
            raise HttpError(413, f"body of {length} bytes over limit {max_body}")
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception as exc:
                raise HttpError(400, "connection closed mid-body") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked requests are not supported")

    connection = headers.get("connection", "").lower()
    keep_alive = (
        connection != "close"
        if version == "HTTP/1.1"
        else connection == "keep-alive"
    )
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def parse_http_response(raw: bytes) -> Tuple[int, Dict[str, str], bytes]:
    """Split a fully buffered response into (status, headers, body) —
    the load-test client's decoder (responses here always carry
    ``Content-Length``)."""
    head, _, rest = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, rest
