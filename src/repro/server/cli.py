"""``repro-serve`` — run the HTTP blob/file front-end as a process.

Examples::

    repro-serve                         # 127.0.0.1:8070, 8 providers
    repro-serve --port 0 --providers 16 # ephemeral port, bigger backend

Lifecycle contract (tested by ``tests/server/test_cli.py``): SIGINT and
SIGTERM trigger a *graceful* stop — close the listener, drain open
connections, cancel outstanding lease timers — and the process exits 0
with a one-line notice, never a traceback. Bad arguments exit 2 through
argparse.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List

from ..obs import Observability
from .app import BlobServer


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve the BlobSeer/BSFS stack over HTTP (concurrent "
            "appends, versioned reads, namespace operations)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8070,
        help="listen port; 0 picks an ephemeral one (default: 8070)",
    )
    parser.add_argument(
        "--providers",
        type=int,
        default=8,
        metavar="N",
        help="data providers in the in-process deployment (default: 8)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--wait-threads",
        type=int,
        default=256,
        metavar="N",
        help=(
            "thread-pool slots for blocking metadata waits — size at the "
            "expected number of concurrently queued appenders (default: 256)"
        ),
    )
    args = parser.parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        # signal handlers normally convert SIGINT into a graceful stop;
        # this is the fallback for a second Ctrl-C mid-drain
        print("interrupted", file=sys.stderr)
        return 130


async def _serve(args) -> int:
    obs = Observability.on()
    server = BlobServer(
        host=args.host,
        port=args.port,
        n_providers=args.providers,
        seed=args.seed,
        obs=obs,
        max_wait_threads=args.wait_threads,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    host, port = await server.start()
    print(f"repro-serve listening on http://{host}:{port}", flush=True)
    await stop.wait()
    print("shutting down", file=sys.stderr)
    await server.stop()
    timers = server.live_lease_timers
    if timers:
        print(f"warning: {timers} lease timers still armed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
