"""The threaded engine: protocol ops as lazy thunks on wall clock.

Ops are :class:`_Op` values — deferred calls resolved by the synchronous
trampoline in :meth:`ThreadedEngine.run`. Nothing happens when an op is
*created*; the trampoline evaluates it when the protocol generator
yields it and sends the result (or throws the exception) back in. That
keeps op-creation order identical to the DES engine, which is what the
parity suite compares.

Thread safety comes from the bound components (the threaded version
manager, provider stores, the namespace), not from the engine: each
caller thread drives its own generator through its own trampoline.

A provider that refuses service (:class:`ProviderUnavailableError`) is
surfaced to the cores as :class:`RpcTimeoutError` — the same failure
shape the DES engine produces for a crashed node — and counted on the
``net.rpc_timeouts`` counter so the threaded runtime exposes the same
fault telemetry as the simulator.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Generator, Optional, Sequence, Set

from ..common.errors import ProviderUnavailableError, RpcTimeoutError
from ..common.rng import substream
from ..faults.plan import RetryPolicy
from ..obs import NULL_OBS, Observability
from .base import Engine, Payload

#: Backoff magnitudes for the in-process runtime: the same sweep shape
#: as the simulator's policy, but over wall milliseconds instead of
#: simulated seconds, so an all-replicas-down sweep costs ~0.1 s of real
#: time rather than multiple seconds.
THREADED_RETRY = RetryPolicy(
    rpc_timeout=0.5, base_delay=0.005, max_delay=0.05, max_attempts=6
)


class _Op:
    """A deferred engine action; resolved only by the trampoline."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], Any]) -> None:
        self.fn = fn


_NOOP = _Op(lambda: None)


class ThreadedEngine(Engine):
    """Engine over in-process components and the wall clock."""

    def __init__(
        self,
        seed: int = 0,
        obs: Optional[Observability] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.retry = retry or THREADED_RETRY
        self._seed = seed
        self._control: dict[str, Any] = {}
        # endpoint -> (store_fn(page_id, data), load_fn(page_id, off, n))
        self._data: dict[str, tuple] = {}
        self._down: Set[str] = set()
        self.use_obs(obs or NULL_OBS)

    def use_obs(self, obs: Observability) -> None:
        """(Re)wire observability — harnesses built with NULL_OBS can
        switch a live engine onto an enabled bundle."""
        self.obs = obs
        self._tracer = obs.tracer if obs.tracer.enabled else None
        self._trace_parent = None
        self._c_rpc_timeouts = obs.registry.counter("net.rpc_timeouts")

    def _spanned(self, op: _Op, name: str, cat: str, **args: Any) -> _Op:
        """Open one op span now (creation time, matching the DES engine's
        span start order) and finish it when the trampoline resolves the
        thunk — failed ops record their exception type."""
        sp = self._tracer.start(
            name, cat=cat, parent=self._take_parent(), **args
        )
        fn = op.fn

        def traced() -> Any:
            try:
                return fn()
            except BaseException as exc:
                sp.set(error=type(exc).__name__)
                raise
            finally:
                sp.finish()

        op.fn = traced
        return op

    # -- wiring -------------------------------------------------------------

    def bind(self, name: str, adapter: Any) -> None:
        """Register a control endpoint (calls run in the caller thread)."""
        self._control[name] = adapter

    def bind_data(
        self,
        name: str,
        store_fn: Callable[[Any, bytes], Any],
        load_fn: Callable[[Any, int, int], bytes],
    ) -> None:
        """Register a data endpoint's store/load entry points."""
        self._data[name] = (store_fn, load_fn)

    # -- fault state --------------------------------------------------------

    def fail_endpoint(self, name: str) -> None:
        self._down.add(name)

    def recover_endpoint(self, name: str) -> None:
        self._down.discard(name)

    def is_down(self, endpoint: str) -> bool:
        return endpoint in self._down

    @property
    def faults_active(self) -> bool:
        # real components fail organically; the cores must always take
        # the failure-tolerant paths
        return True

    # -- clock / flow -------------------------------------------------------

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, dt: float) -> _Op:
        op = _Op(lambda: time.sleep(dt))
        if self._tracer is not None:
            return self._spanned(op, "engine.sleep", "engine.retry", dt=dt)
        return op

    def spawn(self, gen: Generator) -> _Op:
        # no scheduler to hand off to: the sub-generator runs to
        # completion when the op resolves
        return _Op(lambda: self.run(gen))

    def run(self, gen: Generator) -> Any:
        """The trampoline: drive *gen* to completion in this thread."""
        try:
            op = gen.send(None)
        except StopIteration as stop:
            return stop.value
        while True:
            try:
                value = op.fn()
            except BaseException as exc:  # noqa: BLE001 - re-thrown into gen
                try:
                    op = gen.throw(exc)
                except StopIteration as stop:
                    return stop.value
            else:
                try:
                    op = gen.send(value)
                except StopIteration as stop:
                    return stop.value

    def rng(self, *names):
        return substream(self._seed, *names)

    # -- control plane ------------------------------------------------------

    def call(self, endpoint: str, method: str, *args: Any) -> _Op:
        adapter = self._control[endpoint]
        op = _Op(lambda: getattr(adapter, method)(*args))
        if self._tracer is not None:
            return self._spanned(
                op, f"engine.call:{endpoint}.{method}", "engine.call"
            )
        return op

    def wait(self, endpoint: str, method: str, *args: Any) -> _Op:
        # a wait is just a blocking call here; the charged/uncharged
        # distinction only exists under the simulator's cost model —
        # but its span keeps the DES engine's distinct wait name
        adapter = self._control[endpoint]
        op = _Op(lambda: getattr(adapter, method)(*args))
        if self._tracer is not None:
            return self._spanned(
                op, f"engine.wait:{endpoint}.{method}", "engine.wait"
            )
        return op

    # -- data plane ---------------------------------------------------------

    def store(
        self, client: str, endpoint: str, page_id: Any, payload: Payload
    ) -> _Op:
        store_fn = self._data[endpoint][0]

        def do() -> None:
            try:
                store_fn(page_id, payload.data)
            except ProviderUnavailableError as exc:
                self._c_rpc_timeouts.inc()
                raise RpcTimeoutError(str(exc)) from exc

        op = _Op(do)
        if self._tracer is not None:
            return self._spanned(
                op, "engine.store", "engine.data",
                endpoint=endpoint, nbytes=len(payload),
            )
        return op

    def fetch(
        self,
        client: str,
        endpoint: str,
        page_id: Any,
        data_offset: int,
        nbytes: int,
    ) -> _Op:
        load_fn = self._data[endpoint][1]

        def do() -> bytes:
            try:
                return load_fn(page_id, data_offset, nbytes)
            except ProviderUnavailableError as exc:
                self._c_rpc_timeouts.inc()
                raise RpcTimeoutError(str(exc)) from exc

        op = _Op(do)
        if self._tracer is not None:
            return self._spanned(
                op, "engine.fetch", "engine.data",
                endpoint=endpoint, nbytes=nbytes,
            )
        return op

    def charge_md(self, owners: Sequence[int]) -> _Op:
        # the DHT is in-process: metadata RPCs cost nothing here, but
        # the op still gets its span so both runtimes' trees match
        if self._tracer is not None:
            return self._spanned(
                _Op(lambda: None),
                "engine.charge_md",
                "engine.md",
                rpcs=len(owners),
            )
        return _NOOP

    def charge_md_many(self, batches: Sequence[Sequence[int]]) -> _Op:
        if self._tracer is not None:
            return self._spanned(
                _Op(lambda: None),
                "engine.charge_md_many",
                "engine.md",
                rpcs=sum(len(b) for b in batches),
                batches=len(batches),
            )
        return _NOOP
