"""The engine interface — the sans-IO boundary of the client stack.

A protocol core (``repro/*/protocol.py``) is a plain generator that
*yields engine ops* and receives their results. It never touches the
clock, threads, sockets, or the DES kernel: everything effectful goes
through one of the primitives below, so the same core runs unchanged on
the discrete-event simulator (:class:`~repro.engine.des.DesEngine`) and
on the threaded in-process runtime
(:class:`~repro.engine.threaded.ThreadedEngine`).

The op contract:

* Ops are opaque — a core must only create them via engine methods and
  ``yield`` them immediately (the DES engine hands back live kernel
  events; the threaded engine hands back lazy thunks resolved by its
  trampoline).
* ``yield op`` evaluates to the op's result; a failed op raises its
  exception at the ``yield`` site.
* Op *creation order* is the protocol's RPC trace. The recording
  wrapper (:class:`~repro.engine.recording.RecordingEngine`) captures
  descriptors at creation time, which is why identical scenarios must
  produce identical sequences under both engines.

The data plane moves :class:`Payload` values: real ``bytes`` on the
threaded engine, a byte *count* on the DES engine (the simulator charges
transport for sized-but-unmaterialized pages).
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional, Sequence

from ..faults.plan import RetryPolicy


class Payload:
    """Bytes-or-size: the one data-plane currency both engines accept."""

    __slots__ = ("data", "nbytes")

    def __init__(self, data: Optional[bytes] = None, nbytes: Optional[int] = None):
        if data is None and nbytes is None:
            raise ValueError("payload needs data or a size")
        self.data = data
        self.nbytes = len(data) if data is not None else int(nbytes)

    def slice(self, lo: int, hi: int) -> "Payload":
        """The payload restricted to ``[lo, hi)`` of its byte range."""
        if self.data is not None:
            return Payload(data=self.data[lo:hi])
        return Payload(nbytes=max(0, min(hi, self.nbytes) - lo))

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "bytes" if self.data is not None else "sized"
        return f"Payload({kind}, {self.nbytes})"


class Engine(abc.ABC):
    """Runtime services a protocol core may use, and nothing else.

    Attributes set by implementations:

    * ``retry`` — the :class:`~repro.faults.plan.RetryPolicy` active for
      this runtime (timeout charging, backoff magnitudes).
    * ``faults_active`` — when ``False`` the core may take batched
      fast paths that assume no endpoint can fail mid-operation. The
      threaded engine always reports ``True`` (real components fail
      organically); the DES engine flips it on first injection so the
      fault-free hot paths stay branch-cheap.

    **Causal tracing.** Both runtimes emit one span per op — named after
    the *control endpoint* (``engine.call:vm.commit``), never the
    runtime's node names, so the two engines produce identical span
    trees for identical scenarios (the trace-parity suite asserts it).
    A protocol core parents those op spans by calling
    :meth:`trace_parent` immediately before creating an op; the engine
    consumes the parent on the next op creation (consume-on-create, so
    a stale parent can never misattach to a later unrelated op). With
    tracing disabled the whole mechanism is one attribute store per
    call site and ``_tracer`` stays ``None`` — the NULL_OBS fast path.
    """

    retry: RetryPolicy

    #: the enabled tracer, or ``None`` when observability is off —
    #: implementations cache this so every op pays one None-check
    _tracer = None
    #: parent span for the next op created (consumed on creation)
    _trace_parent = None

    def trace_parent(self, span) -> None:
        """Parent the *next* op's span under *span* (one-shot)."""
        self._trace_parent = span

    def _take_parent(self):
        """Consume the pending op-span parent (internal)."""
        parent = self._trace_parent
        if parent is not None:
            self._trace_parent = None
        return parent

    # -- clock / flow -------------------------------------------------------

    @abc.abstractmethod
    def now(self) -> float:
        """The runtime's clock (simulated seconds or wall seconds)."""

    @abc.abstractmethod
    def sleep(self, dt: float) -> Any:
        """Op: resume after *dt* seconds."""

    @abc.abstractmethod
    def run(self, gen) -> Any:
        """Drive a protocol generator to completion, returning its value.

        On the threaded engine this is the synchronous trampoline; on
        the DES engine it wraps the generator in a kernel process (the
        caller then waits for the process event inside the simulation).
        """

    @abc.abstractmethod
    def spawn(self, gen) -> Any:
        """Op: run a protocol sub-generator (concurrently where the
        runtime supports it, inline where it does not)."""

    # -- control plane ------------------------------------------------------

    @abc.abstractmethod
    def call(self, endpoint: str, method: str, *args: Any) -> Any:
        """Op: one charged RPC to a bound control endpoint.

        The result is the endpoint method's return value; exceptions it
        raises surface at the ``yield``.
        """

    @abc.abstractmethod
    def wait(self, endpoint: str, method: str, *args: Any) -> Any:
        """Op: an *uncharged* wait on a control endpoint condition.

        Used for the metadata-turn wait: the caller blocks until the
        version manager signals its turn, without occupying the
        endpoint's service slot (a charged call would deadlock — the
        wait can only resolve through other clients' calls).
        """

    # -- data plane ---------------------------------------------------------

    @abc.abstractmethod
    def store(self, client: str, endpoint: str, page_id: Any, payload: Payload) -> Any:
        """Op: ship one stored object to a data endpoint (ack on receipt).

        Fails with :class:`~repro.common.errors.RpcTimeoutError` when
        the endpoint is down (charged in sim time on the DES engine).
        """

    @abc.abstractmethod
    def fetch(
        self, client: str, endpoint: str, page_id: Any, data_offset: int, nbytes: int
    ) -> Any:
        """Op: read a byte range of one stored object from a data endpoint.

        Resolves to the bytes on the threaded engine and to ``None`` on
        the DES engine (sized transport only). Fails with
        ``RpcTimeoutError`` (down endpoint, charged) or
        ``PageNotFoundError`` (endpoint alive but missing the object).
        """

    @abc.abstractmethod
    def charge_md(self, owners: Sequence[int]) -> Any:
        """Op: charge a batch of metadata RPCs against their owners.

        The DES engine serializes them at the per-owner metadata-provider
        slots (with the timeout/retry path for crashed owners); the
        threaded engine resolves immediately (its DHT is in-process).
        """

    @abc.abstractmethod
    def charge_md_many(self, batches: Sequence[Sequence[int]]) -> Any:
        """Op: charge several metadata access logs as ONE publish round.

        A group-commit leader folds its boundary-read log and its batch
        build log into a single fan-out wave — one DHT round trip per
        *node set* rather than one sequential wave per log. Cost-wise the
        DES engine treats the concatenation as one
        :func:`~repro.sim.resources.batch_round_trips` wave; the threaded
        engine resolves immediately. Kept as a distinct op (not sugar
        over :meth:`charge_md`) so recorded traces preserve the batch
        structure the parity suite compares.
        """

    # -- fault / liveness view ---------------------------------------------

    @abc.abstractmethod
    def is_down(self, endpoint: str) -> bool:
        """Whether the engine knows the endpoint to be crashed."""

    @property
    @abc.abstractmethod
    def faults_active(self) -> bool:
        """Whether the core must use the failure-tolerant paths."""

    @abc.abstractmethod
    def rng(self, *names):
        """A named, seeded ``numpy`` generator substream."""

    # -- DES-only batch fast paths ------------------------------------------
    # The fault-free DES hot paths batch whole page fan-outs into one
    # network reallocation. Cores only reach these when
    # ``faults_active`` is False, which never happens on the threaded
    # engine, so it need not implement them.

    def ship_many(
        self,
        client: str,
        placements: Sequence[Sequence[str]],
        sizes: Sequence[int],
    ) -> List[Any]:
        """Ops, one per page: batch-ship every (page, replica) transfer."""
        raise NotImplementedError("ship_many is a fault-free fast path")

    def gather(self, ops: List[Any]) -> Any:
        """Op: resume when every op in *ops* has resolved."""
        raise NotImplementedError("gather is a fault-free fast path")
