"""The discrete-event engine: protocol ops as simulation kernel events.

Every op returned by this engine is a live :class:`~repro.sim.core.Event`
scheduled against the shared cluster physics, so protocol generators run
directly under ``env.process`` — ``yield op`` is a native kernel wait.

Cost model (unchanged from the pre-engine simulated clients):

* ``call`` — one charged round trip (latency + FIFO service at the
  endpoint's one-slot resource);
* ``store`` — a network transfer client→endpoint, acknowledged on
  receipt, with asynchronous disk persistence (fire-and-forget);
* ``fetch`` — endpoint disk (or page-cache) service chained into the
  network transfer back to the client;
* ``charge_md`` — batched fan-out over the per-owner metadata slots;
* down endpoints fail ``store``/``fetch`` with
  :class:`~repro.common.errors.RpcTimeoutError` after the retry
  policy's ``rpc_timeout`` of simulated time, and crashed metadata
  owners go through the timeout/backoff retry loop.

The fault-free fast paths (``ship_many``/``gather``) batch whole page
fan-outs through ``network.transfer_many`` so same-instant replica churn
coalesces into one reallocation; ``faults_active`` stays ``False`` (and
the cores on those fast paths) until the first injected fault.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, Set, Tuple

from ..common.errors import ProviderUnavailableError, RpcTimeoutError
from ..common.rng import substream
from ..faults.plan import RetryPolicy
from ..obs import NULL_OBS, Observability
from ..sim.cluster import SimCluster
from ..sim.core import Event
from ..sim.resources import Resource, batch_round_trips
from .base import Engine, Payload


class _Control:
    """One bound control endpoint: adapter + serialized service slot."""

    __slots__ = ("adapter", "slot", "service", "method_services")

    def __init__(
        self,
        adapter: Any,
        slot: Resource,
        service: float,
        method_services: Optional[dict] = None,
    ) -> None:
        self.adapter = adapter
        self.slot = slot
        self.service = service
        #: per-method overrides of the default service time — e.g. the
        #: VM's cheap group-commit enqueue vs. its full critical section
        self.method_services = method_services or {}


class DesEngine(Engine):
    """Engine over a :class:`~repro.sim.cluster.SimCluster`."""

    def __init__(
        self, cluster: SimCluster, obs: Optional[Observability] = None
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.retry = RetryPolicy.from_cluster(cluster.config)
        self._seed = cluster.config.seed
        self._control: dict[str, _Control] = {}
        self._md_slots: List[Resource] = []
        self._down: Set[str] = set()
        self._down_md: Set[int] = set()
        self._faults_on = False
        self.use_obs(obs or NULL_OBS)

    def use_obs(self, obs: Observability) -> None:
        """(Re)wire observability — harnesses built with NULL_OBS can
        switch a live engine onto an enabled bundle."""
        self.obs = obs
        if obs.tracer.enabled:
            # spans carry simulated timestamps; rebasing keeps successive
            # deployments sequential in one trace
            env = self.env
            obs.tracer.use_clock(lambda: env.now)
            self._tracer = obs.tracer
        else:
            self._tracer = None
        self._trace_parent = None
        self._c_rpc_timeouts = obs.registry.counter("net.rpc_timeouts")

    def _spanned(self, ev: Event, name: str, cat: str, **args: Any) -> Event:
        """Open one op span now (creation time) and finish it when *ev*
        fires — failed ops record their exception type."""
        sp = self._tracer.start(
            name, cat=cat, parent=self._take_parent(), **args
        )

        def _finish(e: Event, sp=sp) -> None:
            if not e._ok:
                sp.set(error=type(e._value).__name__)
            sp.finish()

        ev.callbacks.append(_finish)
        return ev

    # -- wiring -------------------------------------------------------------

    def bind(
        self,
        name: str,
        adapter: Any,
        service_time: float,
        method_services: Optional[dict] = None,
    ) -> None:
        """Register a control endpoint served one RPC at a time.

        *method_services* optionally overrides the service time for
        specific methods (they still serialize at the same slot).
        """
        self._control[name] = _Control(
            adapter,
            Resource(self.env, capacity=1),
            service_time,
            method_services,
        )

    def bind_md(self, n_owners: int) -> None:
        """Register the metadata providers (one service slot each)."""
        self._md_slots = [
            Resource(self.env, capacity=1) for _ in range(n_owners)
        ]

    def control_slot(self, name: str) -> Resource:
        """The endpoint's service slot (for legacy direct round trips)."""
        return self._control[name].slot

    def endpoint_inflight(self) -> dict[str, int]:
        """RPCs queued per bound control endpoint right now — the
        telemetry samplers record these as time series."""
        return {
            name: ctl.slot.queue_length
            for name, ctl in self._control.items()
        }

    # -- fault state --------------------------------------------------------

    def fail_endpoint(self, name: str) -> None:
        self._down.add(name)
        self._faults_on = True

    def recover_endpoint(self, name: str) -> None:
        self._down.discard(name)

    def fail_md(self, index: int) -> None:
        self._down_md.add(index)
        self._faults_on = True

    def recover_md(self, index: int) -> None:
        self._down_md.discard(index)

    def is_down(self, endpoint: str) -> bool:
        return endpoint in self._down

    @property
    def faults_active(self) -> bool:
        return self._faults_on

    # -- clock / flow -------------------------------------------------------

    def now(self) -> float:
        return self.env.now

    def sleep(self, dt: float) -> Event:
        ev = self.env.timeout(dt)
        if self._tracer is not None:
            return self._spanned(ev, "engine.sleep", "engine.retry", dt=dt)
        return ev

    def spawn(self, gen: Generator) -> Event:
        return self.env.process(gen)

    def run(self, gen: Generator) -> Event:
        """Wrap a protocol generator in a kernel process (its event)."""
        return self.env.process(gen)

    def rng(self, *names):
        return substream(self._seed, *names)

    # -- control plane ------------------------------------------------------

    def call(self, endpoint: str, method: str, *args: Any) -> Event:
        ctl = self._control[endpoint]
        fn = getattr(ctl.adapter, method)
        service = ctl.method_services.get(method, ctl.service)
        ev = ctl.slot.round_trip(
            self.cluster.config.latency, service, lambda: fn(*args)
        )
        if self._tracer is not None:
            return self._spanned(
                ev, f"engine.call:{endpoint}.{method}", "engine.call"
            )
        return ev

    def wait(self, endpoint: str, method: str, *args: Any) -> Event:
        """Uncharged wait: the adapter may hand back a condition event."""
        out = getattr(self._control[endpoint].adapter, method)(*args)
        if isinstance(out, Event):
            ev = out
        else:
            ev = Event(self.env)
            ev.succeed(out)
        if self._tracer is not None:
            return self._spanned(
                ev, f"engine.wait:{endpoint}.{method}", "engine.wait"
            )
        return ev

    # -- data plane ---------------------------------------------------------

    def _timeout_fail(self, what: str) -> Event:
        """An op that fails with a charged RPC timeout."""
        self._c_rpc_timeouts.inc()
        ev = Event(self.env)
        self.env.call_in(
            self.retry.rpc_timeout,
            lambda: ev.fail(RpcTimeoutError(f"{what} timed out")),
        )
        return ev

    def store(
        self, client: str, endpoint: str, page_id: Any, payload: Payload
    ) -> Event:
        nbytes = len(payload)
        if endpoint in self._down:
            t = self._timeout_fail(f"store to {endpoint}")
        else:
            t = self.cluster.network.transfer(client, endpoint, nbytes)

            def persist(ev: Event) -> None:
                if ev._ok:
                    # asynchronous persistence; disk contention accrues
                    self.cluster.node(endpoint).disk.write(nbytes, notify=False)

            t.callbacks.append(persist)
        if self._tracer is not None:
            return self._spanned(
                t, "engine.store", "engine.data",
                endpoint=endpoint, nbytes=nbytes,
            )
        return t

    def fetch(
        self,
        client: str,
        endpoint: str,
        page_id: Any,
        data_offset: int,
        nbytes: int,
    ) -> Event:
        if endpoint in self._down:
            done = self._timeout_fail(f"fetch from {endpoint}")
        else:
            done = Event(self.env)

            def off_disk(ev: Event) -> None:
                if not ev._ok:
                    done.fail(ev._value)
                    return
                t = self.cluster.network.transfer(endpoint, client, nbytes)
                t.callbacks.append(
                    lambda tv: done.succeed(None)
                    if tv._ok
                    else done.fail(tv._value)
                )

            self.cluster.node(endpoint).disk.read(nbytes).callbacks.append(
                off_disk
            )
        if self._tracer is not None:
            return self._spanned(
                done, "engine.fetch", "engine.data",
                endpoint=endpoint, nbytes=nbytes,
            )
        return done

    def charge_md(self, owners: Sequence[int]) -> Event:
        done = self._charge_md_event(owners)
        if self._tracer is not None:
            return self._spanned(
                done, "engine.charge_md", "engine.md", rpcs=len(owners)
            )
        return done

    def charge_md_many(self, batches: Sequence[Sequence[int]]) -> Event:
        # one publish round: the concatenated logs cost a single fan-out
        # wave over the owners' slots (the fault path inside
        # _charge_md_event still detours crashed owners through retries)
        owners = [o for batch in batches for o in batch]
        done = self._charge_md_event(owners)
        if self._tracer is not None:
            return self._spanned(
                done,
                "engine.charge_md_many",
                "engine.md",
                rpcs=len(owners),
                batches=len(batches),
            )
        return done

    def _charge_md_event(self, owners: Sequence[int]) -> Event:
        done = Event(self.env)
        if not owners:
            done.succeed(None)
            return done
        cfg = self.cluster.config
        if self._faults_on and any(o in self._down_md for o in owners):
            # down owners go through the timeout/retry path; the rest
            # batch as usual
            events: List[Event] = [
                self.env.process(self._md_retry(o))
                for o in owners
                if o in self._down_md
            ]
            alive = [o for o in owners if o not in self._down_md]
            if alive:
                sub = Event(self.env)
                batch_round_trips(
                    [self._md_slots[o] for o in alive],
                    cfg.latency,
                    cfg.metadata_rpc_time,
                    sub,
                )
                events.append(sub)
            return self.env.all_of(events)
        batch_round_trips(
            [self._md_slots[o] for o in owners],
            cfg.latency,
            cfg.metadata_rpc_time,
            done,
        )
        return done

    def _md_rpc(self, owner: int) -> Event:
        """One metadata RPC at provider *owner*: latency + queued service."""
        return self._md_slots[owner].round_trip(
            self.cluster.config.latency, self.cluster.config.metadata_rpc_time
        )

    def _md_retry(self, owner: int) -> Generator[Event, None, None]:
        """One metadata RPC with timeout + capped-backoff retries, for a
        possibly-crashed owner."""
        policy = self.retry
        for attempt in range(policy.max_attempts):
            if owner in self._down_md:
                self._c_rpc_timeouts.inc()
                yield self.env.timeout(policy.rpc_timeout)
                if attempt + 1 < policy.max_attempts:
                    yield self.env.timeout(policy.backoff(attempt))
            else:
                yield self._md_rpc(owner)
                return
        raise ProviderUnavailableError(
            f"metadata provider {owner} is down (gave up after "
            f"{policy.max_attempts} attempts)"
        )

    # -- batch fast paths ---------------------------------------------------

    def ship_many(
        self,
        client: str,
        placements: Sequence[Sequence[str]],
        sizes: Sequence[int],
    ) -> List[Event]:
        """Batch-ship pages to their replicas (ack on receipt).

        Every ``(page, replica)`` transfer starts through the network's
        batch API, so the whole fan-out costs one coalesced reallocation
        instead of one per replica. Each returned event fires when that
        page's last replica has the bytes; persistence is asynchronous.
        """
        flat = self.cluster.network.transfer_many(
            (client, prov, nbytes)
            for providers, nbytes in zip(placements, sizes)
            for prov in providers
        )
        out: List[Event] = []
        pos = 0
        for providers, nbytes in zip(placements, sizes):
            transfers = flat[pos : pos + len(providers)]
            pos += len(providers)
            # single replica (the default): no fan-in barrier needed
            done = (
                transfers[0]
                if len(transfers) == 1
                else self.env.all_of(transfers)
            )

            def persist(
                ev: Event,
                providers: Sequence[str] = providers,
                nbytes: int = nbytes,
            ) -> None:
                if ev._ok:
                    for prov in providers:
                        self.cluster.node(prov).disk.write(nbytes, notify=False)

            done.callbacks.append(persist)
            out.append(done)
        if self._tracer is not None and out:
            # one span for the whole fan-out, finished when the last
            # page's last replica has the bytes
            self._spanned(
                self.env.all_of(list(out)),
                "engine.ship_many",
                "engine.data",
                pages=len(out),
                nbytes=sum(sizes),
            )
        return out

    def gather(self, ops: List[Event]) -> Event:
        ev = self.env.all_of(ops)
        if self._tracer is not None:
            return self._spanned(ev, "engine.gather", "engine.data", n=len(ops))
        return ev
