"""The shared replica-read policies.

PR 4 grew two divergent failover behaviours: the simulated clients swept
replicas from a globally-drawn rotated start, while the threaded clients
additionally kept per-client dead-node memory. This module is the single
policy stack all three engines now run:

* a **seeded rotation phase** per client/stream (derived from the
  engine's named rng), stepped once per fetch, so concurrent readers
  spread over replicas instead of hammering placement order;
* **dead-node memory**: endpoints seen timing out sort last in every
  subsequent sweep and are only forgiven by a successful reply;
* a bounded sweep with **capped exponential backoff** between full
  rotations, per the engine's :class:`~repro.faults.plan.RetryPolicy`.

On top of the sweep, reads go through a pluggable :class:`ReadPolicy`
(``BlobSeerConfig.read_policy``): :class:`SweepReadPolicy` is the
default single-fetch failover above, :class:`QuorumReadPolicy` contacts
R replicas per read (first reply wins — pages are immutable, so any
reply is consistent) and falls back to the sweep when the whole quorum
is unreachable. The policies are engine-parameterized generators like
everything else in :mod:`repro.engine`, so DES, threaded, and asyncio
runtimes keep operation-trace parity.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, List, Optional, Sequence, Set

from ..common.errors import (
    PageNotFoundError,
    ReplicationError,
    RpcTimeoutError,
)
from ..obs import NULL_SPAN


class ReplicaSelector:
    """Rotation phase + dead-endpoint memory for one client or stream."""

    __slots__ = ("_rr", "dead")

    def __init__(self, rng, dead: Set[str] | None = None) -> None:
        """*rng* is a seeded generator (``engine.rng(...)``); the phase it
        yields makes the rotation deterministic per client name."""
        self._rr = itertools.count(int(rng.integers(1 << 30)))
        #: endpoints seen failing, tried last until they serve again
        self.dead: Set[str] = dead if dead is not None else set()

    def order(self, endpoints: Sequence[str]) -> List[str]:
        """The sweep order for one fetch: rotated start, dead last.

        The phase advances on every call, so consecutive fetches from
        the same selector start at consecutive replicas.
        """
        n = len(endpoints)
        start = next(self._rr) % n if n > 1 else 0
        out = [endpoints[(start + i) % n] for i in range(n)]
        if self.dead:
            out.sort(key=lambda name: name in self.dead)
        return out


def sweep_fetch(
    engine,
    selector: ReplicaSelector,
    client: str,
    endpoints: Sequence[str],
    page_id: Any,
    data_offset: int,
    nbytes: int,
    describe: str,
    parent=None,
):
    """Generator: fetch one stored object, failing over across replicas.

    Timeouts mark the endpoint dead (sorted last from then on); a
    ``PageNotFoundError`` reply leaves it alive. After each full
    rotation the sweep backs off; when the attempt budget is spent the
    fetch fails with :class:`~repro.common.errors.ReplicationError`.

    When tracing is on the whole sweep is one ``replica.sweep`` span
    (parented under *parent*) whose children are the per-attempt
    ``engine.fetch`` ops and the between-rotation backoff sleeps —
    failover cost shows up as one retry subtree in the trace.

    Returns the bytes on engines that materialize data, ``None`` on the
    DES engine.
    """
    sp = engine.obs.tracer.start(
        "replica.sweep",
        cat="engine.retry",
        parent=parent,
        replicas=len(endpoints),
    )
    traced = sp is not NULL_SPAN
    policy = engine.retry
    order = selector.order(endpoints)
    n = len(order)
    last_exc: Exception | None = None
    try:
        for attempt in range(policy.max_attempts):
            name = order[attempt % n]
            try:
                if traced:
                    engine.trace_parent(sp)
                data = yield engine.fetch(
                    client, name, page_id, data_offset, nbytes
                )
            except RpcTimeoutError as exc:
                selector.dead.add(name)
                last_exc = exc
            except PageNotFoundError as exc:
                # the endpoint answered: alive, just missing this object
                last_exc = exc
            else:
                selector.dead.discard(name)
                if traced:
                    sp.set(attempts=attempt + 1)
                return data
            if (attempt + 1) % n == 0 and attempt + 1 < policy.max_attempts:
                # a full sweep of replicas failed: back off before retrying
                if traced:
                    engine.trace_parent(sp)
                yield engine.sleep(policy.backoff(attempt // n))
        if traced:
            sp.set(attempts=policy.max_attempts, error="ReplicationError")
        raise ReplicationError(
            f"no replica of {describe} is readable "
            f"(endpoints {tuple(endpoints)})"
        ) from last_exc
    finally:
        sp.finish()


class ReadPolicy(ABC):
    """How one stored object is fetched from its replica set."""

    #: registry name (mirrors ``BlobSeerConfig.read_policy``)
    name: str = ""
    #: True when the policy must run the per-piece serial path even on
    #: engines whose fault-free fast path would batch fetches (the DES
    #: ``gather``) — a quorum read is *defined* by contacting several
    #: replicas, so it cannot ride the single-fetch batch
    serial_fetch: bool = False

    @abstractmethod
    def fetch(
        self,
        engine,
        selector: ReplicaSelector,
        client: str,
        endpoints: Sequence[str],
        page_id: Any,
        data_offset: int,
        nbytes: int,
        describe: str,
        parent=None,
    ):
        """Generator: fetch one stored object; returns its bytes on
        engines that materialize data, ``None`` on the DES engine."""


class SweepReadPolicy(ReadPolicy):
    """The default: one fetch at a time, failing over across replicas
    (see :func:`sweep_fetch`)."""

    name = "sweep"

    def fetch(
        self,
        engine,
        selector,
        client,
        endpoints,
        page_id,
        data_offset,
        nbytes,
        describe,
        parent=None,
    ):
        return sweep_fetch(
            engine,
            selector,
            client,
            endpoints,
            page_id,
            data_offset,
            nbytes,
            describe,
            parent=parent,
        )


class QuorumReadPolicy(ReadPolicy):
    """Read R of N replicas, first consistent reply wins.

    Pages are immutable once committed, so every successful reply is
    consistent and the first one satisfies the read; the remaining
    quorum members are still contacted — the R-fold fetch load is the
    price of quorum reads, and exactly what the policy-matrix benchmark
    measures. Timeouts feed the selector's dead-node memory. When the
    whole quorum fails the read falls back to sweeping the remaining
    replicas (dead ones sort last), so a quorum read is never *less*
    available than a sweep.
    """

    name = "quorum"
    serial_fetch = True

    def __init__(self, quorum: int = 2, counter=None) -> None:
        if quorum < 1:
            raise ValueError("quorum must be >= 1")
        self.quorum = quorum
        #: ``placement.quorum_reads`` counter (optional)
        self._counter = counter

    def fetch(
        self,
        engine,
        selector,
        client,
        endpoints,
        page_id,
        data_offset,
        nbytes,
        describe,
        parent=None,
    ):
        if self._counter is not None:
            self._counter.inc()
        order = selector.order(endpoints)
        r = min(self.quorum, len(order))
        sp = engine.obs.tracer.start(
            "replica.quorum",
            cat="engine.retry",
            parent=parent,
            replicas=len(endpoints),
            quorum=r,
        )
        traced = sp is not NULL_SPAN
        data: Optional[bytes] = None
        got_reply = False
        try:
            for name in order[:r]:
                try:
                    if traced:
                        engine.trace_parent(sp)
                    reply = yield engine.fetch(
                        client, name, page_id, data_offset, nbytes
                    )
                except RpcTimeoutError:
                    selector.dead.add(name)
                except PageNotFoundError:
                    # the endpoint answered: alive, just missing this
                    # object — a consistent "not here", keep going
                    pass
                else:
                    selector.dead.discard(name)
                    got_reply = True
                    if data is None:
                        data = reply
            if got_reply:
                if traced:
                    sp.set(replies=r)
                return data
            # the whole quorum was unreachable: sweep the rest (the
            # selector already sorts the dead quorum members last)
            if traced:
                sp.set(fallback="sweep")
            result = yield from sweep_fetch(
                engine,
                selector,
                client,
                endpoints,
                page_id,
                data_offset,
                nbytes,
                describe,
                parent=sp if traced else parent,
            )
            return result
        finally:
            sp.finish()


def make_read_policy(config, registry=None) -> ReadPolicy:
    """The configured read policy (``read_policy`` / ``read_quorum``
    knobs); *registry* wires the ``placement.quorum_reads`` counter."""
    name = getattr(config, "read_policy", "sweep")
    if name == "sweep":
        return SweepReadPolicy()
    if name == "quorum":
        counter = (
            registry.counter("placement.quorum_reads")
            if registry is not None
            else None
        )
        return QuorumReadPolicy(
            quorum=getattr(config, "read_quorum", 2), counter=counter
        )
    raise ValueError(f"unknown read policy {name!r}")
