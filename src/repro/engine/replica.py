"""The shared replica-failover policy.

PR 4 grew two divergent failover behaviours: the simulated clients swept
replicas from a globally-drawn rotated start, while the threaded clients
additionally kept per-client dead-node memory. This module is the single
policy both engines now run:

* a **seeded rotation phase** per client/stream (derived from the
  engine's named rng), stepped once per fetch, so concurrent readers
  spread over replicas instead of hammering placement order;
* **dead-node memory**: endpoints seen timing out sort last in every
  subsequent sweep and are only forgiven by a successful reply;
* a bounded sweep with **capped exponential backoff** between full
  rotations, per the engine's :class:`~repro.faults.plan.RetryPolicy`.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Sequence, Set

from ..common.errors import (
    PageNotFoundError,
    ReplicationError,
    RpcTimeoutError,
)
from ..obs import NULL_SPAN


class ReplicaSelector:
    """Rotation phase + dead-endpoint memory for one client or stream."""

    __slots__ = ("_rr", "dead")

    def __init__(self, rng, dead: Set[str] | None = None) -> None:
        """*rng* is a seeded generator (``engine.rng(...)``); the phase it
        yields makes the rotation deterministic per client name."""
        self._rr = itertools.count(int(rng.integers(1 << 30)))
        #: endpoints seen failing, tried last until they serve again
        self.dead: Set[str] = dead if dead is not None else set()

    def order(self, endpoints: Sequence[str]) -> List[str]:
        """The sweep order for one fetch: rotated start, dead last.

        The phase advances on every call, so consecutive fetches from
        the same selector start at consecutive replicas.
        """
        n = len(endpoints)
        start = next(self._rr) % n if n > 1 else 0
        out = [endpoints[(start + i) % n] for i in range(n)]
        if self.dead:
            out.sort(key=lambda name: name in self.dead)
        return out


def sweep_fetch(
    engine,
    selector: ReplicaSelector,
    client: str,
    endpoints: Sequence[str],
    page_id: Any,
    data_offset: int,
    nbytes: int,
    describe: str,
    parent=None,
):
    """Generator: fetch one stored object, failing over across replicas.

    Timeouts mark the endpoint dead (sorted last from then on); a
    ``PageNotFoundError`` reply leaves it alive. After each full
    rotation the sweep backs off; when the attempt budget is spent the
    fetch fails with :class:`~repro.common.errors.ReplicationError`.

    When tracing is on the whole sweep is one ``replica.sweep`` span
    (parented under *parent*) whose children are the per-attempt
    ``engine.fetch`` ops and the between-rotation backoff sleeps —
    failover cost shows up as one retry subtree in the trace.

    Returns the bytes on engines that materialize data, ``None`` on the
    DES engine.
    """
    sp = engine.obs.tracer.start(
        "replica.sweep",
        cat="engine.retry",
        parent=parent,
        replicas=len(endpoints),
    )
    traced = sp is not NULL_SPAN
    policy = engine.retry
    order = selector.order(endpoints)
    n = len(order)
    last_exc: Exception | None = None
    try:
        for attempt in range(policy.max_attempts):
            name = order[attempt % n]
            try:
                if traced:
                    engine.trace_parent(sp)
                data = yield engine.fetch(
                    client, name, page_id, data_offset, nbytes
                )
            except RpcTimeoutError as exc:
                selector.dead.add(name)
                last_exc = exc
            except PageNotFoundError as exc:
                # the endpoint answered: alive, just missing this object
                last_exc = exc
            else:
                selector.dead.discard(name)
                if traced:
                    sp.set(attempts=attempt + 1)
                return data
            if (attempt + 1) % n == 0 and attempt + 1 < policy.max_attempts:
                # a full sweep of replicas failed: back off before retrying
                if traced:
                    engine.trace_parent(sp)
                yield engine.sleep(policy.backoff(attempt // n))
        if traced:
            sp.set(attempts=policy.max_attempts, error="ReplicationError")
        raise ReplicationError(
            f"no replica of {describe} is readable "
            f"(endpoints {tuple(endpoints)})"
        ) from last_exc
    finally:
        sp.finish()
