"""Pluggable client runtimes behind one sans-IO protocol boundary.

The protocol logic of the BlobSeer, HDFS, and BSFS clients lives in
``repro/*/protocol.py`` as engine-parameterized generators; this package
provides the runtimes they plug into:

* :class:`~repro.engine.base.Engine` — the op interface and
  :class:`~repro.engine.base.Payload` data currency;
* :class:`~repro.engine.des.DesEngine` — ops as simulation kernel
  events, charged against the cluster cost model;
* :class:`~repro.engine.threaded.ThreadedEngine` — ops as lazy thunks
  resolved by a synchronous trampoline on the wall clock;
* :class:`~repro.engine.aio.AsyncioEngine` — the same real components
  driven from one asyncio event loop (the HTTP front-end's runtime);
* :class:`~repro.engine.recording.RecordingEngine` — a decorator that
  captures the op-creation trace for the engine-parity suite;
* :mod:`~repro.engine.replica` — the shared replica-failover policy
  (seeded rotation + dead-node memory + bounded backoff sweeps).
"""

from .aio import AsyncioEngine
from .base import Engine, Payload
from .des import DesEngine
from .recording import RecordingEngine
from .replica import ReplicaSelector, sweep_fetch
from .threaded import THREADED_RETRY, ThreadedEngine

__all__ = [
    "Engine",
    "Payload",
    "DesEngine",
    "ThreadedEngine",
    "AsyncioEngine",
    "THREADED_RETRY",
    "RecordingEngine",
    "ReplicaSelector",
    "sweep_fetch",
]
