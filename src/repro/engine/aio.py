"""The asyncio engine: protocol ops as awaitables on one event loop.

The third :class:`~repro.engine.base.Engine` implementation. Like the
threaded engine it binds the *real* lock-based components (the threaded
version manager, provider stores, the namespace manager) and moves real
bytes; unlike it, many protocol generators run concurrently as asyncio
tasks on a single event loop — which is what the HTTP front-end
(:mod:`repro.server`) needs to serve hundreds of sockets from one
process.

Op mechanics mirror :mod:`repro.engine.threaded`: an op is a lazy
:class:`_AioOp` thunk, created (and recorded, for the parity suite) at
``engine.call(...)`` time and resolved only when the async trampoline in
:meth:`AsyncioEngine.run` awaits it — so op-*creation* order is
identical to the other two engines for the same scenario, which is what
``tests/engine/test_parity.py`` asserts.

The one genuinely asyncio-specific concern is *blocking* endpoint
methods. Control calls are short critical sections (dictionary updates
under a mutex) and run inline on the loop; but ``engine.wait`` ops —
the metadata-turn and publish waits — park on a ``threading.Condition``
inside the version manager until **another** client's commit signals
them. Running those inline would wedge the whole loop, so wait ops are
shipped to a dedicated thread pool. Progress never *requires* more than
one pool slot: the commits that release waiters run inline on the loop,
so a saturated pool only queues waiters (latency), it cannot deadlock
them.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Generator, Optional, Sequence, Set

from ..common.errors import ProviderUnavailableError, RpcTimeoutError
from ..common.rng import substream
from ..faults.plan import RetryPolicy
from ..obs import NULL_OBS, Observability
from .base import Engine, Payload
from .threaded import THREADED_RETRY


class _AioOp:
    """A deferred engine action; resolved only by the async trampoline.

    ``fn`` either returns a value directly (inline ops) or an awaitable
    (sleeps, executor-shipped waits) that the trampoline awaits.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], Any]) -> None:
        self.fn = fn


_NOOP = _AioOp(lambda: None)


class AsyncioEngine(Engine):
    """Engine over in-process components and one asyncio event loop."""

    def __init__(
        self,
        seed: int = 0,
        obs: Optional[Observability] = None,
        retry: Optional[RetryPolicy] = None,
        max_wait_threads: int = 256,
    ) -> None:
        """*max_wait_threads* bounds the pool that carries blocking
        ``wait`` ops — size it at the expected number of concurrently
        queued appenders (threads parked on a condition variable are
        cheap; an undersized pool adds queueing latency, never
        deadlock)."""
        self.retry = retry or THREADED_RETRY
        self._seed = seed
        self._control: dict[str, Any] = {}
        # endpoint -> (store_fn(page_id, data), load_fn(page_id, off, n))
        self._data: dict[str, tuple] = {}
        self._down: Set[str] = set()
        self._waitpool = ThreadPoolExecutor(
            max_workers=max_wait_threads, thread_name_prefix="aio-engine-wait"
        )
        self._closed = False
        self.use_obs(obs or NULL_OBS)

    def use_obs(self, obs: Observability) -> None:
        """(Re)wire observability — harnesses built with NULL_OBS can
        switch a live engine onto an enabled bundle."""
        self.obs = obs
        self._tracer = obs.tracer if obs.tracer.enabled else None
        self._trace_parent = None
        self._c_rpc_timeouts = obs.registry.counter("net.rpc_timeouts")

    def close(self) -> None:
        """Release the wait-op thread pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._waitpool.shutdown(wait=False, cancel_futures=True)

    def _spanned(self, op: _AioOp, name: str, cat: str, **args: Any) -> _AioOp:
        """Open one op span now (creation time, matching the other
        engines' span start order) and finish it when the trampoline
        resolves the op — failed ops record their exception type."""
        sp = self._tracer.start(
            name, cat=cat, parent=self._take_parent(), **args
        )
        fn = op.fn

        def traced() -> Any:
            try:
                result = fn()
            except BaseException as exc:
                sp.set(error=type(exc).__name__)
                sp.finish()
                raise
            if not asyncio.isfuture(result) and not asyncio.iscoroutine(result):
                sp.finish()
                return result

            async def awaited() -> Any:
                try:
                    return await result
                except BaseException as exc:
                    sp.set(error=type(exc).__name__)
                    raise
                finally:
                    sp.finish()

            return awaited()

        op.fn = traced
        return op

    # -- wiring -------------------------------------------------------------

    def bind(self, name: str, adapter: Any) -> None:
        """Register a control endpoint (short calls run on the loop,
        ``wait`` methods run on the wait pool)."""
        self._control[name] = adapter

    def bind_data(
        self,
        name: str,
        store_fn: Callable[[Any, bytes], Any],
        load_fn: Callable[[Any, int, int], bytes],
    ) -> None:
        """Register a data endpoint's store/load entry points."""
        self._data[name] = (store_fn, load_fn)

    # -- fault state --------------------------------------------------------

    def fail_endpoint(self, name: str) -> None:
        self._down.add(name)

    def recover_endpoint(self, name: str) -> None:
        self._down.discard(name)

    def is_down(self, endpoint: str) -> bool:
        return endpoint in self._down

    @property
    def faults_active(self) -> bool:
        # real components fail organically; the cores must always take
        # the failure-tolerant paths
        return True

    # -- clock / flow -------------------------------------------------------

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, dt: float) -> _AioOp:
        op = _AioOp(lambda: asyncio.sleep(dt))
        if self._tracer is not None:
            return self._spanned(op, "engine.sleep", "engine.retry", dt=dt)
        return op

    def spawn(self, gen: Generator) -> _AioOp:
        # matches the threaded engine's semantics: the sub-generator
        # runs to completion when the op resolves (the trampoline awaits
        # the nested run), not concurrently with its parent
        return _AioOp(lambda: self.run(gen))

    async def run(self, gen: Generator) -> Any:
        """The async trampoline: drive *gen* to completion in this task."""
        try:
            op = gen.send(None)
        except StopIteration as stop:
            return stop.value
        while True:
            try:
                value = op.fn()
                if asyncio.iscoroutine(value) or asyncio.isfuture(value):
                    value = await value
            except BaseException as exc:  # noqa: BLE001 - re-thrown into gen
                try:
                    op = gen.throw(exc)
                except StopIteration as stop:
                    return stop.value
            else:
                try:
                    op = gen.send(value)
                except StopIteration as stop:
                    return stop.value

    def rng(self, *names):
        return substream(self._seed, *names)

    # -- control plane ------------------------------------------------------

    def call(self, endpoint: str, method: str, *args: Any) -> _AioOp:
        # short lock-guarded critical sections: run inline on the loop
        adapter = self._control[endpoint]
        op = _AioOp(lambda: getattr(adapter, method)(*args))
        if self._tracer is not None:
            return self._spanned(
                op, f"engine.call:{endpoint}.{method}", "engine.call"
            )
        return op

    def wait(self, endpoint: str, method: str, *args: Any) -> _AioOp:
        # a wait blocks until *another* client's call signals it — it
        # must leave the loop free, so it rides the wait thread pool
        adapter = self._control[endpoint]

        def do():
            fn = getattr(adapter, method)
            return asyncio.get_running_loop().run_in_executor(
                self._waitpool, lambda: fn(*args)
            )

        op = _AioOp(do)
        if self._tracer is not None:
            return self._spanned(
                op, f"engine.wait:{endpoint}.{method}", "engine.wait"
            )
        return op

    # -- data plane ---------------------------------------------------------

    def store(
        self, client: str, endpoint: str, page_id: Any, payload: Payload
    ) -> _AioOp:
        store_fn = self._data[endpoint][0]

        def do() -> None:
            try:
                store_fn(page_id, payload.data)
            except ProviderUnavailableError as exc:
                self._c_rpc_timeouts.inc()
                raise RpcTimeoutError(str(exc)) from exc

        op = _AioOp(do)
        if self._tracer is not None:
            return self._spanned(
                op, "engine.store", "engine.data",
                endpoint=endpoint, nbytes=len(payload),
            )
        return op

    def fetch(
        self,
        client: str,
        endpoint: str,
        page_id: Any,
        data_offset: int,
        nbytes: int,
    ) -> _AioOp:
        load_fn = self._data[endpoint][1]

        def do() -> bytes:
            try:
                return load_fn(page_id, data_offset, nbytes)
            except ProviderUnavailableError as exc:
                self._c_rpc_timeouts.inc()
                raise RpcTimeoutError(str(exc)) from exc

        op = _AioOp(do)
        if self._tracer is not None:
            return self._spanned(
                op, "engine.fetch", "engine.data",
                endpoint=endpoint, nbytes=nbytes,
            )
        return op

    def charge_md(self, owners: Sequence[int]) -> _AioOp:
        # the DHT is in-process: metadata RPCs cost nothing here, but
        # the op still gets its span so all runtimes' trees match
        if self._tracer is not None:
            return self._spanned(
                _AioOp(lambda: None),
                "engine.charge_md",
                "engine.md",
                rpcs=len(owners),
            )
        return _NOOP

    def charge_md_many(self, batches: Sequence[Sequence[int]]) -> _AioOp:
        if self._tracer is not None:
            return self._spanned(
                _AioOp(lambda: None),
                "engine.charge_md_many",
                "engine.md",
                rpcs=sum(len(b) for b in batches),
                batches=len(batches),
            )
        return _NOOP
