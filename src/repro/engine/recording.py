"""A recording wrapper that captures a protocol run's RPC trace.

``RecordingEngine`` delegates every primitive to the wrapped engine and
appends a small descriptor tuple to :attr:`trace` at *op creation time*
— the moment the protocol core asks for the op, before any runtime gets
to schedule it. Creation order is therefore runtime-independent, and the
parity suite asserts the exact same trace from the DES and threaded
engines for the same scenario.

Two deliberate normalizations keep the traces comparable:

* ``sleep`` records carry no duration — backoff *structure* must match,
  but the two runtimes use different magnitudes (simulated seconds vs
  short wall delays);
* endpoint names pass through ``endpoint_label`` so callers can map the
  runtimes' different node-naming schemes onto shared labels.

The wrapper also forces :attr:`faults_active` to ``True``, so a recorded
run always takes the failure-tolerant protocol paths — the only paths
that exist on both engines. The DES batch fast paths are a production
optimization, never part of a parity trace.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from .base import Engine, Payload


class RecordingEngine(Engine):
    """Engine decorator: same semantics, plus an RPC trace."""

    def __init__(
        self,
        inner: Engine,
        endpoint_label: Optional[Callable[[str], str]] = None,
    ) -> None:
        self.inner = inner
        self.retry = inner.retry
        self.trace: List[Tuple] = []
        self._label = endpoint_label or (lambda name: name)

    # -- tracing (forwarded: spans belong to the real runtime) --------------

    @property
    def obs(self):
        return self.inner.obs

    def use_obs(self, obs) -> None:
        self.inner.use_obs(obs)

    def trace_parent(self, span) -> None:
        self.inner.trace_parent(span)

    # -- clock / flow (pass-through) ----------------------------------------

    def now(self) -> float:
        return self.inner.now()

    def sleep(self, dt: float) -> Any:
        self.trace.append(("sleep",))
        return self.inner.sleep(dt)

    def spawn(self, gen: Generator) -> Any:
        return self.inner.spawn(gen)

    def run(self, gen: Generator) -> Any:
        return self.inner.run(gen)

    def rng(self, *names):
        return self.inner.rng(*names)

    # -- recorded primitives ------------------------------------------------

    def call(self, endpoint: str, method: str, *args: Any) -> Any:
        self.trace.append(("call", endpoint, method))
        return self.inner.call(endpoint, method, *args)

    def wait(self, endpoint: str, method: str, *args: Any) -> Any:
        self.trace.append(("wait", endpoint, method))
        return self.inner.wait(endpoint, method, *args)

    def store(
        self, client: str, endpoint: str, page_id: Any, payload: Payload
    ) -> Any:
        self.trace.append(("store", self._label(endpoint), len(payload)))
        return self.inner.store(client, endpoint, page_id, payload)

    def fetch(
        self,
        client: str,
        endpoint: str,
        page_id: Any,
        data_offset: int,
        nbytes: int,
    ) -> Any:
        self.trace.append(("fetch", self._label(endpoint), nbytes))
        return self.inner.fetch(client, endpoint, page_id, data_offset, nbytes)

    def charge_md(self, owners: Sequence[int]) -> Any:
        self.trace.append(("md", tuple(owners)))
        return self.inner.charge_md(owners)

    def charge_md_many(self, batches: Sequence[Sequence[int]]) -> Any:
        self.trace.append(("md_many", tuple(tuple(b) for b in batches)))
        return self.inner.charge_md_many(batches)

    # -- fault view ---------------------------------------------------------

    def is_down(self, endpoint: str) -> bool:
        return self.inner.is_down(endpoint)

    @property
    def faults_active(self) -> bool:
        # always exercise the failure-tolerant paths: they are the only
        # ones implemented by both engines, hence the only comparable ones
        return True
