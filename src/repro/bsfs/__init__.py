"""BSFS — the BlobSeer File System layer the paper builds on top of the
BlobSeer service: a centralized namespace manager mapping files to
BLOBs, a client block cache (whole-block prefetch + write-behind), and
the layout primitive that makes the Map/Reduce scheduler location-aware.
Append works, concurrently, on shared files."""

from .namespace import BSFSFile, NamespaceManager
from .cache import ReadBlockCache, WriteBehindBuffer
from .client import BSFS, BSFSFileSystem, BSFSInputStream, BSFSOutputStream

__all__ = [
    "BSFSFile",
    "NamespaceManager",
    "ReadBlockCache",
    "WriteBehindBuffer",
    "BSFS",
    "BSFSFileSystem",
    "BSFSInputStream",
    "BSFSOutputStream",
]
