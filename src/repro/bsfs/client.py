"""BSFS — the BlobSeer File System layer, as integrated into Hadoop.

A shim over :mod:`repro.bsfs.protocol` on the threaded engine. Unlike
the HDFS baseline, :meth:`BSFSFileSystem.append` *works*: any number of
clients may hold append streams on the same file concurrently, and the
BlobSeer versioning protocol serializes their blocks without writers
ever blocking each other or the readers.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from ..blobseer.client import BlobClient, BlobSeerService
from ..common.config import BlobSeerConfig
from ..common.errors import (
    FileClosedError,
    IsADirectoryError_,
)
from ..common.fs import (
    BlockLocation,
    FileStatus,
    FileSystem,
    InputStream,
    OutputStream,
    normalize_path,
)
from ..obs import NULL_OBS, Observability
from ..sim.metrics import Metrics
from .cache import ReadBlockCache
from .namespace import BSFSFile, NamespaceManager
from .protocol import (
    AppendStreamCore,
    BSFSProtocol,
    ReadStreamCore,
    clip_block_locations,
)


class BSFS:
    """One BSFS deployment: BlobSeer service + centralized namespace manager."""

    def __init__(
        self,
        service: Optional[BlobSeerService] = None,
        config: Optional[BlobSeerConfig] = None,
        n_providers: int = 8,
        seed: int = 0,
        obs: Optional[Observability] = None,
    ) -> None:
        if obs is None:
            obs = service.obs if service is not None else NULL_OBS
        self.obs = obs
        self.service = service or BlobSeerService(
            config=config, n_providers=n_providers, seed=seed, obs=self.obs
        )
        self.namespace = NamespaceManager()
        #: experiment-level samples/counters; streams push cache and
        #: write-behind totals here when they close
        self.metrics = Metrics()
        self.engine = self.service.engine
        self.engine.bind("ns", self.namespace)
        self.protocol = BSFSProtocol(
            self.engine, self.service.protocol, obs=self.obs
        )

    def file_system(self, client_name: str = "client") -> "BSFSFileSystem":
        """A client endpoint bound to this deployment."""
        return BSFSFileSystem(self, client_name)

    @property
    def config(self) -> BlobSeerConfig:
        return self.service.config


class BSFSFileSystem(FileSystem):
    """Hadoop ``FileSystem`` facade over BSFS — with working append."""

    scheme = "bsfs"

    def __init__(self, deployment: BSFS, client_name: str) -> None:
        self.deployment = deployment
        self.client_name = client_name
        self.blob_client: BlobClient = deployment.service.client(client_name)

    # -- data paths ------------------------------------------------------------

    def create(self, path: str, overwrite: bool = False) -> "BSFSOutputStream":
        path = normalize_path(path)
        page_size = self.deployment.config.page_size
        blob_id = self.deployment.service.create_blob(page_size)
        record = self.deployment.namespace.create(
            path, blob_id, page_size, overwrite=overwrite
        )
        return BSFSOutputStream(self, path, record)

    def append(self, path: str) -> "BSFSOutputStream":
        """Open an existing file for appending — the operation this paper
        adds to the Hadoop stack. Multiple concurrent append streams on
        one path are explicitly supported."""
        path = normalize_path(path)
        record = self.deployment.namespace.get(path)
        return BSFSOutputStream(self, path, record)

    def open(self, path: str) -> "BSFSInputStream":
        path = normalize_path(path)
        record = self.deployment.namespace.get(path)
        return BSFSInputStream(self, path, record)

    # -- namespace ----------------------------------------------------------------

    def mkdirs(self, path: str) -> None:
        self.deployment.namespace.mkdirs(path)

    def delete(self, path: str, recursive: bool = False) -> bool:
        return self.deployment.namespace.delete(path, recursive=recursive) is not None

    def rename(self, src: str, dst: str) -> None:
        self.deployment.namespace.rename(src, dst)

    def exists(self, path: str) -> bool:
        return self.deployment.namespace.exists(path)

    def get_status(self, path: str) -> FileStatus:
        return self.deployment.namespace.get_status(path)

    def list_dir(self, path: str) -> List[FileStatus]:
        return self.deployment.namespace.list_dir(path)

    def get_block_locations(
        self, path: str, offset: int, length: int
    ) -> List[BlockLocation]:
        """Page-level layout from BlobSeer's new layout primitive, clipped
        to the file's namespace size — the scheduler's locality input."""
        record = self.deployment.namespace.get(path)
        size = self.deployment.namespace.get_status(path).size
        layout = self.blob_client.get_layout(record.blob_id)
        return clip_block_locations(layout, size, offset, length)


class BSFSOutputStream(OutputStream):
    """Write/append stream with write-behind block buffering. Created by
    both ``create`` (fresh BLOB) and ``append`` (shared BLOB); every
    emitted block is one BLOB append."""

    def __init__(self, fs: BSFSFileSystem, path: str, record: BSFSFile) -> None:
        self.fs = fs
        self.path = path
        self.record = record
        self._closed = False
        self._written = 0
        self._lock = threading.Lock()
        cfg = fs.deployment.config
        self._core = AppendStreamCore(
            fs.deployment.protocol,
            fs.client_name,
            path,
            record.blob_id,
            cfg.page_size,
            buffered=cfg.cache_enabled,
        )

    @property
    def appends_issued(self) -> int:
        """Number of BLOB appends issued (tests the write-behind batching)."""
        return self._core.appends_issued

    def write(self, data: bytes) -> int:
        with self._lock:
            self._check_open()
            if not data:
                return 0
            self._written += len(data)
            self.fs.deployment.engine.run(self._core.write(data))
            return len(data)

    def flush(self) -> None:
        """Commit any buffered partial block as an append right now —
        unlike HDFS, BSFS can make buffered data visible on demand."""
        with self._lock:
            self._check_open()
            self._flush_locked()

    def _flush_locked(self) -> None:
        self.fs.deployment.engine.run(self._core.flush())

    def tell(self) -> int:
        with self._lock:
            return self._written

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            self._closed = True
            metrics = self.fs.deployment.metrics
            metrics.bump("bsfs.appends_issued", float(self.appends_issued))
            buffer = self._core.buffer
            if buffer is not None:
                metrics.bump("bsfs.writebehind.flushes", float(buffer.flushes))

    def discard(self) -> None:
        """Drop buffered data and close without appending it — already
        committed blocks stay (append atomicity is per block)."""
        with self._lock:
            if self._core.buffer is not None:
                self._core.buffer.drain()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise FileClosedError(self.path)


class BSFSInputStream(InputStream):
    """Read stream with whole-block prefetching. The namespace size is
    tracked lazily: a read past the last known size re-consults the
    namespace manager, so a reader can follow a file that concurrent
    appenders are still growing (the paper's pipelined Map/Reduce)."""

    def __init__(self, fs: BSFSFileSystem, path: str, record: BSFSFile) -> None:
        self.fs = fs
        self.path = path
        self.record = record
        self._pos = 0
        self._closed = False
        self._lock = threading.Lock()
        cfg = fs.deployment.config
        obs = fs.deployment.obs
        self._tracer = obs.tracer
        self._cache: Optional[ReadBlockCache] = (
            ReadBlockCache(
                record.page_size,
                cfg.cache_blocks,
                on_hit=obs.registry.counter("bsfs.cache.hits").inc,
                on_miss=obs.registry.counter("bsfs.cache.misses").inc,
            )
            if cfg.cache_enabled
            else None
        )
        self._core = ReadStreamCore(
            fs.deployment.protocol,
            fs.client_name,
            path,
            record.blob_id,
            record.page_size,
            cache=self._cache,
        )
        self._known_size = fs.deployment.namespace.get_status(path).size

    @property
    def fetches(self) -> int:
        """Lifetime counter of BLOB reads issued (prefetch effectiveness)."""
        return self._core.fetches

    # -- positioning ---------------------------------------------------------------

    def seek(self, offset: int) -> None:
        with self._lock:
            self._check_open()
            if offset < 0:
                raise ValueError(f"negative seek {offset}")
            self._pos = offset

    def tell(self) -> int:
        with self._lock:
            return self._pos

    def refresh_size(self) -> int:
        """Re-read the file size from the namespace manager."""
        self._known_size = self.fs.deployment.namespace.get_status(self.path).size
        return self._known_size

    @property
    def size(self) -> int:
        """Last known file size (may lag behind concurrent appenders)."""
        return self._known_size

    # -- reads -----------------------------------------------------------------------

    def read(self, n: int) -> bytes:
        with self._lock:
            self._check_open()
            data = self._traced_pread(self._pos, n)
            self._pos += len(data)
            return data

    def pread(self, offset: int, n: int) -> bytes:
        with self._lock:
            self._check_open()
            return self._traced_pread(offset, n)

    def _traced_pread(self, offset: int, n: int) -> bytes:
        with self._tracer.span(
            "bsfs.read",
            cat="bsfs",
            track=self.fs.client_name,
            path=self.path,
            offset=offset,
            nbytes=n,
        ):
            return self._pread_locked(offset, n)

    def _pread_locked(self, offset: int, n: int) -> bytes:
        if n < 0:
            raise ValueError("negative read size")
        if n == 0:
            return b""
        if offset + n > self._known_size:
            self.refresh_size()
        if offset >= self._known_size:
            return b""
        n = min(n, self._known_size - offset)
        return self.fs.deployment.engine.run(
            self._core.read_range(offset, n, self._known_size)
        )

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._cache is not None:
                metrics = self.fs.deployment.metrics
                metrics.bump("bsfs.cache.hits", float(self._cache.hits))
                metrics.bump("bsfs.cache.misses", float(self._cache.misses))
                self._cache.invalidate()

    def _check_open(self) -> None:
        if self._closed:
            raise FileClosedError(self.path)
