"""The BSFS namespace manager.

"This layer consists in a centralized namespace manager, which is
responsible for maintaining a file system namespace, and for mapping
files to BLOBs." Each file maps to exactly one BLOB; the manager also
tracks the file's byte size, which an appender bumps *after* its BLOB
append completes ("appending the data to the corresponding BLOB, and
updating the size of the file at the level of the namespace manager").

Because concurrent appenders complete out of order, size updates are
monotonic maxima over each append's end offset — a reader therefore
never sees a size that published BLOB versions cannot serve.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..common.errors import FileNotFoundInNamespaceError
from ..common.fs import FileStatus, normalize_path
from ..common.namespace import Entry, NamespaceTree


@dataclass(slots=True)
class BSFSFile:
    """Per-file payload: the BLOB behind the file plus the file size."""

    blob_id: int
    page_size: int
    size: int = 0
    creation_time: float = field(default_factory=time.time)


class NamespaceManager:
    """Centralized file→BLOB mapping and size bookkeeping."""

    def __init__(self) -> None:
        self.tree = NamespaceTree()
        self._lock = threading.Lock()

    # -- file lifecycle -----------------------------------------------------------

    def create(
        self, path: str, blob_id: int, page_size: int, overwrite: bool = False
    ) -> BSFSFile:
        """Register *path* as a view of *blob_id* (size starts at 0)."""
        payload = BSFSFile(blob_id=blob_id, page_size=page_size)
        with self._lock:
            self.tree.create_file(path, payload, overwrite=overwrite)
        return payload

    def get(self, path: str) -> BSFSFile:
        """File record at *path* (raises if missing or a directory)."""
        with self._lock:
            return self.tree.lookup_file(path).payload

    def update_size(self, path: str, end_offset: int) -> int:
        """Grow the file size to at least *end_offset*; returns the new size.

        Monotonic max so concurrent appenders may report completion in
        any order.
        """
        with self._lock:
            payload: BSFSFile = self.tree.lookup_file(path).payload
            if end_offset > payload.size:
                payload.size = end_offset
            return payload.size

    # -- namespace operations --------------------------------------------------------

    def mkdirs(self, path: str) -> None:
        with self._lock:
            self.tree.mkdirs(path)

    def delete(self, path: str, recursive: bool = False) -> Optional[List[BSFSFile]]:
        """Delete; returns removed file payloads (their BLOBs become garbage)."""
        with self._lock:
            return self.tree.delete(path, recursive=recursive)

    def rename(self, src: str, dst: str) -> None:
        with self._lock:
            self.tree.rename(src, dst)

    def exists(self, path: str) -> bool:
        with self._lock:
            return self.tree.exists(path)

    def get_status(self, path: str) -> FileStatus:
        with self._lock:
            entry = self.tree.lookup(path)
            if entry.is_directory:
                return FileStatus(
                    path=normalize_path(path),
                    is_directory=True,
                    size=0,
                    modification_time=entry.modification_time,
                )
            payload: BSFSFile = entry.payload
            return FileStatus(
                path=normalize_path(path),
                is_directory=False,
                size=payload.size,
                block_size=payload.page_size,
                modification_time=entry.modification_time,
            )

    def list_dir(self, path: str) -> List[FileStatus]:
        with self._lock:
            out: List[FileStatus] = []
            for child_path, entry in self.tree.list_dir(path):
                if entry.is_directory:
                    out.append(
                        FileStatus(
                            path=child_path,
                            is_directory=True,
                            size=0,
                            modification_time=entry.modification_time,
                        )
                    )
                else:
                    payload = entry.payload
                    out.append(
                        FileStatus(
                            path=child_path,
                            is_directory=False,
                            size=payload.size,
                            block_size=payload.page_size,
                            modification_time=entry.modification_time,
                        )
                    )
            return out

    def file_count(self) -> int:
        """Number of files in the namespace (the file-count problem metric)."""
        _dirs, files = self.tree.count_entries()
        return files
