"""BSFS client-side caching.

"We also implemented a caching mechanism for read/write operations, as
Map/Reduce applications usually process data in small records (4KB,
whereas Hadoop is concerned). This mechanism prefetches a whole block
when the requested data is not already cached, and delays committing
writes until a whole block has been filled in the cache."

* :class:`ReadBlockCache` — a small LRU of whole blocks (block size ==
  BLOB page size) on the read path; a 4 KB record read touches the
  BlobSeer service only once per 64 MB block.
* :class:`WriteBehindBuffer` — accumulates small writes and emits whole
  blocks; the stream flushes the final partial block at close. Each
  emitted block becomes one BLOB append, so a concurrent appender's data
  lands atomically at block granularity (GFS-record-append-style
  semantics for multi-writer files).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional, Tuple


class ReadBlockCache:
    """LRU cache of whole blocks, keyed by block index.

    *on_hit* / *on_miss* fire once per lookup alongside the lifetime
    counters — the BSFS streams wire them to the metrics registry so
    hit-rates show up in experiment output.
    """

    def __init__(
        self,
        block_size: int,
        capacity_blocks: int,
        on_hit: Optional[Callable[[], None]] = None,
        on_miss: Optional[Callable[[], None]] = None,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be >= 1")
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self._blocks: "OrderedDict[int, bytes]" = OrderedDict()
        #: lifetime counters
        self.hits = 0
        self.misses = 0
        self._on_hit = on_hit
        self._on_miss = on_miss

    def lookup(self, index: int) -> Optional[bytes]:
        """The block at *index*, or None on a (counted) miss.

        The split lookup/:meth:`insert` API serves the generator stream
        cores, which must yield to their engine between the miss and the
        fill; :meth:`get` remains for synchronous callers.
        """
        block = self._blocks.get(index)
        if block is None:
            self.misses += 1
            if self._on_miss is not None:
                self._on_miss()
            return None
        self.hits += 1
        if self._on_hit is not None:
            self._on_hit()
        self._blocks.move_to_end(index)
        return block

    def insert(self, index: int, block: Optional[bytes]) -> None:
        """Fill *index* after a miss (LRU evicting). None — a simulated
        read that carries no bytes — is not cached."""
        if block is None:
            return
        self._blocks[index] = block
        while len(self._blocks) > self.capacity_blocks:
            self._blocks.popitem(last=False)

    def get(
        self, index: int, fetch: Callable[[int], bytes]
    ) -> bytes:
        """The block at *index*, via *fetch* on a miss (LRU evicting)."""
        block = self.lookup(index)
        if block is None:
            block = fetch(index)
            self.insert(index, block)
        return block

    def invalidate(self, index: Optional[int] = None) -> None:
        """Drop one block (or everything) — used when a cached partial
        tail block may have grown."""
        if index is None:
            self._blocks.clear()
        else:
            self._blocks.pop(index, None)

    def __len__(self) -> int:
        return len(self._blocks)


class WriteBehindBuffer:
    """Accumulates writes, releasing ~block-sized batches for commitment.

    ``add`` returns the batches now ready to ship; ``drain`` returns the
    final partial batch. The caller owns actually committing them (one
    BLOB append per batch).

    Batches are cut **only between ``add`` calls, never inside one**:
    each application-level write (one record, in Hadoop's record-writer
    usage) lands in exactly one BLOB append, so records stay intact even
    when many appenders' batches interleave in the shared file —
    GFS-record-append-style atomicity. An oversized single write becomes
    one (multi-page) append of its own, which BlobSeer handles
    atomically anyway.
    """

    def __init__(self, block_size: int) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self._buffer = bytearray()
        #: total bytes accepted
        self.accepted = 0
        #: lifetime count of batches released (add + drain)
        self.flushes = 0

    def add(self, data: bytes) -> List[bytes]:
        """Buffer *data*; returns every batch now ready to commit."""
        self.accepted += len(data)
        out: List[bytes] = []
        if self._buffer and len(self._buffer) + len(data) > self.block_size:
            out.append(bytes(self._buffer))
            self._buffer.clear()
        if len(data) >= self.block_size:
            out.append(bytes(data))
        else:
            self._buffer += data
            if len(self._buffer) == self.block_size:
                out.append(bytes(self._buffer))
                self._buffer.clear()
        self.flushes += len(out)
        return out

    def drain(self) -> Optional[bytes]:
        """The remaining partial block (None when empty)."""
        if not self._buffer:
            return None
        block = bytes(self._buffer)
        self._buffer.clear()
        self.flushes += 1
        return block

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet released."""
        return len(self._buffer)
