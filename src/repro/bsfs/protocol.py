"""The BSFS client protocol, sans-IO.

The file layer's behaviours — the paper's two-step append (BLOB append,
then a file-size update at the centralized namespace manager), namespace
lookups, whole-block prefetching and write-behind batching — live here
as engine-parameterized generators, shared by the simulated deployment
(:mod:`repro.bsfs.simulated`) and the threaded Hadoop ``FileSystem``
facade (:mod:`repro.bsfs.client`).

The namespace manager is the ``ns`` control endpoint of the engine: the
DES runtime charges each call as a serialized RPC at the dedicated
namespace machine, the threaded runtime calls the lock-based
:class:`~repro.bsfs.namespace.NamespaceManager` directly. All data
movement delegates to the :class:`~repro.blobseer.protocol.BlobSeerProtocol`
sharing the same engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..blobseer.protocol import BlobSeerProtocol
from ..common.fs import BlockLocation
from ..engine.base import Payload
from ..obs import NULL_OBS, Observability
from .cache import ReadBlockCache, WriteBehindBuffer


class BSFSProtocol:
    """The one BSFS client stack, bound to a runtime through its engine."""

    def __init__(
        self,
        engine,
        blobseer: BlobSeerProtocol,
        obs: Optional[Observability] = None,
        metrics=None,
    ) -> None:
        self.engine = engine
        self.blobseer = blobseer
        self.obs = obs or NULL_OBS
        #: per-operation throughput sink (the simulator's Metrics); None
        #: on runtimes that do not sample op timings
        self.metrics = metrics
        self._c_ns_rpcs = self.obs.registry.counter("ns.rpcs")
        #: path -> file record, when the ``ns_record_cache`` knob is on.
        #: A record's blob binding and page size are immutable, and the
        #: operations resolved through the cache never consult its size
        #: field (appends learn their offset from the BLOB ticket, reads
        #: are bounds-checked against the BLOB version), so cached
        #: entries cannot go stale in a way that matters.
        cfg = getattr(blobseer, "config", None)
        if cfg is not None and getattr(cfg, "ns_record_cache", False):
            self._record_cache: Optional[Dict[str, object]] = {}
            self._c_ns_cache_hits = self.obs.registry.counter("ns.cache.hits")
            self._c_ns_cache_misses = self.obs.registry.counter(
                "ns.cache.misses"
            )
        else:
            self._record_cache = None

    # -- namespace RPCs ------------------------------------------------------

    def _ns(self, client, parent, op, method, *args):
        """Generator: one charged round trip to the namespace manager."""
        self._c_ns_rpcs.inc()
        sp = self.obs.tracer.start(
            f"ns.{op}", cat="bsfs.ns", parent=parent, track=client
        )
        self.engine.trace_parent(sp)
        result = yield self.engine.call("ns", method, *args)
        sp.finish()
        return result

    def _lookup(self, client, parent, path: str):
        """Generator: resolve *path* to its file record, through the
        client record cache when enabled."""
        cache = self._record_cache
        if cache is not None:
            record = cache.get(path)
            if record is not None:
                self._c_ns_cache_hits.inc()
                return record
            self._c_ns_cache_misses.inc()
        record = yield from self._ns(client, parent, "lookup", "get", path)
        if cache is not None:
            cache[path] = record
        return record

    # -- file operations -----------------------------------------------------

    def create_file(
        self,
        client: str,
        path: str,
        blob_id: int,
        page_size: int,
        overwrite: bool = False,
    ):
        """Generator: register *path* as a view of an (already created)
        BLOB at the namespace manager. Returns the file record."""
        sp = self.obs.tracer.start(
            "bsfs.create", cat="bsfs", track=client, path=path
        )
        record = yield from self._ns(
            client, sp, "create", "create", path, blob_id, page_size, overwrite
        )
        if self._record_cache is not None:
            # an overwrite rebinds the path to a new BLOB
            self._record_cache.pop(path, None)
        sp.finish(blob=blob_id)
        return record

    def append_file(self, client: str, path: str, payload: Payload):
        """Generator: the paper's two-step append — look the file up,
        append to its BLOB, bump the namespace size to the append's end
        offset. Returns the BLOB version generated."""
        engine = self.engine
        start = engine.now()
        sp = self.obs.tracer.start(
            "bsfs.append",
            cat="bsfs",
            track=client,
            path=path,
            nbytes=len(payload),
        )
        record = yield from self._lookup(client, sp, path)
        version, _offset, group_end = yield from self.blobseer.append_ex(
            client, record.blob_id, payload, record=False, parent=sp
        )
        # the appender learns its publish round's end offset from the
        # BLOB layer; concurrent appenders may report in any order (the
        # namespace size is a monotonic max). Under group commit only
        # the batch leader reports — one size bump lands a whole batch.
        if group_end is not None:
            yield from self._ns(
                client, sp, "update_size", "update_size", path, group_end
            )
        sp.finish(version=version)
        if self.metrics is not None:
            self.metrics.record(client, "append", start, engine.now(), len(payload))
        return version

    def append_block(self, client: str, path: str, blob_id: int, payload: Payload):
        """Generator: commit one write-behind block — like
        :meth:`append_file` minus the lookup (an open stream already
        holds the file record)."""
        sp = self.obs.tracer.start(
            "bsfs.append",
            cat="bsfs",
            track=client,
            path=path,
            nbytes=len(payload),
        )
        version, _offset, group_end = yield from self.blobseer.append_ex(
            client, blob_id, payload, record=False, parent=sp
        )
        if group_end is not None:
            yield from self._ns(
                client, sp, "update_size", "update_size", path, group_end
            )
        sp.finish(version=version)
        return version

    def read_file(self, client: str, path: str, offset: int, nbytes: int):
        """Generator: look the file up and read a range of its BLOB.
        Returns ``(version, data)`` (data is None under the DES runtime,
        which moves no real bytes)."""
        engine = self.engine
        start = engine.now()
        sp = self.obs.tracer.start(
            "bsfs.read",
            cat="bsfs",
            track=client,
            path=path,
            offset=offset,
            nbytes=nbytes,
        )
        record = yield from self._lookup(client, sp, path)
        version, data = yield from self.blobseer.read(
            client, record.blob_id, offset, nbytes, record=False, parent=sp
        )
        sp.finish(version=version)
        if self.metrics is not None:
            self.metrics.record(client, "read", start, engine.now(), nbytes)
        return version, data


class AppendStreamCore:
    """Write-behind append-stream logic, engine-agnostic.

    Buffers small writes and commits ~block-sized batches, each as one
    BLOB append followed by a namespace size bump — so records stay
    intact when many appenders interleave in a shared file. The runtime
    shims own locking and lifecycle; this core owns batching and the
    commit protocol.
    """

    def __init__(
        self,
        protocol: BSFSProtocol,
        client: str,
        path: str,
        blob_id: int,
        block_size: int,
        buffered: bool = True,
    ) -> None:
        self.protocol = protocol
        self.client = client
        self.path = path
        self.blob_id = blob_id
        self.buffer: Optional[WriteBehindBuffer] = (
            WriteBehindBuffer(block_size) if buffered else None
        )
        #: number of BLOB appends issued (tests the write-behind batching)
        self.appends_issued = 0
        self._c_flushes = protocol.obs.registry.counter(
            "bsfs.writebehind.flushes"
        )

    def write(self, data: bytes):
        """Generator: accept *data*, committing any batches it completes."""
        if self.buffer is None:
            yield from self._commit(data)
            return
        for block in self.buffer.add(data):
            yield from self._commit(block)

    def flush(self):
        """Generator: commit the buffered partial block right now."""
        if self.buffer is not None:
            block = self.buffer.drain()
            if block:
                yield from self._commit(block)

    def _commit(self, block: bytes):
        yield from self.protocol.append_block(
            self.client, self.path, self.blob_id, Payload(block)
        )
        self.appends_issued += 1
        if self.buffer is not None:
            self._c_flushes.inc()


class ReadStreamCore:
    """Whole-block prefetching read-stream logic, engine-agnostic.

    On a cache miss the core fetches the entire block (block size ==
    BLOB page size) containing the requested range; a 4 KB record read
    touches the BlobSeer service only once per block. A cached partial
    tail block that has since grown is invalidated and refetched.
    """

    def __init__(
        self,
        protocol: BSFSProtocol,
        client: str,
        path: str,
        blob_id: int,
        page_size: int,
        cache: Optional[ReadBlockCache] = None,
    ) -> None:
        self.protocol = protocol
        self.client = client
        self.path = path
        self.blob_id = blob_id
        self.page_size = page_size
        self.cache = cache
        #: lifetime counter of BLOB reads issued (prefetch effectiveness)
        self.fetches = 0

    def read_range(self, offset: int, nbytes: int, known_size: int):
        """Generator: read ``[offset, offset+nbytes)`` — already clipped
        to *known_size* by the caller — block by block through the
        cache. Returns the bytes (None under the DES runtime)."""
        pieces: List[Optional[bytes]] = []
        pos, remaining = offset, nbytes
        while remaining > 0:
            index = pos // self.page_size
            in_block = pos - index * self.page_size
            take = min(remaining, self.page_size - in_block)
            piece = yield from self._read_block(index, in_block, take, known_size)
            pieces.append(piece)
            pos += take
            remaining -= take
        if any(piece is None for piece in pieces):
            return None
        return b"".join(pieces)

    def _read_block(self, index: int, offset: int, size: int, known_size: int):
        base = index * self.page_size
        if self.cache is None:
            self.fetches += 1
            _version, data = yield from self.protocol.blobseer.read(
                self.client, self.blob_id, base + offset, size, record=False
            )
            return data
        block = self.cache.lookup(index)
        if block is not None and len(block) < offset + size:
            # a previously partial tail block has grown since it was cached
            self.cache.invalidate(index)
            block = self.cache.lookup(index)  # recounted as the miss it now is
        if block is None:
            length = min(self.page_size, known_size - base)
            self.fetches += 1
            _version, block = yield from self.protocol.blobseer.read(
                self.client, self.blob_id, base, length, record=False
            )
            self.cache.insert(index, block)
        return block[offset : offset + size] if block is not None else None


def clip_block_locations(
    layout, size: int, offset: int, length: int
) -> List[BlockLocation]:
    """Page-level ``(extent, providers)`` layout entries clipped to the
    namespace file *size* and intersected with ``[offset, offset+length)``
    — what the modified framework hands the jobtracker for
    locality-aware scheduling."""
    out: List[BlockLocation] = []
    for extent, providers in layout:
        visible = min(extent.size, max(0, size - extent.offset))
        if visible <= 0:
            continue
        if extent.offset + visible > offset and extent.offset < offset + length:
            out.append(
                BlockLocation(
                    offset=extent.offset, length=visible, hosts=providers
                )
            )
    return out
