"""Simulated BSFS — a shim over the protocol core on the DES engine.

The file-layer logic lives in :mod:`repro.bsfs.protocol`; this module
wires it to the deployment's DES engine (shared with the underlying
:class:`~repro.blobseer.simulated.SimBlobSeer`), binding the real
:class:`~repro.bsfs.namespace.NamespaceManager` as the ``ns`` control
endpoint — a one-slot charged service, like the version manager — so
microbenchmarks exercise exactly the paper's two-step append.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..blobseer.metadata.segment_tree import build_version, capacity_for
from ..blobseer.pages import Fragment, fresh_page_id
from ..blobseer.simulated import BlobSeerRoles, SimBlobSeer
from ..common.config import BlobSeerConfig
from ..engine.base import Payload
from ..obs import NULL_OBS, Observability
from ..sim.cluster import SimCluster
from ..sim.core import Event
from ..sim.metrics import Metrics
from .namespace import NamespaceManager
from .protocol import BSFSProtocol


@dataclass(frozen=True, slots=True)
class BSFSRoles:
    """BlobSeer roles plus the dedicated namespace-manager machine."""

    blobseer: BlobSeerRoles
    namespace_manager: str


class SimBSFS:
    """A BSFS deployment on a simulated cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        roles: BSFSRoles,
        config: Optional[BlobSeerConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.roles = roles
        self.obs = obs or NULL_OBS
        self.blobseer = SimBlobSeer(cluster, roles.blobseer, config, obs=self.obs)
        self.config = self.blobseer.config
        self.namespace = NamespaceManager()
        self.metrics = Metrics()
        self.engine = self.blobseer.engine
        self.engine.bind(
            "ns", self.namespace, cluster.config.namespace_rpc_time
        )
        self.protocol = BSFSProtocol(
            self.engine,
            self.blobseer.protocol,
            obs=self.obs,
            metrics=self.metrics,
        )

    # -- file operations -----------------------------------------------------------

    def create_proc(self, client: str, path: str) -> Generator[Event, None, int]:
        """Create an empty file backed by a fresh BLOB; returns blob id."""
        blob_id = self.blobseer.create_blob()
        yield from self.protocol.create_file(
            client, path, blob_id, self.config.page_size
        )
        return blob_id

    def append_proc(
        self, client: str, path: str, nbytes: int
    ) -> Generator[Event, None, int]:
        """The paper's two-step append (BLOB append + namespace size
        update); returns the BLOB version generated."""
        version = yield from self.protocol.append_file(
            client, path, Payload(nbytes=nbytes)
        )
        return version

    def read_proc(
        self, client: str, path: str, offset: int, nbytes: int
    ) -> Generator[Event, None, int]:
        """Read a file range; returns the BLOB version served."""
        version, _data = yield from self.protocol.read_file(
            client, path, offset, nbytes
        )
        return version

    # -- experiment plumbing -----------------------------------------------------------

    def preload(self, path: str, nbytes: int) -> None:
        """Instantly materialize a file of *nbytes* (control plane only):
        pages are placed and a version-1 segment tree is built, but no
        simulated time passes — sets up the read-side benchmarks."""
        core = self.blobseer.core
        ps = self.config.page_size
        if not self.namespace.exists(path):
            blob_id = core.create_blob(ps)
            self.namespace.create(path, blob_id, ps)
        record = self.namespace.get(path)
        ticket = core.assign_append(record.blob_id, nbytes)
        if ticket.offset != 0:
            raise ValueError("preload only supports empty files")
        n_pages = -(-nbytes // ps)
        fills = [min(ps, nbytes - p * ps) for p in range(n_pages)]
        placements = self.blobseer.provider_manager.allocate(
            fills, replication=self.config.replication
        )
        changes = {
            p: (
                Fragment(
                    start=0,
                    length=fills[p],
                    page_id=fresh_page_id(record.blob_id, "preload"),
                    data_offset=0,
                    providers=placements[p],
                ),
            )
            for p in range(n_pages)
        }
        prereq = core.metadata_prereq(record.blob_id, ticket.version)
        assert prereq is not None, "preload requires a quiescent blob"
        prev_root, prev_capacity = prereq
        root = build_version(
            self.blobseer.dht,
            record.blob_id,
            ticket.version,
            prev_root,
            prev_capacity,
            changes,
            capacity_for(n_pages),
        )
        core.commit(record.blob_id, ticket.version, root)
        self.namespace.update_size(path, ticket.new_size)
