"""Simulated BSFS — file-level operations on the DES cluster.

Wraps :class:`~repro.blobseer.simulated.SimBlobSeer` with the
centralized namespace manager (a one-slot service with a configurable
RPC time, like the version manager) so that microbenchmarks exercise
exactly the paper's two-step append: BLOB append, then a file-size
update at the namespace manager.

BSFS has no data-plane flows of its own: every byte moves through
``SimBlobSeer``, whose page fan-outs start via the network's
``transfer_many`` batch API so same-instant replica churn coalesces
into one end-of-timestep reallocation (see ``sim/network.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

from ..blobseer.metadata.segment_tree import build_version, capacity_for
from ..blobseer.pages import Fragment, fresh_page_id
from ..blobseer.simulated import BlobSeerRoles, SimBlobSeer
from ..common.config import BlobSeerConfig
from ..common.errors import FileNotFoundInNamespaceError
from ..obs import NULL_OBS, Observability
from ..obs.tracer import Span
from ..sim.cluster import SimCluster
from ..sim.core import Event
from ..sim.metrics import Metrics
from ..sim.resources import Resource
from .namespace import NamespaceManager


@dataclass(frozen=True, slots=True)
class BSFSRoles:
    """BlobSeer roles plus the dedicated namespace-manager machine."""

    blobseer: BlobSeerRoles
    namespace_manager: str


class SimBSFS:
    """A BSFS deployment on a simulated cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        roles: BSFSRoles,
        config: Optional[BlobSeerConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.roles = roles
        self.obs = obs or NULL_OBS
        self.blobseer = SimBlobSeer(cluster, roles.blobseer, config, obs=self.obs)
        self.config = self.blobseer.config
        self.namespace = NamespaceManager()
        self._ns_slot = Resource(self.env, capacity=1)
        self.metrics = Metrics()
        self._c_ns_rpcs = self.obs.registry.counter("ns.rpcs")

    # -- namespace RPC ---------------------------------------------------------

    def _ns_call(
        self,
        fn,
        op: str = "call",
        client: Optional[str] = None,
        parent: Optional[Span] = None,
    ) -> Event:
        """Round trip to the namespace manager (serialized service)."""
        self._c_ns_rpcs.inc()
        done = self._ns_slot.round_trip(
            self.cluster.config.latency,
            self.cluster.config.namespace_rpc_time,
            fn,
        )
        if self.obs.tracer.enabled:
            sp = self.obs.tracer.start(
                f"ns.{op}", cat="bsfs.ns", parent=parent, track=client
            )
            done.callbacks.append(lambda ev: sp.finish() if ev._ok else None)
        return done

    # -- file operations -----------------------------------------------------------

    def create_proc(self, client: str, path: str) -> Generator[Event, None, int]:
        """Create an empty file backed by a fresh BLOB; returns blob id."""
        sp = self.obs.tracer.start(
            "bsfs.create", cat="bsfs", track=client, path=path
        )
        blob_id = self.blobseer.create_blob()
        yield self._ns_call(
            lambda: self.namespace.create(path, blob_id, self.config.page_size),
            op="create",
            client=client,
            parent=sp,
        )
        sp.finish(blob=blob_id)
        return blob_id

    def append_proc(
        self, client: str, path: str, nbytes: int
    ) -> Generator[Event, None, int]:
        """The paper's two-step append: BLOB append + namespace size update.

        Returns the BLOB version generated.
        """
        start = self.env.now
        sp = self.obs.tracer.start(
            "bsfs.append", cat="bsfs", track=client, path=path, nbytes=nbytes
        )
        record = yield self._ns_call(
            lambda: self.namespace.get(path),
            op="lookup",
            client=client,
            parent=sp,
        )
        version = yield from self.blobseer.append_proc(
            client, record.blob_id, nbytes, record=False, parent=sp
        )
        # the appender learns its end offset from the version it created
        size = self.blobseer.core.get_version(record.blob_id, version).size
        yield self._ns_call(
            lambda: self.namespace.update_size(path, size),
            op="update_size",
            client=client,
            parent=sp,
        )
        sp.finish(version=version)
        self.metrics.record(client, "append", start, self.env.now, nbytes)
        return version

    def read_proc(
        self, client: str, path: str, offset: int, nbytes: int
    ) -> Generator[Event, None, int]:
        """Read a file range; returns the BLOB version served."""
        start = self.env.now
        sp = self.obs.tracer.start(
            "bsfs.read",
            cat="bsfs",
            track=client,
            path=path,
            offset=offset,
            nbytes=nbytes,
        )
        record = yield self._ns_call(
            lambda: self.namespace.get(path),
            op="lookup",
            client=client,
            parent=sp,
        )
        version = yield from self.blobseer.read_proc(
            client, record.blob_id, offset, nbytes, record=False, parent=sp
        )
        sp.finish(version=version)
        self.metrics.record(client, "read", start, self.env.now, nbytes)
        return version

    # -- experiment plumbing -----------------------------------------------------------

    def preload(self, path: str, nbytes: int) -> None:
        """Instantly materialize a file of *nbytes* (control plane only).

        Used to set up the read side of the microbenchmarks without
        simulating the (irrelevant) load phase: pages are placed by the
        provider manager and a version-1 segment tree is built, but no
        simulated time passes.
        """
        core = self.blobseer.core
        ps = self.config.page_size
        if not self.namespace.exists(path):
            blob_id = core.create_blob(ps)
            self.namespace.create(path, blob_id, ps)
        record = self.namespace.get(path)
        ticket = core.assign_append(record.blob_id, nbytes)
        if ticket.offset != 0:
            raise ValueError("preload only supports empty files")
        n_pages = -(-nbytes // ps)
        fills = [min(ps, nbytes - p * ps) for p in range(n_pages)]
        placements = self.blobseer.provider_manager.allocate(
            fills, replication=self.config.replication
        )
        changes = {
            p: (
                Fragment(
                    start=0,
                    length=fills[p],
                    page_id=fresh_page_id(record.blob_id, "preload"),
                    data_offset=0,
                    providers=placements[p],
                ),
            )
            for p in range(n_pages)
        }
        prereq = core.metadata_prereq(record.blob_id, ticket.version)
        assert prereq is not None, "preload requires a quiescent blob"
        prev_root, prev_capacity = prereq
        root = build_version(
            self.blobseer.dht,
            record.blob_id,
            ticket.version,
            prev_root,
            prev_capacity,
            changes,
            capacity_for(n_pages),
        )
        core.commit(record.blob_id, ticket.version, root)
        self.namespace.update_size(path, ticket.new_size)
