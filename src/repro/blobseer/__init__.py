"""BlobSeer — versioning-based, concurrency-optimized BLOB management.

A Python reimplementation of the BlobSeer data-management service the
paper builds on: BLOBs split into pages stored on *providers*, placement
by a load-balancing *provider manager*, per-version distributed segment
trees held by *metadata providers*, and a centralized *version manager*
that serializes only version assignment and in-order publication.

Two runtimes share these algorithms:

* the threaded runtime (:class:`BlobSeerService` / :class:`BlobClient`)
  stores real bytes and is what tests, examples and applications use;
* the simulated runtime (:mod:`repro.blobseer.simulated`) runs the same
  protocol on the :mod:`repro.sim` cluster model to reproduce the
  paper's Grid'5000-scale measurements.
"""

from .pages import Fragment, PageFragments, PageId, fresh_page_id, overlay
from .provider import Provider
from .provider_manager import ProviderManager
from .persistence import InMemoryPageStore, LogStructuredPageStore, PageStore
from .version_manager import (
    BlobState,
    ThreadedVersionManager,
    Ticket,
    VersionManagerCore,
    VersionRecord,
)
from .client import BlobClient, BlobSeerService
from .pruning import PruneReport, prune_blob

__all__ = [
    "Fragment",
    "PageFragments",
    "PageId",
    "fresh_page_id",
    "overlay",
    "Provider",
    "ProviderManager",
    "InMemoryPageStore",
    "LogStructuredPageStore",
    "PageStore",
    "BlobState",
    "ThreadedVersionManager",
    "Ticket",
    "VersionManagerCore",
    "VersionRecord",
    "BlobClient",
    "BlobSeerService",
    "PruneReport",
    "prune_blob",
]
