"""BlobSeer on the simulated cluster — a shim over the protocol core.

The client logic lives in :mod:`repro.blobseer.protocol`; this module
assembles a deployment around the DES engine: it binds the
version-manager service (:class:`~repro.blobseer.sim_vm.SimVMService`,
which also keeps append-ticket leases on the simulation clock) and
exposes the generator entry points experiment drivers wrap in kernel
processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..common.config import BlobSeerConfig
from ..engine.base import Payload
from ..engine.des import DesEngine
from ..obs import NULL_OBS, Observability
from ..obs.tracer import Span
from ..sim.cluster import SimCluster
from ..sim.core import Event
from ..sim.metrics import Metrics
from .metadata.dht import MetadataDHT
from .placement import make_placement_policy
from .protocol import BlobSeerProtocol, compute_layout
from .provider_manager import ProviderManager
from .sim_vm import SimVMService
from .version_manager import VersionManagerCore


@dataclass(frozen=True, slots=True)
class BlobSeerRoles:
    """Which cluster machines play which BlobSeer role — the paper's
    deployment: one version manager, one provider manager, the metadata
    providers, and the remaining nodes as data providers."""

    version_manager: str
    provider_manager: str
    metadata_providers: Tuple[str, ...]
    data_providers: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.metadata_providers:
            raise ValueError("need at least one metadata provider")
        if not self.data_providers:
            raise ValueError("need at least one data provider")


class SimBlobSeer:
    """A BlobSeer deployment on a simulated cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        roles: BlobSeerRoles,
        config: Optional[BlobSeerConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.roles = roles
        self.config = config or BlobSeerConfig()
        self.config.validate()
        self.obs = obs or NULL_OBS
        self.core = VersionManagerCore(self.obs)
        self.dht = MetadataDHT(len(roles.metadata_providers))
        topology = {
            name: rack
            for name in roles.data_providers
            if (rack := cluster.node(name).net.rack) is not None
        }
        self.provider_manager = ProviderManager(
            list(roles.data_providers),
            seed=cluster.config.seed,
            obs=self.obs,
            policy=make_placement_policy(self.config.placement_policy),
            topology=topology,
        )
        self.metrics = Metrics()

        self.engine = DesEngine(cluster, obs=self.obs)
        self._vm = SimVMService(self.core, self.engine, self.config, self.obs)
        self.engine.bind(
            "vm",
            self._vm,
            cluster.config.version_assign_time,
            # a ready push only files the change map and answers
            # lead/queued — cheaper than the assignment critical section
            method_services={"commit_ready": cluster.config.commit_push_time},
        )
        self.engine.bind_md(len(roles.metadata_providers))
        self.retry = self.engine.retry
        #: legacy raw-VM-RPC helper for drivers shaping VM traffic directly
        self._vm_call = self._vm.call
        self.protocol = BlobSeerProtocol(
            self.engine,
            self.config,
            self.provider_manager,
            self.dht,
            obs=self.obs,
            metrics=self.metrics,
        )
        self.replicator = None
        if self.config.rereplication:
            from .rereplication import HotPageReplicator

            # the daemon runs on the provider-manager machine; each
            # periodic tick launches one scan as a simulated process
            self.replicator = HotPageReplicator(
                self.protocol, roles.provider_manager, obs=self.obs
            )
            self.env.every(
                self.config.rereplication_period_s,
                lambda: self.env.process(self.replicator.scan()),
            )

    # -- blob lifecycle -------------------------------------------------------

    def create_blob(self, page_size: Optional[int] = None) -> int:
        """Instant (control-plane) blob creation; returns the blob id."""
        return self.core.create_blob(page_size or self.config.page_size)

    # -- fault injection -------------------------------------------------------

    def fail_provider(self, name: str) -> None:
        """Crash a data provider: excluded from placement, reads time
        out; its sole-replica pages are unreadable until recovery."""
        if name not in self.roles.data_providers:
            raise KeyError(f"no data provider {name!r}")
        self.provider_manager.mark_down(name)
        self.engine.fail_endpoint(name)

    def recover_provider(self, name: str) -> None:
        self.provider_manager.mark_up(name)
        self.engine.recover_endpoint(name)

    def fail_metadata_provider(self, index: int) -> None:
        """Crash metadata provider *index*: its RPCs time out and retry."""
        if not 0 <= index < len(self.roles.metadata_providers):
            raise IndexError(f"no metadata provider {index}")
        self.engine.fail_md(index)

    def recover_metadata_provider(self, index: int) -> None:
        self.engine.recover_md(index)

    # -- client operations -----------------------------------------------------

    def append_proc(
        self, client: str, blob_id: int, nbytes: int,
        record: bool = True, parent: Optional[Span] = None,
    ) -> Generator[Event, None, int]:
        """Simulated process: one append of *nbytes*; returns the version."""
        version, _offset = yield from self.protocol.append(
            client, blob_id, Payload(nbytes=nbytes), record=record, parent=parent
        )
        return version

    def write_proc(
        self, client: str, blob_id: int, offset: int, nbytes: int,
        record: bool = True, parent: Optional[Span] = None,
    ) -> Generator[Event, None, int]:
        """Simulated process: one write-at-offset; returns the version."""
        version = yield from self.protocol.write(
            client, blob_id, offset, Payload(nbytes=nbytes),
            record=record, parent=parent,
        )
        return version

    def read_proc(
        self, client: str, blob_id: int, offset: int, nbytes: int,
        version: Optional[int] = None, record: bool = True,
        parent: Optional[Span] = None,
    ) -> Generator[Event, None, int]:
        """Simulated process: read a range; returns the version read."""
        if nbytes <= 0:
            raise ValueError("read size must be positive")
        version_read, _data = yield from self.protocol.read(
            client, blob_id, offset, nbytes,
            version=version, record=record, parent=parent,
        )
        return version_read

    # -- introspection ---------------------------------------------------------

    def layout(
        self, blob_id: int, version: Optional[int] = None
    ) -> List[Tuple[int, int, Tuple[str, ...]]]:
        """(offset, length, providers) of each stored fragment of a
        version — the locality primitive, control-plane only."""
        rec = (
            self.core.latest_published(blob_id)
            if version is None
            else self.core.get_version(blob_id, version)
        )
        return compute_layout(self.dht, rec, self.core.blob(blob_id).page_size)
