"""Simulated BlobSeer runtime — the Grid'5000-scale performance model.

The same protocol and the same metadata algorithms as the threaded
runtime, but run as processes on a :class:`~repro.sim.cluster.SimCluster`:

* page payloads are *sized but not materialized* — their transport costs
  flow through the max-min-fair network model and the providers' disks;
* the version manager's critical section is a one-slot
  :class:`~repro.sim.resources.Resource` with a configurable service
  time, so version assignment is the only serialization point, exactly
  as in the real system;
* every segment-tree node read/write the *genuine* tree algorithms
  perform is charged as an RPC against the owning simulated metadata
  provider (see :class:`~repro.blobseer.metadata.dht.RecordingStore`), so
  metadata contention is modeled from real traffic, not from a formula;
* providers acknowledge a page once it is received; persistence to disk
  happens asynchronously (BlobSeer providers cache pages in memory and
  persist through the BerkeleyDB layer in the background);
* unaligned appends are pure fragment overlays: a boundary page costs
  one extra metadata read, never a data read-modify-write.

Clients are generator-based processes; drive them with
``cluster.env.process(blobseer.append_proc(...))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

from ..common.config import BlobSeerConfig
from ..common.errors import (
    OutOfRangeReadError,
    PageNotFoundError,
    ProviderUnavailableError,
    ReplicationError,
)
from ..common.rng import substream
from ..faults.plan import RetryPolicy
from ..obs import NULL_OBS, Observability
from ..obs.tracer import Span
from ..sim.cluster import SimCluster
from ..sim.core import Event
from ..sim.metrics import Metrics
from ..sim.resources import Resource, batch_round_trips
from .metadata.dht import MetadataDHT, RecordingStore
from .metadata.segment_tree import (
    build_version,
    capacity_for,
    iter_all_pages,
    query_pages,
)
from .pages import Fragment, PageFragments, fresh_page_id, overlay
from .provider_manager import ProviderManager
from .version_manager import Ticket, VersionManagerCore


@dataclass(frozen=True, slots=True)
class BlobSeerRoles:
    """Which cluster machines play which BlobSeer role.

    The paper's deployment: "one version manager, one provider manager,
    one node for the namespace manager and 20 metadata providers. The
    remaining nodes are used as data providers."
    """

    version_manager: str
    provider_manager: str
    metadata_providers: Tuple[str, ...]
    data_providers: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.metadata_providers:
            raise ValueError("need at least one metadata provider")
        if not self.data_providers:
            raise ValueError("need at least one data provider")


class SimBlobSeer:
    """A BlobSeer deployment on a simulated cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        roles: BlobSeerRoles,
        config: Optional[BlobSeerConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.roles = roles
        self.config = config or BlobSeerConfig()
        self.config.validate()
        self.obs = obs or NULL_OBS
        if self.obs.tracer.enabled:
            # spans carry simulated timestamps; rebasing keeps successive
            # deployments sequential in one trace
            env = self.env
            self.obs.tracer.use_clock(lambda: env.now)
        self.core = VersionManagerCore(self.obs)
        self.dht = MetadataDHT(len(roles.metadata_providers))
        self.provider_manager = ProviderManager(
            list(roles.data_providers), seed=cluster.config.seed, obs=self.obs
        )
        # one-slot critical section at the version manager
        self._vm_slot = Resource(self.env, capacity=1)
        # each metadata provider serves RPCs one at a time
        self._mdp_slots = [
            Resource(self.env, capacity=1) for _ in roles.metadata_providers
        ]
        self.metrics = Metrics()
        self._h_ticket_wait = self.obs.registry.histogram(
            "vm.append_ticket_wait_s"
        )
        self._h_turn_wait = self.obs.registry.histogram(
            "vm.metadata_turn_wait_s"
        )
        self._c_md_rpcs = self.obs.registry.counter("md.rpcs")
        self._c_lease_expiries = self.obs.registry.counter("vm.lease_expiries")
        self._c_rpc_timeouts = self.obs.registry.counter("net.rpc_timeouts")
        # failure model — dormant (zero-cost fast paths) until the first
        # fault is injected
        self._down_data: Set[str] = set()
        self._down_mdp: Set[int] = set()
        self._faults_on = False
        self.retry = RetryPolicy.from_cluster(cluster.config)
        self._read_rng = substream(
            cluster.config.seed, "blobseer", "replica-rotation"
        )

    # -- blob lifecycle -------------------------------------------------------

    def create_blob(self, page_size: Optional[int] = None) -> int:
        """Instant (control-plane) blob creation; returns the blob id."""
        return self.core.create_blob(page_size or self.config.page_size)

    # -- fault injection -------------------------------------------------------

    def fail_provider(self, name: str) -> None:
        """Crash a data provider: excluded from placement, reads time out.

        Pages whose only replicas live here become unreadable until
        :meth:`recover_provider` — replication >= 2 is the defense.
        """
        if name not in self.roles.data_providers:
            raise KeyError(f"no data provider {name!r}")
        self._down_data.add(name)
        self.provider_manager.mark_down(name)
        self._faults_on = True

    def recover_provider(self, name: str) -> None:
        self._down_data.discard(name)
        self.provider_manager.mark_up(name)

    def fail_metadata_provider(self, index: int) -> None:
        """Crash metadata provider *index*: its RPCs time out and retry."""
        if not 0 <= index < len(self._mdp_slots):
            raise IndexError(f"no metadata provider {index}")
        self._down_mdp.add(index)
        self._faults_on = True

    def recover_metadata_provider(self, index: int) -> None:
        self._down_mdp.discard(index)

    # -- append-ticket leases --------------------------------------------------

    def _arm_lease(self, ticket: Ticket) -> None:
        """Register the ticket's lease; the clock starts when the version
        heads the commit queue (time queued behind slow or dead
        predecessors must not count, or one expiry would cascade through
        every version stalled behind it). DES events can't be
        unscheduled — the expiry callback no-ops when the commit won."""
        if self.config.append_lease_s <= 0:
            return
        self.core.when_turn(
            ticket.blob_id,
            ticket.version,
            lambda: self._start_lease(ticket.blob_id, ticket.version),
        )

    def _start_lease(self, blob_id: int, version: int) -> None:
        record = self.core.blob(blob_id).versions.get(version)
        if record is None or record.committed:
            return
        self.env.call_at(
            self.env.now + self.config.append_lease_s,
            lambda: self._lease_expired(blob_id, version),
        )

    def _lease_expired(self, blob_id: int, version: int) -> None:
        record = self.core.blob(blob_id).versions.get(version)
        if record is None or record.committed:
            return
        self._c_lease_expiries.inc()
        # the lease only ran while this version headed the queue, so its
        # predecessor has resolved and the abort can go through directly
        self._abort_now(blob_id, version)

    def _abort_now(self, blob_id: int, version: int) -> None:
        record = self.core.blob(blob_id).versions.get(version)
        if record is None or record.committed:
            return
        self.core.abort(blob_id, version)

    # -- RPC helpers -----------------------------------------------------------

    def _vm_call(
        self,
        client: str,
        fn,
        op: str = "call",
        parent: Optional[Span] = None,
    ) -> Event:
        """Round trip to the version manager: latency + serialized service.

        *fn* runs inside the critical section and the returned event
        fires with its result. The round trip is traced as one
        ``vm.<op>`` span; append-ticket assignment additionally feeds
        the ``vm.append_ticket_wait_s`` histogram (latency + queue wait
        + service — the serialization cost one appender observes at the
        VM).
        """
        sp = self.obs.tracer.start(
            f"vm.{op}", cat="blobseer.vm", parent=parent, track=client
        )
        t0 = self.env.now
        done = self._vm_slot.round_trip(
            self.cluster.config.latency,
            self.cluster.config.version_assign_time,
            fn,
        )
        if op in ("assign_append", "assign_write"):

            def finish(ev: Event) -> None:
                if ev._ok:
                    sp.finish()
                    if op == "assign_append":
                        self._h_ticket_wait.observe(self.env.now - t0)
                    # register the lease as part of the assignment
                    self._arm_lease(ev._value)

            done.callbacks.append(finish)
        elif self.obs.tracer.enabled:
            done.callbacks.append(lambda ev: sp.finish() if ev._ok else None)
        return done

    def _mdp_rpc(self, owner: int) -> Event:
        """One metadata RPC at provider *owner*: latency + queued service."""
        return self._mdp_slots[owner].round_trip(
            self.cluster.config.latency, self.cluster.config.metadata_rpc_time
        )

    def _charge_metadata(self, records) -> Event:
        """Charge a batch of logged DHT accesses, all in parallel; the
        returned event fires when the last RPC's reply is back."""
        done = Event(self.env)
        if not records:
            done.succeed(None)
            return done
        self._c_md_rpcs.inc(len(records))
        if self._faults_on and any(
            rec.owner in self._down_mdp for rec in records
        ):
            # down owners go through the timeout/retry path; the rest
            # batch as usual
            events: List[Event] = [
                self.env.process(self._mdp_rpc_retry(rec.owner))
                for rec in records
                if rec.owner in self._down_mdp
            ]
            alive = [rec for rec in records if rec.owner not in self._down_mdp]
            if alive:
                sub = Event(self.env)
                batch_round_trips(
                    [self._mdp_slots[rec.owner] for rec in alive],
                    self.cluster.config.latency,
                    self.cluster.config.metadata_rpc_time,
                    sub,
                )
                events.append(sub)
            return self.env.all_of(events)
        slots = self._mdp_slots
        batch_round_trips(
            [slots[rec.owner] for rec in records],
            self.cluster.config.latency,
            self.cluster.config.metadata_rpc_time,
            done,
        )
        return done

    def _mdp_rpc_retry(self, owner: int) -> Generator[Event, None, None]:
        """One metadata RPC with timeout + capped-backoff retries, for a
        possibly-crashed owner."""
        policy = self.retry
        for attempt in range(policy.max_attempts):
            if owner in self._down_mdp:
                self._c_rpc_timeouts.inc()
                yield self.env.timeout(policy.rpc_timeout)
                if attempt + 1 < policy.max_attempts:
                    yield self.env.timeout(policy.backoff(attempt))
            else:
                yield self._mdp_rpc(owner)
                return
        raise ProviderUnavailableError(
            f"metadata provider {owner} is down (gave up after "
            f"{policy.max_attempts} attempts)"
        )

    # -- data-plane helpers --------------------------------------------------------

    def _ship_pages(
        self,
        client: str,
        placements: Sequence[Sequence[str]],
        sizes: Sequence[int],
    ) -> List[Event]:
        """Send a batch of stored objects to their replicas (ack on receipt).

        Replicas are written in parallel from the client, like BlobSeer's
        asynchronous page writes. Every ``(page, replica)`` transfer of the
        batch starts through the network's batch API, so the whole fan-out
        costs one coalesced reallocation instead of one per replica. Each
        returned event fires when that page's last replica has the bytes;
        persistence happens in the background.
        """
        flat = self.cluster.network.transfer_many(
            (client, prov, nbytes)
            for providers, nbytes in zip(placements, sizes)
            for prov in providers
        )
        out: List[Event] = []
        pos = 0
        for providers, nbytes in zip(placements, sizes):
            transfers = flat[pos : pos + len(providers)]
            pos += len(providers)
            # single replica (the default): no fan-in barrier needed
            done = (
                transfers[0]
                if len(transfers) == 1
                else self.env.all_of(transfers)
            )

            def persist(
                ev: Event,
                providers: Sequence[str] = providers,
                nbytes: int = nbytes,
            ) -> None:
                if ev._ok:
                    for prov in providers:
                        # asynchronous persistence; disk contention accrues
                        self.cluster.node(prov).disk.write(nbytes, notify=False)

            done.callbacks.append(persist)
            out.append(done)
        return out

    def _fetch_fragment(
        self, client: str, frag: Fragment, nbytes: int
    ) -> Event:
        """Read *nbytes* of one stored object from its primary provider:
        disk (or page-cache) service then network transfer; the returned
        event fires when the bytes reach the client.

        Once any fault has been injected, fetches go through the
        replica-failover retry path instead.
        """
        if self._faults_on:
            return self.env.process(
                self._fetch_fragment_retry(client, frag, nbytes)
            )
        prov = frag.primary
        done = Event(self.env)

        def off_disk(ev: Event) -> None:
            if not ev._ok:
                done.fail(ev._value)
                return
            t = self.cluster.network.transfer(prov, client, nbytes)
            t.callbacks.append(
                lambda tv: done.succeed(None)
                if tv._ok
                else done.fail(tv._value)
            )

        self.cluster.node(prov).disk.read(nbytes).callbacks.append(off_disk)
        return done

    def _fetch_fragment_retry(
        self, client: str, frag: Fragment, nbytes: int
    ) -> Generator[Event, None, None]:
        """Replica failover: rotated starting replica, a charged RPC
        timeout per down provider, capped backoff between full sweeps."""
        policy = self.retry
        providers = frag.providers
        n = len(providers)
        start = int(self._read_rng.integers(n)) if n > 1 else 0
        for attempt in range(policy.max_attempts):
            prov = providers[(start + attempt) % n]
            if prov in self._down_data:
                self._c_rpc_timeouts.inc()
                yield self.env.timeout(policy.rpc_timeout)
            else:
                yield self.cluster.node(prov).disk.read(nbytes)
                yield self.cluster.network.transfer(prov, client, nbytes)
                return
            if (attempt + 1) % n == 0 and attempt + 1 < policy.max_attempts:
                # a full sweep of replicas failed: back off before retrying
                yield self.env.timeout(policy.backoff(attempt // n))
        raise ReplicationError(
            f"no replica of page {frag.page_id} is readable "
            f"(providers {providers})"
        )

    # -- client operations ------------------------------------------------------------

    def append_proc(
        self,
        client: str,
        blob_id: int,
        nbytes: int,
        record: bool = True,
        parent: Optional[Span] = None,
    ) -> Generator[Event, None, int]:
        """Append *nbytes* from machine *client*; returns the new version."""
        if nbytes <= 0:
            raise ValueError("append of zero bytes")
        start = self.env.now
        sp = self.obs.tracer.start(
            "blobseer.append",
            cat="blobseer",
            parent=parent,
            track=client,
            blob=blob_id,
            nbytes=nbytes,
        )
        ticket: Ticket = yield self._vm_call(
            client,
            lambda: self.core.assign_append(blob_id, nbytes),
            op="assign_append",
            parent=sp,
        )
        version = yield from self._update_body(client, ticket, parent=sp)
        sp.finish(version=version, offset=ticket.offset)
        if record:
            self.metrics.record(client, "append", start, self.env.now, nbytes)
        return version

    def write_proc(
        self,
        client: str,
        blob_id: int,
        offset: int,
        nbytes: int,
        record: bool = True,
        parent: Optional[Span] = None,
    ) -> Generator[Event, None, int]:
        """Overwrite ``[offset, offset+nbytes)``; returns the new version."""
        start = self.env.now
        sp = self.obs.tracer.start(
            "blobseer.write",
            cat="blobseer",
            parent=parent,
            track=client,
            blob=blob_id,
            nbytes=nbytes,
        )
        ticket: Ticket = yield self._vm_call(
            client,
            lambda: self.core.assign_write(blob_id, offset, nbytes),
            op="assign_write",
            parent=sp,
        )
        version = yield from self._update_body(client, ticket, parent=sp)
        sp.finish(version=version)
        if record:
            self.metrics.record(client, "write", start, self.env.now, nbytes)
        return version

    def _update_body(
        self, client: str, ticket: Ticket, parent: Optional[Span] = None
    ) -> Generator[Event, None, int]:
        tracer = self.obs.tracer
        ps = ticket.page_size
        offset, end = ticket.offset, ticket.offset + ticket.nbytes
        first = offset // ps
        last = (end - 1) // ps
        page_indices = list(range(first, last + 1))
        sizes = [
            min(end, (p + 1) * ps) - max(offset, p * ps) for p in page_indices
        ]
        placements = self.provider_manager.allocate(
            sizes, replication=self.config.replication
        )

        # ship every page's bytes in parallel right away
        sp_ship = tracer.start(
            "pages.ship",
            cat="blobseer.data",
            parent=parent,
            track=client,
            pages=len(page_indices),
        )
        new_frags: Dict[int, Fragment] = {}
        for i, p in enumerate(page_indices):
            lo = max(offset, p * ps)
            hi = min(end, (p + 1) * ps)
            new_frags[p] = Fragment(
                start=lo - p * ps,
                length=hi - lo,
                page_id=fresh_page_id(ticket.blob_id, client),
                data_offset=0,
                providers=placements[i],
            )
        shippers = self._ship_pages(client, placements, sizes)
        yield shippers[0] if len(shippers) == 1 else self.env.all_of(shippers)
        sp_ship.finish()

        # metadata turn — the when_turn queue wait is the commit-ordering
        # serialization the paper's analysis hinges on, so time it
        sp_turn = tracer.start(
            "vm.metadata_turn_wait",
            cat="blobseer.vm",
            parent=parent,
            track=client,
            version=ticket.version,
        )
        turn_t0 = self.env.now
        turn = self.env.event()
        self.core.when_turn(
            ticket.blob_id, ticket.version, lambda: turn.succeed(None)
        )
        yield turn
        sp_turn.finish()
        self._h_turn_wait.observe(self.env.now - turn_t0)
        prereq = self.core.metadata_prereq(ticket.blob_id, ticket.version)
        assert prereq is not None
        prev_root, prev_capacity = prereq

        # boundary pages: inherit the previous fragments by overlay
        # (metadata reads only — no data movement)
        changes: Dict[int, PageFragments] = {}
        boundary_log = []
        for p, frag in new_frags.items():
            defined = max(0, min(ticket.new_size, (p + 1) * ps) - p * ps)
            if (frag.start == 0 and frag.end >= defined) or prev_root is None:
                changes[p] = (frag,)
                continue
            rec_store = RecordingStore(self.dht)
            prev_frags = query_pages(rec_store, prev_root, p, p + 1).get(p, ())
            boundary_log.extend(rec_store.take_log())
            changes[p] = overlay(prev_frags, frag)
        if boundary_log:
            sp_b = tracer.start(
                "md.boundary_read",
                cat="blobseer.md",
                parent=parent,
                track=client,
                rpcs=len(boundary_log),
            )
            yield self._charge_metadata(boundary_log)
            sp_b.finish()

        # write the new version's tree nodes (parallel, charged per owner)
        rec_store = RecordingStore(self.dht)
        new_capacity = (
            0 if ticket.new_size == 0 else capacity_for(-(-ticket.new_size // ps))
        )
        root = build_version(
            rec_store,
            ticket.blob_id,
            ticket.version,
            prev_root,
            prev_capacity,
            changes,
            new_capacity,
        )
        build_log = rec_store.take_log()
        sp_md = tracer.start(
            "md.build_version",
            cat="blobseer.md",
            parent=parent,
            track=client,
            rpcs=len(build_log),
        )
        yield self._charge_metadata(build_log)
        sp_md.finish()

        # commit + in-order publication at the VM
        yield self._vm_call(
            client,
            lambda: self.core.commit(ticket.blob_id, ticket.version, root),
            op="commit",
            parent=parent,
        )
        return ticket.version

    def read_proc(
        self,
        client: str,
        blob_id: int,
        offset: int,
        nbytes: int,
        version: Optional[int] = None,
        record: bool = True,
        parent: Optional[Span] = None,
    ) -> Generator[Event, None, int]:
        """Read ``[offset, offset+nbytes)`` of a published version; returns
        the version actually read."""
        if offset < 0 or nbytes <= 0:
            raise ValueError("bad read range")
        start = self.env.now
        tracer = self.obs.tracer
        sp = tracer.start(
            "blobseer.read",
            cat="blobseer",
            parent=parent,
            track=client,
            blob=blob_id,
            offset=offset,
            nbytes=nbytes,
        )

        def resolve():
            if version is None:
                return self.core.latest_published(blob_id)
            return self.core.get_version(blob_id, version)

        rec = yield self._vm_call(client, resolve, op="resolve", parent=sp)
        if offset + nbytes > rec.size:
            raise OutOfRangeReadError(
                f"read [{offset}, {offset + nbytes}) beyond size {rec.size}"
            )
        if rec.root is None:
            # aborted version over an empty blob: the range is all hole
            raise PageNotFoundError(
                f"blob {blob_id} v{rec.version}: range is an aborted hole"
            )
        ps = self.core.blob(blob_id).page_size
        first = offset // ps
        last = (offset + nbytes - 1) // ps
        rec_store = RecordingStore(self.dht)
        leaves = query_pages(rec_store, rec.root, first, last + 1)
        query_log = rec_store.take_log()
        sp_md = tracer.start(
            "md.query_pages",
            cat="blobseer.md",
            parent=sp,
            track=client,
            rpcs=len(query_log),
        )
        yield self._charge_metadata(query_log)
        sp_md.finish()
        sp_fetch = tracer.start(
            "pages.fetch", cat="blobseer.data", parent=sp, track=client
        )
        fetchers = []
        for p in range(first, last + 1):
            base = p * ps
            lo = max(offset, base) - base
            hi = min(offset + nbytes, base + ps) - base
            if p not in leaves:
                # a page inside an aborted append's range: permanent hole
                raise PageNotFoundError(
                    f"blob {blob_id} v{rec.version}: page {p} is a hole"
                )
            for frag in leaves[p]:
                piece = frag.clip(lo, hi)
                if piece is None:
                    continue
                fetchers.append(
                    self._fetch_fragment(client, piece, piece.length)
                )
        yield self.env.all_of(fetchers)
        sp_fetch.finish(fragments=len(fetchers))
        sp.finish(version=rec.version)
        if record:
            self.metrics.record(client, "read", start, self.env.now, nbytes)
        return rec.version

    # -- introspection ------------------------------------------------------------------

    def layout(
        self, blob_id: int, version: Optional[int] = None
    ) -> List[Tuple[int, int, Tuple[str, ...]]]:
        """(offset, length, providers) of each stored fragment of a
        version — the locality primitive, control-plane only."""
        rec = (
            self.core.latest_published(blob_id)
            if version is None
            else self.core.get_version(blob_id, version)
        )
        if rec.root is None:
            return []
        ps = self.core.blob(blob_id).page_size
        out = []
        for index, fragments in iter_all_pages(self.dht, rec.root):
            base = index * ps
            for frag in fragments:
                visible = min(frag.length, max(0, rec.size - base - frag.start))
                if visible > 0:
                    out.append((base + frag.start, visible, frag.providers))
        return out
