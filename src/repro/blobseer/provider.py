"""Data providers — the machines that store BLOB pages.

A provider is deliberately dumb: it stores immutable pages by id and
serves byte ranges of them. All placement intelligence lives in the
provider manager; all consistency lives in the version manager. This is
the threaded (real-bytes) runtime; the simulated runtime models the same
role with disk/NIC costs in :mod:`repro.blobseer.simulated`.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from ..common.errors import PageNotFoundError, ProviderUnavailableError
from .pages import PageId
from .persistence import InMemoryPageStore, PageStore


class Provider:
    """One page-storage node."""

    def __init__(self, name: str, store: Optional[PageStore] = None) -> None:
        self.name = name
        self.store: PageStore = store if store is not None else InMemoryPageStore()
        self._lock = threading.Lock()
        self._failed = False
        #: lifetime counters
        self.bytes_stored = 0
        self.pages_stored = 0
        self.bytes_served = 0

    # -- fault injection -------------------------------------------------------

    def fail(self) -> None:
        """Mark the provider crashed: every subsequent call errors."""
        with self._lock:
            self._failed = True

    def recover(self) -> None:
        """Bring a failed provider back (its stored pages survive)."""
        with self._lock:
            self._failed = False

    @property
    def is_failed(self) -> bool:
        return self._failed

    def _check_alive(self) -> None:
        if self._failed:
            raise ProviderUnavailableError(f"provider {self.name} is down")

    # -- page I/O ----------------------------------------------------------------

    def put_page(self, page_id: PageId, data: bytes) -> None:
        """Store one immutable page."""
        self._check_alive()
        if not data:
            raise ValueError("empty page")
        self.store.put(page_id.key(), data)
        with self._lock:
            self.bytes_stored += len(data)
            self.pages_stored += 1

    def get_page(
        self, page_id: PageId, offset: int = 0, size: Optional[int] = None
    ) -> bytes:
        """Serve ``[offset, offset+size)`` of a stored page."""
        self._check_alive()
        data = self.store.get(page_id.key())
        if size is None:
            size = len(data) - offset
        if offset < 0 or size < 0 or offset + size > len(data):
            raise PageNotFoundError(
                f"range [{offset}, {offset + size}) outside page of {len(data)} bytes"
            )
        piece = data[offset : offset + size]
        with self._lock:
            self.bytes_served += len(piece)
        return piece

    def has_page(self, page_id: PageId) -> bool:
        """True when the page is stored here (even while failed)."""
        return self.store.contains(page_id.key())

    def page_ids(self) -> List[bytes]:
        """Raw keys of every stored page."""
        return self.store.keys()
