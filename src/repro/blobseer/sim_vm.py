"""The version manager as a DES service: endpoint adapter plus leases.

:class:`SimVMService` is what the simulated deployment binds to the
engine's ``vm`` control endpoint. Charged methods run inside the VM's
one-slot critical section; ``metadata_turn`` is the uncharged condition
the engine waits on. The append-ticket lease machinery lives here too,
on the simulation clock — the runtime half of the lease protocol whose
threaded counterpart is inside
:class:`~repro.blobseer.version_manager.ThreadedVersionManager`.
"""

from __future__ import annotations

from typing import Optional

from ..obs.events import lease_expired
from ..obs.tracer import Span
from ..sim.core import Event
from .version_manager import Ticket, VersionManagerCore


class SimVMService:
    """DES-side version-manager service endpoint."""

    def __init__(self, core: VersionManagerCore, engine, config, obs) -> None:
        self.core = core
        self.engine = engine
        self.env = engine.env
        self.config = config
        self.obs = obs
        self._c_lease_expiries = obs.registry.counter("vm.lease_expiries")

    # -- endpoint methods (charged unless noted) -----------------------------

    def assign_append(self, blob_id: int, nbytes: int) -> Ticket:
        ticket = self.core.assign_append(blob_id, nbytes)
        self.arm_lease(ticket)
        return ticket

    def assign_write(self, blob_id: int, offset: int, nbytes: int) -> Ticket:
        ticket = self.core.assign_write(blob_id, offset, nbytes)
        self.arm_lease(ticket)
        return ticket

    def commit(self, blob_id: int, version: int, root) -> None:
        self.core.commit(blob_id, version, root)

    def commit_ready(self, blob_id: int, version: int, changes):
        """Group commit step 1 (charged at the cheap enqueue rate): hand
        the appender's change map to the VM. Replies ``("lead", ...)``
        with a drained batch when this version heads the commit queue,
        else ``("queued",)``."""
        grant = self.core.submit_ready(blob_id, version, changes)
        if grant is None:
            return ("queued",)
        return ("lead", *grant)

    def publish_wait(self, blob_id: int, version: int) -> Event:
        """Uncharged wait: resolves with ``("published",)`` once a leader
        publishes this version, or with a ``("lead", ...)`` promotion."""
        ev = Event(self.env)
        self.core.when_published(blob_id, version, ev.succeed)
        return ev

    def publish_batch(self, blob_id: int, versions, root, tree_size: int) -> None:
        """Group commit step 2 (charged): land the whole batch."""
        self.core.publish_batch(blob_id, list(versions), root, tree_size)

    def resolve(self, blob_id: int, version: Optional[int] = None):
        core = self.core
        rec = (
            core.latest_published(blob_id)
            if version is None
            else core.get_version(blob_id, version)
        )
        return rec, core.blob(blob_id).page_size

    def metadata_turn(self, blob_id: int, version: int) -> Event:
        """Uncharged wait: resolves when *version* heads the commit queue."""
        core = self.core
        ev = Event(self.env)
        core.when_turn(
            blob_id,
            version,
            lambda: ev.succeed(core.metadata_prereq(blob_id, version)),
        )
        return ev

    # -- append-ticket leases ------------------------------------------------

    def arm_lease(self, ticket: Ticket) -> None:
        """Register the ticket's lease; the clock starts when the version
        heads the commit queue (time queued behind slow or dead
        predecessors must not count, or one expiry would cascade through
        every version stalled behind it). DES events can't be
        unscheduled — the expiry callback no-ops when the commit won."""
        if self.config.append_lease_s <= 0:
            return
        self.core.when_turn(
            ticket.blob_id,
            ticket.version,
            lambda: self._start_lease(ticket.blob_id, ticket.version),
        )

    def _start_lease(self, blob_id: int, version: int) -> None:
        record = self.core.blob(blob_id).versions.get(version)
        if record is None or record.committed:
            return
        if self.core.is_ready(blob_id, version):
            # the appender already delivered its change map; publication
            # is the leader's job now, so the dead-client lease no
            # longer applies
            return
        self.env.call_at(
            self.env.now + self.config.append_lease_s,
            lambda: self._lease_expired(blob_id, version),
        )

    def _lease_expired(self, blob_id: int, version: int) -> None:
        record = self.core.blob(blob_id).versions.get(version)
        if record is None or record.committed:
            return
        if self.core.is_ready(blob_id, version):
            return
        self._c_lease_expiries.inc()
        lease_expired(self.obs.tracer, blob_id, version)
        # the lease only ran while this version headed the queue, so its
        # predecessor has resolved and the abort can go through directly
        self.core.abort(blob_id, version)

    # -- legacy raw RPC ------------------------------------------------------

    def call(
        self,
        client: str,
        fn,
        op: str = "call",
        parent: Optional[Span] = None,
    ) -> Event:
        """Direct round trip through the VM's service slot.

        Kept for drivers that shape raw VM traffic (e.g. minting a
        ticket they intend to abandon); the protocol core issues its
        own VM calls through the engine. Ticket-assigning ops still arm
        the append lease.
        """
        sp = self.obs.tracer.start(
            f"vm.{op}", cat="blobseer.vm", parent=parent, track=client
        )
        cluster_cfg = self.engine.cluster.config
        done = self.engine.control_slot("vm").round_trip(
            cluster_cfg.latency, cluster_cfg.version_assign_time, fn
        )

        def after(ev: Event) -> None:
            if ev._ok:
                sp.finish()
                if op in ("assign_append", "assign_write"):
                    self.arm_lease(ev._value)

        done.callbacks.append(after)
        return done
