"""The version manager — BlobSeer's only centralized data-path entity.

The version manager (VM) assigns version numbers, decides the offset an
append lands at, and publishes versions *in order*. Everything heavy
(page transport, metadata writes) happens elsewhere and in parallel;
the VM's critical section is a few dictionary updates, which is why the
paper's appenders scale: "Multiple clients can append their data in a
fully parallel manner …; synchronization is required only when writing
the metadata, but this overhead is low."

The write/append protocol, faithful to BlobSeer:

1. the client stripes its data into pages and ships them to providers
   (no offset needed — pages are position-independent);
2. the client asks the VM to *assign* a version: for an append the VM
   picks ``offset = size of the latest assigned version`` and returns a
   :class:`Ticket`;
3. the client writes the new segment-tree nodes to the metadata
   providers once the previous version's tree is complete (the VM
   sequences this metadata turn — the only serialization point);
4. the client *commits*; the VM publishes the version as soon as every
   earlier version is published, making it the visible "latest".

Readers only ever see published versions, so they are never blocked by
(or block) writers — old snapshots stay intact.

:class:`VersionManagerCore` is the pure state machine; the threaded and
simulated runtimes wrap it with their own concurrency-control adapters
(:class:`ThreadedVersionManager` here; the simulated wrapper lives in
:mod:`repro.blobseer.simulated`).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..common.config import BlobSeerConfig
from ..common.errors import (
    AppendAbortedError,
    BlobNotFoundError,
    VersionNotFoundError,
    VersionNotReadyError,
)
from ..obs import NULL_OBS, Observability
from ..obs.events import lease_expired
from .metadata.segment_tree import NodeKey, capacity_for


@dataclass(frozen=True, slots=True)
class Ticket:
    """The VM's answer to an assignment request: where the update lands."""

    blob_id: int
    version: int
    offset: int
    nbytes: int
    new_size: int
    page_size: int


@dataclass(slots=True)
class VersionRecord:
    """One (possibly not yet published) version of a BLOB."""

    version: int
    size: int
    kind: str  # "create" | "write" | "append"
    root: Optional[NodeKey] = None
    committed: bool = False
    #: the blob size whose page capacity matches ``root``'s tree — equal
    #: to ``size`` for normal versions, but an *aborted* version inherits
    #: the previous tree, which may be smaller than its assigned size
    tree_size: int = 0
    #: lease expired before commit; published as a zero-length hole
    aborted: bool = False


@dataclass(slots=True)
class BlobState:
    """Everything the VM tracks for one BLOB."""

    blob_id: int
    page_size: int
    #: every assigned version, 0 = the empty creation version
    versions: Dict[int, VersionRecord] = field(default_factory=dict)
    next_version: int = 1
    #: size after the most recently *assigned* (not published) version —
    #: the offset the next append will receive
    assigned_size: int = 0
    #: highest version published so far (visible to readers)
    published: int = 0


def _pages_capacity(size: int, page_size: int) -> int:
    """Tree capacity (in pages, power of two) for a blob of *size* bytes."""
    if size == 0:
        return 0
    n_pages = -(-size // page_size)
    return capacity_for(n_pages)


class VersionManagerCore:
    """Pure, lock-free VM state machine (callers provide mutual exclusion)."""

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self._blobs: Dict[int, BlobState] = {}
        self._ids = itertools.count(1)
        #: callbacks waiting for a version's metadata turn / publication
        self._turn_waiters: Dict[tuple[int, int], List[Callable[[], None]]] = {}
        #: group commit: change maps handed in by ready appenders, keyed
        #: by (blob_id, version), awaiting a publish leader to drain them
        self._pending: Dict[tuple[int, int], object] = {}
        #: versions drained into an in-flight publish batch — protected
        #: from lease expiry until the leader's publish_batch lands
        self._in_flight: set[tuple[int, int]] = set()
        #: one callback per queued appender waiting for publication (or
        #: a leader promotion), keyed by (blob_id, version)
        self._publish_waiters: Dict[
            tuple[int, int], List[Callable[[tuple], None]]
        ] = {}
        obs = obs or NULL_OBS
        self._c_tickets = obs.registry.counter("vm.tickets_assigned")
        self._c_append_tickets = obs.registry.counter("vm.append_tickets")
        self._c_commits = obs.registry.counter("vm.commits")
        self._c_aborts = obs.registry.counter("vm.aborts")
        self._c_turn_waits = obs.registry.counter("vm.turn_waits")
        self._g_turn_queue = obs.registry.gauge("vm.turn_queue_depth")
        self._h_ticket_bytes = obs.registry.histogram("vm.append_ticket_bytes")
        self._c_group_commits = obs.registry.counter("vm.group_commits")
        self._h_group_size = obs.registry.histogram("vm.group_commit_size")

    # -- blob lifecycle ------------------------------------------------------

    def create_blob(self, page_size: int) -> int:
        """Register a new BLOB; version 0 is the published empty version."""
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        blob_id = next(self._ids)
        state = BlobState(blob_id=blob_id, page_size=page_size)
        state.versions[0] = VersionRecord(
            version=0, size=0, kind="create", root=None, committed=True
        )
        self._blobs[blob_id] = state
        return blob_id

    def blob(self, blob_id: int) -> BlobState:
        try:
            return self._blobs[blob_id]
        except KeyError:
            raise BlobNotFoundError(f"no blob {blob_id}") from None

    def blob_ids(self) -> List[int]:
        """Ids of all registered blobs."""
        return list(self._blobs)

    @property
    def commit_queue_length(self) -> int:
        """How many versions are currently queued for their metadata
        turn / publication — the serialization depth the telemetry
        samplers record over time."""
        return sum(len(w) for w in self._turn_waiters.values())

    # -- assignment (the critical section) ------------------------------------

    def assign_append(self, blob_id: int, nbytes: int) -> Ticket:
        """Assign a version for an append of *nbytes* bytes.

        The offset is implicitly the size of the latest assigned version —
        BlobSeer's definition of append as "a special case of the write
        operation, in which the offset is implicitly assumed to be the
        size of the latest version".
        """
        if nbytes <= 0:
            raise ValueError("append of zero bytes")
        state = self.blob(blob_id)
        offset = state.assigned_size
        self._c_append_tickets.inc()
        self._h_ticket_bytes.observe(float(nbytes))
        return self._assign(state, offset, nbytes, kind="append")

    def assign_write(self, blob_id: int, offset: int, nbytes: int) -> Ticket:
        """Assign a version for a write at an explicit *offset*."""
        if nbytes <= 0:
            raise ValueError("write of zero bytes")
        if offset < 0:
            raise ValueError("negative offset")
        state = self.blob(blob_id)
        if offset % state.page_size != 0:
            raise ValueError(
                f"write offset {offset} not aligned to page size {state.page_size}"
            )
        if offset > state.assigned_size:
            raise ValueError(
                f"write at {offset} would leave a hole "
                f"(blob size is {state.assigned_size})"
            )
        return self._assign(state, offset, nbytes, kind="write")

    def _assign(self, state: BlobState, offset: int, nbytes: int, kind: str) -> Ticket:
        self._c_tickets.inc()
        version = state.next_version
        state.next_version += 1
        new_size = max(state.assigned_size, offset + nbytes)
        state.assigned_size = new_size
        state.versions[version] = VersionRecord(
            version=version, size=new_size, kind=kind, tree_size=new_size
        )
        return Ticket(
            blob_id=state.blob_id,
            version=version,
            offset=offset,
            nbytes=nbytes,
            new_size=new_size,
            page_size=state.page_size,
        )

    # -- metadata sequencing ---------------------------------------------------

    def metadata_prereq(
        self, blob_id: int, version: int
    ) -> Optional[tuple[Optional[NodeKey], int]]:
        """Previous version's ``(root, capacity_pages)`` once available.

        Returns ``None`` while version ``version - 1`` has not committed
        its metadata yet; the caller must wait for its turn (see
        :meth:`when_turn`).
        """
        state = self.blob(blob_id)
        if version not in state.versions:
            raise VersionNotFoundError(f"blob {blob_id} has no version {version}")
        prev = state.versions.get(version - 1)
        if prev is None or not prev.committed:
            return None
        # capacity must match the tree actually rooted at prev.root: an
        # aborted predecessor carries an older (possibly smaller) tree
        return prev.root, _pages_capacity(prev.tree_size, state.page_size)

    def when_turn(
        self, blob_id: int, version: int, callback: Callable[[], None]
    ) -> None:
        """Invoke *callback* once ``version - 1`` has committed.

        Fires immediately (synchronously) when already committed.
        """
        if self.metadata_prereq(blob_id, version) is not None:
            callback()
            return
        self._turn_waiters.setdefault((blob_id, version), []).append(callback)
        self._c_turn_waits.inc()
        self._g_turn_queue.set(float(len(self._turn_waiters)))

    def commit(self, blob_id: int, version: int, root: Optional[NodeKey]) -> None:
        """Record the version's metadata root and publish what's publishable."""
        state = self.blob(blob_id)
        record = state.versions.get(version)
        if record is None:
            raise VersionNotFoundError(f"blob {blob_id} has no version {version}")
        if record.aborted:
            raise AppendAbortedError(
                f"blob {blob_id} version {version} was aborted "
                f"(append-ticket lease expired before commit)"
            )
        if record.committed:
            raise ValueError(f"version {version} committed twice")
        record.root = root
        record.committed = True
        self._c_commits.inc()
        self._finish_version(state, blob_id, version)

    def abort(self, blob_id: int, version: int) -> bool:
        """Publish an uncommitted version as a hole so the frontier moves.

        The aborted version inherits the previous version's tree (its
        own pages are simply never linked in); if it was the last
        assigned version its bytes are reclaimed entirely, otherwise the
        assigned range stays as a permanent zero-length hole.

        Returns ``False`` when the version committed in the meantime
        (the appender was slow, not dead — a lost race, not an error).
        Like :meth:`commit`, aborting requires ``version - 1`` to be
        resolved; sequence cascading aborts through :meth:`when_turn`.
        """
        state = self.blob(blob_id)
        record = state.versions.get(version)
        if record is None:
            raise VersionNotFoundError(f"blob {blob_id} has no version {version}")
        if record.committed:
            return False
        prev = state.versions.get(version - 1)
        if prev is None or not prev.committed:
            raise VersionNotReadyError(
                f"cannot abort blob {blob_id} v{version} before "
                f"v{version - 1} resolves"
            )
        record.aborted = True
        record.committed = True
        record.root = prev.root
        record.tree_size = prev.tree_size
        if version == state.next_version - 1 and state.assigned_size == record.size:
            # nothing was assigned after the dead append: reclaim the hole
            state.assigned_size = prev.size
            record.size = prev.size
        self._c_aborts.inc()
        self._finish_version(state, blob_id, version)
        return True

    # -- group commit (batched metadata publication) ---------------------------

    def is_ready(self, blob_id: int, version: int) -> bool:
        """Whether the appender already handed its change map to the VM
        (queued for a batched publish or drained into one in flight).
        A ready version's fate is the publish leader's responsibility —
        the append-ticket lease no longer applies to it."""
        key = (blob_id, version)
        return key in self._pending or key in self._in_flight

    def submit_ready(
        self, blob_id: int, version: int, changes
    ) -> Optional[tuple]:
        """Group commit step 1: the appender's pages are shipped and its
        per-page fragments (*changes*) are ready for publication.

        Returns a *lead grant* ``(prev_root, prev_capacity, batch)``
        when this version heads the commit queue — the caller must build
        and publish the drained *batch* — or ``None`` when it is queued
        behind unresolved versions (wait via :meth:`when_published`).
        """
        state = self.blob(blob_id)
        record = state.versions.get(version)
        if record is None:
            raise VersionNotFoundError(f"blob {blob_id} has no version {version}")
        if record.aborted:
            raise AppendAbortedError(
                f"blob {blob_id} version {version} was aborted "
                f"(append-ticket lease expired before commit)"
            )
        if record.committed or self.is_ready(blob_id, version):
            raise ValueError(f"version {version} submitted twice")
        self._pending[(blob_id, version)] = changes
        if self.metadata_prereq(blob_id, version) is None:
            return None
        return self._lead_grant(state, blob_id, version)

    def try_lead(self, blob_id: int, version: int) -> Optional[tuple]:
        """A lead grant for a still-pending ready version whose
        predecessor has resolved; ``None`` otherwise. Polling
        counterpart of the :meth:`when_published` promotion (used by the
        threaded runtime's condition-variable loop)."""
        if (blob_id, version) not in self._pending:
            return None
        if self.metadata_prereq(blob_id, version) is None:
            return None
        return self._lead_grant(self.blob(blob_id), blob_id, version)

    def when_published(
        self, blob_id: int, version: int, callback: Callable[[tuple], None]
    ) -> None:
        """Invoke *callback* with the queued appender's outcome:
        ``("published",)`` once a leader publishes the version, or
        ``("lead", prev_root, prev_capacity, batch)`` when the version
        is promoted to publish leader instead. Fires synchronously when
        the outcome is already decided."""
        state = self.blob(blob_id)
        record = state.versions.get(version)
        if record is None:
            raise VersionNotFoundError(f"blob {blob_id} has no version {version}")
        if record.committed:
            callback(("published",))
            return
        grant = self.try_lead(blob_id, version)
        if grant is not None:
            callback(("lead", *grant))
            return
        self._publish_waiters.setdefault((blob_id, version), []).append(callback)

    def _lead_grant(
        self, state: BlobState, blob_id: int, version: int
    ) -> tuple:
        """Drain the maximal run of consecutive ready versions starting
        at *version* into an in-flight publish batch."""
        prereq = self.metadata_prereq(blob_id, version)
        assert prereq is not None, "lead granted before predecessor resolved"
        prev_root, prev_capacity = prereq
        batch: List[tuple] = []
        v = version
        while True:
            changes = self._pending.pop((blob_id, v), None)
            if changes is None:
                break
            self._in_flight.add((blob_id, v))
            batch.append((v, changes, state.versions[v].size))
            v += 1
        return prev_root, prev_capacity, batch

    def publish_batch(
        self,
        blob_id: int,
        versions: List[int],
        root: Optional[NodeKey],
        tree_size: int,
    ) -> None:
        """Group commit step 2: the leader built ONE tree for the whole
        batch; every member version now shares *root* (readers clip at
        each member's own ``size``, see
        :func:`~repro.blobseer.metadata.segment_tree.build_versions_batch`).
        """
        if not versions:
            raise ValueError("empty publish batch")
        state = self.blob(blob_id)
        for v in versions:
            key = (blob_id, v)
            if key not in self._in_flight:
                raise ValueError(
                    f"blob {blob_id} v{v} was not drained into a publish batch"
                )
            record = state.versions[v]
            record.root = root
            record.tree_size = tree_size
            record.committed = True
            self._in_flight.discard(key)
            self._c_commits.inc()
        self._c_group_commits.inc()
        self._h_group_size.observe(float(len(versions)))
        self._finish_version(state, blob_id, versions[-1])
        for v in versions:
            for cb in self._publish_waiters.pop((blob_id, v), []):
                cb(("published",))

    def _promote_leader(self, state: BlobState, blob_id: int) -> None:
        """Hand the publish lead to the next ready run's first waiter
        (if it is both ready and already waiting — the threaded runtime
        polls :meth:`try_lead` instead of registering callbacks)."""
        candidate = state.published + 1
        key = (blob_id, candidate)
        if key not in self._pending or key not in self._publish_waiters:
            return
        waiters = self._publish_waiters.pop(key)
        grant = self._lead_grant(state, blob_id, candidate)
        waiters[0](("lead", *grant))
        # one client owns each version; extra waiters would be a bug
        assert len(waiters) == 1, f"multiple publish waiters for v{candidate}"

    def _finish_version(self, state: BlobState, blob_id: int, version: int) -> None:
        """Advance the publish frontier and wake the next metadata turn."""
        # advance the published frontier over consecutive committed versions
        while (nxt := state.versions.get(state.published + 1)) and nxt.committed:
            state.published += 1
        # wake the next writer's metadata turn
        waiters = self._turn_waiters.pop((blob_id, version + 1), [])
        self._g_turn_queue.set(float(len(self._turn_waiters)))
        for cb in waiters:
            cb()
        # and promote the next publish leader, if one is ready and waiting
        self._promote_leader(state, blob_id)

    # -- read side ---------------------------------------------------------------

    def latest_published(self, blob_id: int) -> VersionRecord:
        """The newest version readers may see."""
        state = self.blob(blob_id)
        return state.versions[state.published]

    def get_version(self, blob_id: int, version: int) -> VersionRecord:
        """A specific *published* version (old snapshots stay readable)."""
        state = self.blob(blob_id)
        record = state.versions.get(version)
        if record is None:
            raise VersionNotFoundError(f"blob {blob_id} has no version {version}")
        if version > state.published:
            raise VersionNotReadyError(
                f"blob {blob_id} version {version} not yet published "
                f"(frontier is {state.published})"
            )
        return record

    def capacity_pages_of(self, blob_id: int, size: int) -> int:
        """Tree capacity for this blob at a given byte size."""
        return _pages_capacity(size, self.blob(blob_id).page_size)


class ThreadedVersionManager:
    """Mutex-wrapped VM for the threaded (real-bytes) runtime.

    Every assignment registers a lease; its daemon timer starts once the
    version heads the commit queue and, if it fires before the commit
    arrives, the version is aborted — so chains of dead appenders unwind
    in order, one lease period each, without ever aborting a live
    appender that was merely queued behind them.
    """

    def __init__(
        self,
        obs: Optional[Observability] = None,
        config: Optional[BlobSeerConfig] = None,
    ) -> None:
        self.obs = obs or NULL_OBS
        self.core = VersionManagerCore(self.obs)
        self._lock = threading.Lock()
        self._turn = threading.Condition(self._lock)
        self._lease_s = config.append_lease_s if config else 30.0
        self._turn_timeout_s = config.metadata_turn_timeout_s if config else 60.0
        self._lease_timers: Dict[tuple[int, int], threading.Timer] = {}
        self._closed = False
        self._c_lease_expiries = self.obs.registry.counter("vm.lease_expiries")

    # -- lifecycle -------------------------------------------------------------

    @property
    def live_lease_timers(self) -> int:
        """How many lease timers are currently armed. A long-running
        server must see this return to zero after its in-flight appends
        resolve — commits/aborts pop and cancel their timer — and the
        shutdown path asserts it after :meth:`close`."""
        with self._lock:
            return len(self._lease_timers)

    def close(self) -> None:
        """Cancel every outstanding lease timer and refuse to arm new
        ones (idempotent). A server process calls this on graceful stop:
        without it, armed ``threading.Timer`` threads for uncommitted
        tickets keep the interpreter busy until their leases fire, and
        a timer firing mid-teardown races component teardown."""
        with self._lock:
            self._closed = True
            timers = list(self._lease_timers.values())
            self._lease_timers.clear()
        # cancel outside the lock: a concurrently *firing* timer callback
        # takes the same lock and would deadlock with us; cancel() on an
        # already-fired timer is a harmless no-op
        for timer in timers:
            timer.cancel()

    def create_blob(self, page_size: int) -> int:
        with self._lock:
            return self.core.create_blob(page_size)

    def assign_append(self, blob_id: int, nbytes: int) -> Ticket:
        with self._lock:
            ticket = self.core.assign_append(blob_id, nbytes)
            self._arm_lease_locked(ticket)
            return ticket

    def assign_write(self, blob_id: int, offset: int, nbytes: int) -> Ticket:
        with self._lock:
            ticket = self.core.assign_write(blob_id, offset, nbytes)
            self._arm_lease_locked(ticket)
            return ticket

    # -- lease machinery -------------------------------------------------------

    def _arm_lease_locked(self, ticket: Ticket) -> None:
        """Register the version's lease at assignment time.

        The lease *clock* only starts once the version reaches the head
        of the commit queue (its predecessor resolved) — time spent
        queued behind slow or dead predecessors is not the appender's
        fault and must not count against it, or one expiry would cascade
        through every version stalled behind it.
        """
        if self._lease_s <= 0 or self._closed:
            return
        self.core.when_turn(
            ticket.blob_id,
            ticket.version,
            lambda: self._start_lease_timer_locked(
                ticket.blob_id, ticket.version
            ),
        )

    def _start_lease_timer_locked(self, blob_id: int, version: int) -> None:
        # fires under the lock: either synchronously inside assign (the
        # queue head was already free) or inside the predecessor's
        # commit/abort via the when_turn queue
        record = self.core.blob(blob_id).versions.get(version)
        if record is None or record.committed:
            return
        if self.core.is_ready(blob_id, version):
            # change map already delivered; publication is the group
            # leader's job, not the (possibly dead) client's
            return
        if self._closed:
            return
        key = (blob_id, version)
        timer = threading.Timer(self._lease_s, self._lease_expired, args=key)
        timer.daemon = True
        self._lease_timers[key] = timer
        timer.start()

    def _lease_expired(self, blob_id: int, version: int) -> None:
        with self._turn:
            self._lease_timers.pop((blob_id, version), None)
            record = self.core.blob(blob_id).versions.get(version)
            if record is None or record.committed:
                return
            self._c_lease_expiries.inc()
            lease_expired(self.obs.tracer, blob_id, version)
            self._abort_when_possible_locked(blob_id, version)
            self._turn.notify_all()

    def _abort_when_possible_locked(self, blob_id: int, version: int) -> None:
        """Abort now, or as soon as the predecessor resolves.

        The deferred callback runs synchronously inside the resolving
        ``commit``/``abort`` while the lock is already held, so it must
        call straight into the core.
        """
        if self.core.metadata_prereq(blob_id, version) is None:
            self.core.when_turn(
                blob_id, version, lambda: self._abort_in_lock(blob_id, version)
            )
        else:
            self._abort_in_lock(blob_id, version)

    def _abort_in_lock(self, blob_id: int, version: int) -> None:
        record = self.core.blob(blob_id).versions.get(version)
        if record is None or record.committed:
            return
        if self.core.is_ready(blob_id, version):
            return
        self.core.abort(blob_id, version)

    def wait_metadata_turn(
        self, blob_id: int, version: int, timeout: Optional[float] = None
    ) -> tuple[Optional[NodeKey], int]:
        """Block until it is *version*'s turn to write metadata.

        On timeout the caller's own version is routed through the abort
        path (immediately or once its turn arrives) so later versions
        are never wedged behind it, then ``VersionNotReadyError`` is
        raised.
        """
        if timeout is None:
            timeout = self._turn_timeout_s
        with self._turn:
            deadline_info = self.core.metadata_prereq(blob_id, version)
            while deadline_info is None:
                if not self._turn.wait(timeout=timeout):
                    self._abort_when_possible_locked(blob_id, version)
                    self._turn.notify_all()
                    raise VersionNotReadyError(
                        f"timed out waiting for metadata turn of "
                        f"blob {blob_id} v{version}"
                    )
                deadline_info = self.core.metadata_prereq(blob_id, version)
        return deadline_info

    def commit(self, blob_id: int, version: int, root: Optional[NodeKey]) -> None:
        timer: Optional[threading.Timer] = None
        try:
            with self._turn:
                timer = self._lease_timers.pop((blob_id, version), None)
                self.core.commit(blob_id, version, root)
                self._turn.notify_all()
        finally:
            if timer is not None:
                timer.cancel()

    # -- group commit (batched metadata publication) --------------------------

    def commit_ready(self, blob_id: int, version: int, changes):
        """Group commit step 1: deliver the appender's change map; the
        lease is released (publication is now the leader's job). Returns
        ``("lead", prev_root, prev_capacity, batch)`` or ``("queued",)``."""
        timer: Optional[threading.Timer] = None
        try:
            with self._turn:
                timer = self._lease_timers.pop((blob_id, version), None)
                grant = self.core.submit_ready(blob_id, version, changes)
                if grant is None:
                    return ("queued",)
                return ("lead", *grant)
        finally:
            if timer is not None:
                timer.cancel()

    def publish_wait(self, blob_id: int, version: int):
        """Block until a leader publishes this version — or until this
        version is itself promoted to leader (predecessor resolved with
        the batch still unpublished)."""
        with self._turn:
            while True:
                record = self.core.blob(blob_id).versions.get(version)
                if record is not None and record.committed:
                    return ("published",)
                grant = self.core.try_lead(blob_id, version)
                if grant is not None:
                    return ("lead", *grant)
                if not self._turn.wait(timeout=self._turn_timeout_s):
                    raise VersionNotReadyError(
                        f"timed out waiting for publication of "
                        f"blob {blob_id} v{version}"
                    )

    def publish_batch(self, blob_id: int, versions, root, tree_size: int) -> None:
        """Group commit step 2: land the leader's batch and wake waiters."""
        with self._turn:
            self.core.publish_batch(blob_id, list(versions), root, tree_size)
            self._turn.notify_all()

    # -- control-endpoint surface (bound as "vm" by the threaded runtime) ----

    def resolve(
        self, blob_id: int, version: Optional[int] = None
    ) -> tuple[VersionRecord, int]:
        """``(record, page_size)`` of a published version (default latest)."""
        with self._lock:
            rec = (
                self.core.latest_published(blob_id)
                if version is None
                else self.core.get_version(blob_id, version)
            )
            return rec, self.core.blob(blob_id).page_size

    def metadata_turn(self, blob_id: int, version: int):
        """Engine-endpoint alias: blocks the calling thread until this
        version heads the commit queue (or the lease machinery aborts a
        stuck predecessor)."""
        return self.wait_metadata_turn(blob_id, version)

    def latest_published(self, blob_id: int) -> VersionRecord:
        with self._lock:
            return self.core.latest_published(blob_id)

    def get_version(self, blob_id: int, version: int) -> VersionRecord:
        with self._lock:
            return self.core.get_version(blob_id, version)

    def blob(self, blob_id: int) -> BlobState:
        with self._lock:
            return self.core.blob(blob_id)

    def blob_ids(self) -> List[int]:
        with self._lock:
            return self.core.blob_ids()
