"""Pluggable page-placement policies.

The provider manager used to hard-code the paper's least-allocated-first
heuristic; this module splits the *choice* out of the *bookkeeping* so a
deployment can select how replicas land on providers
(``BlobSeerConfig.placement_policy``):

* :class:`LeastLoadedPolicy` — the default and the paper's behaviour:
  each replica goes to the provider with the fewest bytes allocated so
  far (seeded tie-break), served from the manager's lazy heap;
* :class:`RoundRobinPolicy` — a rotating cursor over the seeded provider
  order, load-blind; the classic HDFS-style baseline the policy-matrix
  benchmark compares against;
* :class:`RackAwarePolicy` — replicas of one page land on distinct
  racks (least-loaded within that constraint), so a rack-level failure
  cannot take out every copy. Providers without a known rack count as
  their own singleton rack.

A policy's :meth:`~PlacementPolicy.pick` runs under the provider
manager's lock and reads its bookkeeping (load table, down set, seeded
ranks, heap, topology); the manager applies the load accounting
afterwards, identically for every policy.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import List, Optional


class PlacementPolicy(ABC):
    """Chooses *replication* distinct providers for one page."""

    #: registry name (mirrors ``BlobSeerConfig.placement_policy``)
    name: str = ""
    #: whether the policy consumes the manager's lazy least-loaded heap
    #: (the manager only maintains the heap when its policy uses it)
    uses_heap: bool = False

    @abstractmethod
    def pick(self, pm, replication: int, prefer: Optional[str]) -> List[str]:
        """Providers for one page, primary first (lock held by caller)."""


class LeastLoadedPolicy(PlacementPolicy):
    """Least-allocated-first with seeded tie-breaking — the paper's
    load-balancing heuristic, served from the manager's lazy heap."""

    name = "least_loaded"
    uses_heap = True

    def pick(self, pm, replication: int, prefer: Optional[str]) -> List[str]:
        chosen: List[str] = []
        if prefer is not None and prefer in pm._load and prefer not in pm._down:
            loads = sorted(
                v for n, v in pm._load.items() if n not in pm._down
            )
            median = loads[len(loads) // 2]
            if pm._load[prefer] <= median:
                chosen.append(prefer)
        if len(chosen) >= replication:
            return chosen[:replication]
        load, down, heap = pm._load, pm._down, pm._heap
        while len(chosen) < replication:
            lo, _r, name = heapq.heappop(heap)
            if name in down or load[name] != lo or name in chosen:
                continue  # failed, stale, or duplicate entry: discard
            chosen.append(name)
        return chosen


class RoundRobinPolicy(PlacementPolicy):
    """A rotating cursor over the seeded provider order, load-blind."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def pick(self, pm, replication: int, prefer: Optional[str]) -> List[str]:
        ring = pm._ring_order
        chosen: List[str] = []
        if (
            prefer is not None
            and prefer in pm._load
            and prefer not in pm._down
        ):
            chosen.append(prefer)
        i = self._cursor
        scanned = 0
        n = len(ring)
        while len(chosen) < replication and scanned < n:
            name = ring[i % n]
            i += 1
            scanned += 1
            if name in pm._down or name in chosen:
                continue
            chosen.append(name)
        # the next page starts one past where this one started, so equal
        # pages spiral over the ring instead of re-walking it
        self._cursor = (self._cursor + 1) % n
        return chosen


class RackAwarePolicy(PlacementPolicy):
    """Replicas on distinct racks, least-loaded within the constraint.

    When fewer alive racks than replicas exist, the remainder relaxes to
    distinct providers regardless of rack — availability degrades
    gracefully instead of failing the write.
    """

    name = "rack_aware"

    def pick(self, pm, replication: int, prefer: Optional[str]) -> List[str]:
        topology = pm._topology
        chosen: List[str] = []
        used_racks = set()

        def rack_of(name: str) -> str:
            # unmapped providers count as their own singleton rack
            return topology.get(name, name)

        if (
            prefer is not None
            and prefer in pm._load
            and prefer not in pm._down
        ):
            loads = sorted(
                v for n, v in pm._load.items() if n not in pm._down
            )
            median = loads[len(loads) // 2]
            if pm._load[prefer] <= median:
                chosen.append(prefer)
                used_racks.add(rack_of(prefer))
        candidates = sorted(
            (n for n in pm._load if n not in pm._down and n not in chosen),
            key=lambda n: (pm._load[n], pm._rank[n]),
        )
        for name in candidates:
            if len(chosen) >= replication:
                break
            if rack_of(name) in used_racks:
                continue
            chosen.append(name)
            used_racks.add(rack_of(name))
        # fewer racks than replicas: relax to distinct providers
        for name in candidates:
            if len(chosen) >= replication:
                break
            if name not in chosen:
                chosen.append(name)
        return chosen


_POLICIES = {
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    RackAwarePolicy.name: RackAwarePolicy,
}


def make_placement_policy(name: str) -> PlacementPolicy:
    """A fresh policy instance by registry name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r} "
            f"(known: {', '.join(sorted(_POLICIES))})"
        ) from None
    return cls()


def available_policies() -> List[str]:
    """Names of every placement policy, sorted."""
    return sorted(_POLICIES)
