"""The sharded file-per-page backend.

Each page is one file named by the hex of its key, spread over a fixed
set of hash-sharded subdirectories so no single directory grows
unboundedly. Writes go through a temp file + atomic rename, so a crash
mid-write never leaves a torn page — recovery is a directory scan that
sweeps leftover temp files. With ``fsync`` enabled, durability is
*batched*: pages become durable in groups of ``fsync_batch`` (one fsync
pass over the batch plus its shard directories) instead of one fsync
per put — the same amortization group commit applies to metadata.
"""

from __future__ import annotations

import os
import threading
import zlib
from pathlib import Path
from typing import List, Set

from ...common.errors import PageNotFoundError

#: default number of shard subdirectories
DEFAULT_SHARDS = 16

#: default batched-fsync group size
DEFAULT_FSYNC_BATCH = 8

_TMP_SUFFIX = ".tmp"


class ShardedFilePageStore:
    """Durable store: one file per page in hash-sharded directories."""

    def __init__(
        self,
        root: str | os.PathLike[str],
        shards: int = DEFAULT_SHARDS,
        fsync: bool = False,
        fsync_batch: int = DEFAULT_FSYNC_BATCH,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be >= 1")
        self.root = Path(root)
        self.shards = shards
        self.fsync = fsync
        self.fsync_batch = fsync_batch
        #: fsync passes performed (each covers up to ``fsync_batch`` puts)
        self.fsync_passes = 0
        self._lock = threading.Lock()
        self._keys: Set[bytes] = set()
        #: files written since the last fsync pass
        self._pending: List[Path] = []
        for i in range(shards):
            (self.root / f"shard-{i:02d}").mkdir(parents=True, exist_ok=True)
        self._recover()

    # -- layout ---------------------------------------------------------------

    def _path(self, key: bytes) -> Path:
        shard = zlib.crc32(key) % self.shards
        return self.root / f"shard-{shard:02d}" / key.hex()

    def _recover(self) -> None:
        """Rebuild the key set; sweep temp files from interrupted puts."""
        for shard_dir in self.root.iterdir():
            if not shard_dir.is_dir():
                continue
            for entry in shard_dir.iterdir():
                if entry.name.endswith(_TMP_SUFFIX):
                    entry.unlink(missing_ok=True)
                    continue
                try:
                    self._keys.add(bytes.fromhex(entry.name))
                except ValueError:
                    continue  # foreign file: not one of ours

    # -- API ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        path = self._path(key)
        tmp = path.with_name(path.name + _TMP_SUFFIX)
        with self._lock:
            with open(tmp, "wb") as fp:
                fp.write(value)
            os.replace(tmp, path)
            self._keys.add(key)
            if self.fsync:
                self._pending.append(path)
                if len(self._pending) >= self.fsync_batch:
                    self._fsync_pending()

    def _fsync_pending(self) -> None:
        """One fsync pass over the pending batch (lock held)."""
        dirs = set()
        for path in self._pending:
            try:
                fd = os.open(path, os.O_RDONLY)
            except FileNotFoundError:
                continue  # deleted before it was ever synced
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
            dirs.add(path.parent)
        for d in dirs:
            fd = os.open(d, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        self._pending.clear()
        self.fsync_passes += 1

    def flush(self) -> None:
        """Force the pending batch durable without waiting for a full one."""
        with self._lock:
            if self._pending:
                self._fsync_pending()

    def get(self, key: bytes) -> bytes:
        with self._lock:
            if key not in self._keys:
                raise PageNotFoundError(f"no page {key!r}")
        try:
            with open(self._path(key), "rb") as fp:
                return fp.read()
        except FileNotFoundError:  # pragma: no cover - raced delete
            raise PageNotFoundError(f"no page {key!r}") from None

    def contains(self, key: bytes) -> bool:
        with self._lock:
            return key in self._keys

    def delete(self, key: bytes) -> None:
        with self._lock:
            self._keys.discard(key)
            self._path(key).unlink(missing_ok=True)

    def keys(self) -> List[bytes]:
        with self._lock:
            return list(self._keys)

    def close(self) -> None:
        """Make everything pending durable, then release."""
        if self.fsync:
            self.flush()

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)
