"""The default backend: a thread-safe dict, no durability."""

from __future__ import annotations

import threading
from typing import Dict, List

from ...common.errors import PageNotFoundError


class InMemoryPageStore:
    """Dict-backed store (no durability), thread-safe."""

    def __init__(self) -> None:
        self._data: Dict[bytes, bytes] = {}
        self._lock = threading.Lock()

    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self._data[key] = value

    def get(self, key: bytes) -> bytes:
        with self._lock:
            try:
                return self._data[key]
            except KeyError:
                raise PageNotFoundError(f"no page {key!r}") from None

    def contains(self, key: bytes) -> bool:
        with self._lock:
            return key in self._data

    def delete(self, key: bytes) -> None:
        with self._lock:
            self._data.pop(key, None)

    def keys(self) -> List[bytes]:
        with self._lock:
            return list(self._data)

    def close(self) -> None:
        pass
