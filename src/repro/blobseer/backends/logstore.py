"""The log-structured backend — the BerkeleyDB substitute.

An append-only log of CRC-framed key/value records plus an in-memory
offset index, recovered by a forward scan on open. Deletes are
tombstones; compaction rewrites the live set.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Dict, List

from ...common.crc import encode_record, scan_log
from ...common.errors import CorruptPageError, PageNotFoundError

#: tombstone marker: a record with this 1-byte prefix deletes its key
_TOMBSTONE = b"\x00"
_LIVE = b"\x01"


class LogStructuredPageStore:
    """Durable store: one append-only log file + in-memory offset index.

    Record layout (see :mod:`repro.common.crc`): the value is prefixed
    with a 1-byte live/tombstone marker. On open, the log is scanned
    forward to rebuild the index; a torn trailing record (crash during
    write) is truncated away rather than poisoning recovery.
    """

    def __init__(self, path: str | os.PathLike[str], fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._index: Dict[bytes, tuple[int, int]] = {}  # key -> (offset, length)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._recover()
        self._fp = open(self.path, "ab")
        self._read_fp = open(self.path, "rb")

    # -- recovery -------------------------------------------------------------

    def _recover(self) -> None:
        if not self.path.exists():
            self.path.touch()
            return
        good_end = 0
        with open(self.path, "rb") as fp:
            while True:
                start = fp.tell()
                try:
                    rec = next(scan_log(fp), None)
                except CorruptPageError:
                    break  # torn tail: keep everything before it
                if rec is None:
                    good_end = fp.tell()
                    break
                key, value = rec
                good_end = fp.tell()
                if value[:1] == _TOMBSTONE:
                    self._index.pop(key, None)
                else:
                    # value payload begins after the marker byte
                    self._index[key] = (start, good_end - start)
        size = self.path.stat().st_size
        if good_end < size:
            with open(self.path, "r+b") as fp:
                fp.truncate(good_end)

    # -- API -------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        record = encode_record(key, _LIVE + value)
        with self._lock:
            offset = self._fp.tell()
            self._fp.write(record)
            self._fp.flush()
            if self.fsync:
                os.fsync(self._fp.fileno())
            self._index[key] = (offset, len(record))

    def get(self, key: bytes) -> bytes:
        with self._lock:
            try:
                offset, length = self._index[key]
            except KeyError:
                raise PageNotFoundError(f"no page {key!r}") from None
            self._read_fp.seek(offset)
            raw = self._read_fp.read(length)
        from ...common.crc import decode_record

        stored_key, marked_value, _ = decode_record(raw)
        if stored_key != key:  # pragma: no cover - index corruption guard
            raise CorruptPageError(f"index pointed at wrong record for {key!r}")
        return marked_value[1:]

    def contains(self, key: bytes) -> bool:
        with self._lock:
            return key in self._index

    def delete(self, key: bytes) -> None:
        with self._lock:
            if key not in self._index:
                return
            record = encode_record(key, _TOMBSTONE)
            self._fp.write(record)
            self._fp.flush()
            if self.fsync:
                os.fsync(self._fp.fileno())
            del self._index[key]

    def keys(self) -> List[bytes]:
        with self._lock:
            return list(self._index)

    def compact(self) -> None:
        """Rewrite the log keeping only live records (stop-the-world)."""
        with self._lock:
            tmp_path = self.path.with_suffix(".compact")
            new_index: Dict[bytes, tuple[int, int]] = {}
            with open(tmp_path, "wb") as out:
                for key, (offset, length) in self._index.items():
                    self._read_fp.seek(offset)
                    raw = self._read_fp.read(length)
                    new_index[key] = (out.tell(), len(raw))
                    out.write(raw)
                out.flush()
                os.fsync(out.fileno())
            self._fp.close()
            self._read_fp.close()
            os.replace(tmp_path, self.path)
            self._index = new_index
            self._fp = open(self.path, "ab")
            self._read_fp = open(self.path, "rb")

    def close(self) -> None:
        with self._lock:
            self._fp.close()
            self._read_fp.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)
