"""Pluggable page-store backends — the provider persistence registry.

BlobSeer "offers persistence through a BerkeleyDB layer"; this package
generalizes that one layer into a registry of interchangeable backends
behind the :class:`PageStore` protocol (the way ucondb layers its
psql/couchbase/blob-server stores behind one storage base class):

* ``memory`` — :class:`~repro.blobseer.backends.memory.InMemoryPageStore`,
  the default for tests and simulations (no durability);
* ``log`` — :class:`~repro.blobseer.backends.logstore.LogStructuredPageStore`,
  an append-only CRC-framed log with tombstones and crash recovery;
* ``sharded`` — :class:`~repro.blobseer.backends.sharded.ShardedFilePageStore`,
  one file per page in hash-sharded directories with atomic renames and
  batched fsync.

Every provider of a deployment selects its backend through
``BlobSeerConfig.page_store_backend`` (plus ``page_store_dir`` /
``page_store_fsync`` for the durable ones); tests run every registered
backend through one shared conformance suite
(``tests/blobseer/test_pagestore_conformance.py``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Protocol


class PageStore(Protocol):
    """Key → bytes storage a provider persists its pages in."""

    def put(self, key: bytes, value: bytes) -> None:
        """Store/overwrite one record."""
        ...

    def get(self, key: bytes) -> bytes:
        """Fetch a record; raises ``PageNotFoundError`` when absent."""
        ...

    def contains(self, key: bytes) -> bool:
        """True when the key is stored."""
        ...

    def delete(self, key: bytes) -> None:
        """Remove a record (idempotent)."""
        ...

    def keys(self) -> List[bytes]:
        """Every stored key."""
        ...

    def close(self) -> None:
        """Release any underlying resources."""
        ...


#: backend name -> factory(provider_name, root, fsync) -> PageStore
_REGISTRY: Dict[str, Callable[[str, Optional[Path], bool], PageStore]] = {}

#: backends that need a ``page_store_dir`` to place their files in
_NEEDS_ROOT = {"log", "sharded"}


def register_backend(
    name: str, factory: Callable[[str, Optional[Path], bool], PageStore]
) -> None:
    """Register a page-store backend under *name*.

    *factory* is called as ``factory(provider_name, root, fsync)`` and
    must return a fresh :class:`PageStore` for that provider. Durable
    backends derive a per-provider path under *root*; memory-class ones
    ignore it.
    """
    if name in _REGISTRY:
        raise ValueError(f"backend {name!r} already registered")
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Names of every registered backend, sorted."""
    return sorted(_REGISTRY)


def create_store(
    backend: str,
    provider_name: str,
    root: Optional[str | os.PathLike[str]] = None,
    fsync: bool = False,
) -> PageStore:
    """Instantiate one provider's page store from the registry."""
    try:
        factory = _REGISTRY[backend]
    except KeyError:
        raise ValueError(
            f"unknown page-store backend {backend!r} "
            f"(registered: {', '.join(available_backends())})"
        ) from None
    if backend in _NEEDS_ROOT and root is None:
        raise ValueError(
            f"backend {backend!r} is durable and needs page_store_dir"
        )
    return factory(provider_name, Path(root) if root is not None else None, fsync)


def store_factory_from_config(config) -> Optional[Callable[[str], PageStore]]:
    """A per-provider ``store_factory`` for a deployment, or ``None``
    when the config selects the default in-memory backend (providers
    then build their own :class:`InMemoryPageStore`)."""
    backend = getattr(config, "page_store_backend", "memory")
    if backend == "memory":
        return None
    root = getattr(config, "page_store_dir", None)
    fsync = bool(getattr(config, "page_store_fsync", False))
    return lambda name: create_store(backend, name, root=root, fsync=fsync)


from .logstore import LogStructuredPageStore  # noqa: E402
from .memory import InMemoryPageStore  # noqa: E402
from .sharded import ShardedFilePageStore  # noqa: E402

register_backend("memory", lambda name, root, fsync: InMemoryPageStore())
register_backend(
    "log",
    lambda name, root, fsync: LogStructuredPageStore(
        root / f"{name}.log", fsync=fsync
    ),
)
register_backend(
    "sharded",
    lambda name, root, fsync: ShardedFilePageStore(root / name, fsync=fsync),
)

__all__ = [
    "PageStore",
    "InMemoryPageStore",
    "LogStructuredPageStore",
    "ShardedFilePageStore",
    "register_backend",
    "available_backends",
    "create_store",
    "store_factory_from_config",
]
