"""Version pruning — reclaiming storage from old snapshots.

BlobSeer never overwrites data, so a long-lived BLOB accumulates
versions: every update leaves behind segment-tree nodes and stored
objects that only old snapshots reference. Pruning removes the versions
older than a retention point while keeping every retained version fully
readable — the subtlety being that retained trees *share* subtrees and
stored objects with pruned versions, so deletion must be reachability-
based, not version-number-based.

Algorithm (mark and sweep, per BLOB):

1. walk the segment trees of every retained version, collecting the set
   of reachable tree-node keys and referenced stored-object ids;
2. delete every tree node of this BLOB whose creating version is pruned
   *and* which is not reachable from a retained root;
3. delete every stored object of this BLOB not referenced by any
   reachable leaf;
4. drop the pruned version records from the version manager (reads of
   pruned versions then raise ``VersionNotFoundError``).

The sweep runs under the version manager's lock in the threaded runtime
(pruning a BLOB with in-flight updates is refused), which matches how a
centralized VM would coordinate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from ..common.errors import BlobError, VersionNotFoundError
from .metadata.segment_tree import NodeKey, TreeNode
from .pages import PageId

if TYPE_CHECKING:  # pragma: no cover
    from .client import BlobSeerService


@dataclass(slots=True)
class PruneReport:
    """What a prune pass reclaimed."""

    blob_id: int
    pruned_versions: List[int]
    nodes_deleted: int
    pages_deleted: int
    bytes_reclaimed: int


def collect_reachable(
    dht, roots: List[NodeKey]
) -> tuple[Set[NodeKey], Set[PageId]]:
    """Every tree node and stored object reachable from *roots*."""
    nodes: Set[NodeKey] = set()
    pages: Set[PageId] = set()
    stack = [r for r in roots if r is not None]
    while stack:
        key = stack.pop()
        if key in nodes:
            continue
        nodes.add(key)
        node: TreeNode = dht.get_node(key)
        if node.fragments is not None:
            for frag in node.fragments:
                pages.add(frag.page_id)
        else:
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
    return nodes, pages


def prune_blob(
    service: "BlobSeerService", blob_id: int, keep_from_version: int
) -> PruneReport:
    """Remove every version of *blob_id* older than *keep_from_version*.

    ``keep_from_version`` must be a published version; versions >= it
    (published or still pending) remain readable. Returns a report of
    what was reclaimed.
    """
    vm = service.version_manager
    with vm._lock:  # the VM coordinates pruning (single critical section)
        state = vm.core.blob(blob_id)
        if keep_from_version < 1 or keep_from_version > state.published:
            raise VersionNotFoundError(
                f"retention point v{keep_from_version} is not a published "
                f"version of blob {blob_id} (published={state.published})"
            )
        if state.next_version - 1 > state.published:
            raise BlobError(
                f"blob {blob_id} has in-flight updates; prune after they "
                "publish"
            )
        pruned = [
            v for v in state.versions if 0 < v < keep_from_version
        ]
        if not pruned:
            return PruneReport(blob_id, [], 0, 0, 0)

        retained_roots = [
            rec.root
            for v, rec in state.versions.items()
            if v >= keep_from_version and rec.root is not None
        ]
        reachable_nodes, reachable_pages = collect_reachable(
            service.dht, retained_roots
        )

        # sweep tree nodes created by pruned versions
        nodes_deleted = 0
        for bucket, lock in zip(service.dht._buckets, service.dht._locks):
            with lock:
                doomed = [
                    key
                    for key in bucket
                    if key.blob_id == blob_id
                    and 0 < key.version < keep_from_version
                    and key not in reachable_nodes
                ]
                for key in doomed:
                    del bucket[key]
                nodes_deleted += len(doomed)

        # sweep stored objects no retained leaf references
        pages_deleted = 0
        bytes_reclaimed = 0
        reachable_keys = {pid.key() for pid in reachable_pages}
        for provider in service.providers.values():
            for raw_key in provider.page_ids():
                if not raw_key.startswith(f"page/{blob_id}/".encode()):
                    continue
                if raw_key in reachable_keys:
                    continue
                bytes_reclaimed += len(provider.store.get(raw_key))
                provider.store.delete(raw_key)
                pages_deleted += 1

        # drop the version records
        for v in pruned:
            del state.versions[v]

    return PruneReport(
        blob_id=blob_id,
        pruned_versions=sorted(pruned),
        nodes_deleted=nodes_deleted,
        pages_deleted=pages_deleted,
        bytes_reclaimed=bytes_reclaimed,
    )
