"""Adaptive re-replication — demand scaling for hot pages.

The paper treats replication as a static, per-deployment factor. This
module layers a feedback loop on top of the policy-driven placement
plane: a :class:`ReplicaDirectory` records where every page landed and
how often it is read, and a :class:`HotPageReplicator` daemon
periodically scans it and

* **scales hot pages up** — a page read at least
  ``hot_page_threshold`` times since the previous scan gains one
  replica (up to ``rereplication_max``), spreading its read load;
* **repairs crash losses** — a page whose live replica count dropped
  below the configured replication (providers crashed) is copied back
  up to strength.

Both actions are one replica copy: fetch the page from a live holder,
store it on a freshly allocated provider (the placement policy chooses,
excluding current holders), and record the new location. The copy runs
through engine ops like every other client, so the DES bills its
network/disk time and the threaded runtime moves real bytes. Counters:
``placement.rereplications`` (copies made), ``placement.hot_pages``
(pages promoted for heat). Everything here is inert unless
``BlobSeerConfig.rereplication`` is on.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from ..common.errors import ReplicationError
from ..engine.base import Payload
from ..engine.replica import ReplicaSelector, sweep_fetch
from ..obs import NULL_OBS, Observability


class _PageInfo:
    __slots__ = ("providers", "nbytes", "reads")

    def __init__(self, providers: Tuple[str, ...], nbytes: int) -> None:
        self.providers: List[str] = list(providers)
        self.nbytes = nbytes
        #: reads since the last daemon scan
        self.reads = 0


class ReplicaDirectory:
    """Where every page lives, plus its read heat. Thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pages: Dict[Any, _PageInfo] = {}

    def note_page(
        self, page_id: Any, providers: Tuple[str, ...], nbytes: int
    ) -> None:
        """Record a freshly stored page and its placement."""
        with self._lock:
            self._pages[page_id] = _PageInfo(providers, nbytes)

    def note_read(self, page_id: Any) -> None:
        """Count one read against the page's heat."""
        with self._lock:
            info = self._pages.get(page_id)
            if info is not None:
                info.reads += 1

    def add_replica(self, page_id: Any, provider: str) -> None:
        """Record a re-replicated copy."""
        with self._lock:
            info = self._pages.get(page_id)
            if info is not None and provider not in info.providers:
                info.providers.append(provider)

    def providers_for(
        self, page_id: Any, known: Tuple[str, ...]
    ) -> Tuple[str, ...]:
        """*known* (the metadata tree's placement) extended with any
        re-replicated copies the directory knows about."""
        with self._lock:
            info = self._pages.get(page_id)
            if info is None:
                return known
            extras = tuple(p for p in info.providers if p not in known)
        return known + extras if extras else known

    def replica_count(self, page_id: Any) -> int:
        with self._lock:
            info = self._pages.get(page_id)
            return len(info.providers) if info is not None else 0

    def snapshot(self) -> List[Tuple[Any, Tuple[str, ...], int, int]]:
        """``(page_id, providers, nbytes, reads_since_scan)`` per page,
        resetting the heat counters — one daemon scan's worth of input."""
        with self._lock:
            out = []
            for page_id, info in self._pages.items():
                out.append(
                    (page_id, tuple(info.providers), info.nbytes, info.reads)
                )
                info.reads = 0
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)


class HotPageReplicator:
    """The re-replication daemon body, engine-parameterized.

    One :meth:`scan` is a generator of engine ops (run it as a DES
    process or through a threaded engine's trampoline); each invocation
    scans the directory once and performs every indicated copy.
    """

    def __init__(
        self,
        protocol,
        client: str,
        obs: Optional[Observability] = None,
    ) -> None:
        """*protocol* is the deployment's
        :class:`~repro.blobseer.protocol.BlobSeerProtocol` (the daemon
        shares its engine, provider manager, directory, and config);
        *client* is the machine the daemon's transfers originate from.
        """
        if protocol.directory is None:
            raise ValueError("protocol has no replica directory "
                             "(rereplication knob is off)")
        self.protocol = protocol
        self.client = client
        obs = obs or NULL_OBS
        self._c_rereplications = obs.registry.counter(
            "placement.rereplications"
        )
        self._c_hot = obs.registry.counter("placement.hot_pages")
        self._selector = ReplicaSelector(
            protocol.engine.rng("replica", "rereplicator", client)
        )
        #: lifetime copy count (mirrors the counter, registry or not)
        self.copies = 0

    def scan(self):
        """Generator: one scan — promote hot pages, repair lost replicas."""
        proto = self.protocol
        engine = proto.engine
        config = proto.config
        directory = proto.directory
        threshold = getattr(config, "hot_page_threshold", 3)
        ceiling = getattr(config, "rereplication_max", 4)
        for page_id, providers, nbytes, reads in directory.snapshot():
            live = [p for p in providers if not engine.is_down(p)]
            if not live:
                continue  # no copy source; nothing the daemon can do
            # target live replica count: at least the configured
            # replication (crash repair), one more when the page ran
            # hot, never past the ceiling
            target = max(len(live), config.replication)
            if reads >= threshold and len(live) + 1 <= ceiling:
                target = max(target, len(live) + 1)
                self._c_hot.inc()
            target = min(target, ceiling)
            need = target - len(live)
            if need <= 0:
                continue
            try:
                targets = proto.pm.allocate(
                    [nbytes], replication=need, exclude=providers
                )[0]
            except (ReplicationError, ValueError):
                continue  # not enough spare providers right now
            data = yield from sweep_fetch(
                engine,
                self._selector,
                self.client,
                live,
                page_id,
                0,
                nbytes,
                f"page {page_id}",
            )
            payload = (
                Payload(data) if data is not None else Payload(nbytes=nbytes)
            )
            for name in targets:
                yield engine.store(self.client, name, page_id, payload)
                directory.add_replica(page_id, name)
                self._c_rereplications.inc()
                self.copies += 1
