"""Provider persistence — compatibility shim over the backend registry.

The page-store implementations moved into :mod:`repro.blobseer.backends`
(a registry of interchangeable backends selected per deployment through
``BlobSeerConfig.page_store_backend``); this module keeps the historical
import surface alive for existing callers.
"""

from __future__ import annotations

from .backends import (
    InMemoryPageStore,
    LogStructuredPageStore,
    PageStore,
    ShardedFilePageStore,
)
from .backends.logstore import _LIVE, _TOMBSTONE  # noqa: F401 (test hooks)

__all__ = [
    "PageStore",
    "InMemoryPageStore",
    "LogStructuredPageStore",
    "ShardedFilePageStore",
]
