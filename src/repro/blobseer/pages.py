"""Page and fragment model.

A BLOB is split into even-sized *pages* — the data-management unit of
BlobSeer. What a writer ships to a data provider is an immutable
*stored object* identified by an opaque, position-independent
:class:`PageId`: an appender can send its bytes to providers before the
version manager has even decided at which offset the append will land.

Because appends need not be page-aligned, one page of the BLOB's
address space may be assembled from pieces written by different
versions. A segment-tree leaf therefore records a list of
:class:`Fragment` s — byte ranges of the page, each pointing into one
stored object. Updates never rewrite old data: an append that starts
mid-page simply *overlays* a new fragment over the previous version's
fragment list (metadata-only), which is what lets concurrent appenders
proceed without read-modify-write cycles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Tuple

#: process-wide page id counter (next() on itertools.count is atomic
#: under the GIL, so no lock is needed for thread safety)
_page_counter = itertools.count()


def fresh_page_id(blob_id: int, writer: str) -> "PageId":
    """Mint a unique page id, tagged with its BLOB and writer for debugging."""
    return PageId(blob_id=blob_id, writer=writer, seq=next(_page_counter))


@dataclass(frozen=True, slots=True)
class PageId:
    """Globally unique, position-independent identity of one stored object."""

    blob_id: int
    writer: str
    seq: int

    def key(self) -> bytes:
        """Stable byte key for persistence layers and DHT placement."""
        return f"page/{self.blob_id}/{self.writer}/{self.seq}".encode()


@dataclass(frozen=True, slots=True)
class Fragment:
    """One contiguous piece of a page, backed by part of a stored object.

    ``[start, start+length)`` is the range *within the page*;
    ``data_offset`` is where those bytes begin *within the stored
    object*; ``providers`` lists every replica holder, primary first.
    """

    start: int
    length: int
    page_id: PageId
    data_offset: int
    providers: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("negative fragment start")
        if self.length <= 0:
            raise ValueError("fragment length must be positive")
        if self.data_offset < 0:
            raise ValueError("negative data offset")
        if not self.providers:
            raise ValueError("fragment must have at least one provider")

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def primary(self) -> str:
        """The first-choice provider for reads."""
        return self.providers[0]

    def clip(self, lo: int, hi: int) -> "Fragment | None":
        """The sub-fragment covering ``[lo, hi)`` of the page, or None."""
        new_lo = max(self.start, lo)
        new_hi = min(self.end, hi)
        if new_lo >= new_hi:
            return None
        return Fragment(
            start=new_lo,
            length=new_hi - new_lo,
            page_id=self.page_id,
            data_offset=self.data_offset + (new_lo - self.start),
            providers=self.providers,
        )


#: a leaf's payload: non-overlapping fragments sorted by start
PageFragments = Tuple[Fragment, ...]


def overlay(previous: Iterable[Fragment], new: Fragment) -> PageFragments:
    """The previous fragment list with *new* written over it.

    Pure metadata: pieces of older fragments outside the new range
    survive (clipped); the region ``[new.start, new.end)`` now belongs
    to *new*. The result stays sorted and non-overlapping.
    """
    # The input is sorted and non-overlapping, so starts AND ends are
    # strictly increasing: fragments wholly left of the new range come
    # first, then (at most a few) overlapping ones, then wholly-right
    # ones. The outside fragments survive by reference — only the
    # overlap region needs clipping — which keeps the dominant append
    # pattern (new fragment at the tail) O(list copy) instead of
    # reconstructing every Fragment.
    ns, ne = new.start, new.end
    out: List[Fragment] = []
    tail: List[Fragment] = []
    for frag in previous:
        if frag.end <= ns:
            out.append(frag)
        elif frag.start >= ne:
            tail.append(frag)
        else:
            left = frag.clip(0, ns)
            if left is not None:
                out.append(left)
            right = frag.clip(ne, frag.end)
            if right is not None:
                tail.append(right)
    out.append(new)
    out.extend(tail)
    for a, b in zip(out, out[1:]):
        if a.end > b.start:  # pragma: no cover - invariant guard
            raise AssertionError(f"overlapping fragments {a} / {b}")
    return tuple(out)


def fragments_fill(fragments: PageFragments) -> int:
    """Number of defined bytes in the page (the max fragment end)."""
    return max((f.end for f in fragments), default=0)


def fragments_cover(fragments: PageFragments, lo: int, hi: int) -> bool:
    """True when ``[lo, hi)`` of the page is fully covered (no holes)."""
    cursor = lo
    for frag in fragments:
        if frag.start > cursor:
            break
        cursor = max(cursor, frag.end)
        if cursor >= hi:
            return True
    return cursor >= hi
