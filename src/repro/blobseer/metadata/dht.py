"""The metadata providers' distributed hash table.

Tree nodes are spread over the metadata providers by a stable hash of
their key, so concurrent clients writing metadata for different versions
hit different providers most of the time — the decentralization that
keeps metadata from becoming the bottleneck the version manager would
otherwise be.

:class:`MetadataDHT` is the threaded-runtime implementation (per-bucket
dicts with locks). :class:`RecordingStore` wraps any node store and logs
``(op, owner)`` pairs; the simulated runtime replays that log as charged
RPCs against the simulated metadata-provider machines, so the *exact*
metadata traffic of the real algorithms is what gets costed.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...common.errors import VersionNotFoundError
from .segment_tree import NodeKey, TreeNode


def placement_hash(key_bytes: bytes, buckets: int) -> int:
    """Stable bucket index for a key (SHA-1, like real DHT placement)."""
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    digest = hashlib.sha1(key_bytes).digest()
    return int.from_bytes(digest[:8], "big") % buckets


class MetadataDHT:
    """Thread-safe in-process DHT over *n* metadata providers."""

    def __init__(self, n_providers: int) -> None:
        if n_providers < 1:
            raise ValueError("need at least one metadata provider")
        self.n_providers = n_providers
        self._buckets: List[Dict[NodeKey, TreeNode]] = [
            {} for _ in range(n_providers)
        ]
        self._locks = [threading.Lock() for _ in range(n_providers)]
        #: placement is a pure function of the key, and every node is
        #: hashed several times over its life (placement, recorded
        #: access, bucket op) — memoize instead of re-running SHA-1
        self._owner_cache: Dict[NodeKey, int] = {}
        #: lifetime op counters per provider: (gets, puts)
        self.gets = [0] * n_providers
        self.puts = [0] * n_providers

    def owner(self, key: NodeKey) -> int:
        """Which metadata provider is responsible for *key*."""
        idx = self._owner_cache.get(key)
        if idx is None:
            idx = placement_hash(key.key_bytes(), self.n_providers)
            self._owner_cache[key] = idx
        return idx

    def get_node(self, key: NodeKey) -> TreeNode:
        """Fetch a node; raises ``VersionNotFoundError`` when absent."""
        return self._get_at(self.owner(key), key)

    def put_node(self, node: TreeNode) -> None:
        """Store a node (idempotent: nodes are immutable)."""
        self._put_at(self.owner(node.key), node)

    def _get_at(self, idx: int, key: NodeKey) -> TreeNode:
        with self._locks[idx]:
            self.gets[idx] += 1
            try:
                return self._buckets[idx][key]
            except KeyError:
                raise VersionNotFoundError(f"no tree node for {key}") from None

    def _put_at(self, idx: int, node: TreeNode) -> None:
        with self._locks[idx]:
            self.puts[idx] += 1
            self._buckets[idx][node.key] = node

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets)

    def load_per_provider(self) -> List[int]:
        """Number of nodes held by each metadata provider."""
        return [len(b) for b in self._buckets]


@dataclass(slots=True)
class AccessRecord:
    """One logged DHT operation."""

    op: str  # "get" | "put"
    owner: int


class RecordingStore:
    """Node-store wrapper that logs every access with its owning provider.

    The simulated runtime runs the genuine tree algorithms against this
    wrapper, then charges each logged op as an RPC to the corresponding
    simulated metadata-provider machine.
    """

    def __init__(self, inner: MetadataDHT) -> None:
        self.inner = inner
        self.log: List[AccessRecord] = []

    def get_node(self, key: NodeKey) -> TreeNode:
        idx = self.inner.owner(key)
        self.log.append(AccessRecord("get", idx))
        return self.inner._get_at(idx, key)

    def put_node(self, node: TreeNode) -> None:
        idx = self.inner.owner(node.key)
        self.log.append(AccessRecord("put", idx))
        self.inner._put_at(idx, node)

    def take_log(self) -> List[AccessRecord]:
        """Return and clear the access log."""
        log, self.log = self.log, []
        return log


class NodeCache:
    """Bounded LRU over tree nodes, shared across a client's operations.

    Tree nodes are immutable, so a cached node can never go stale — the
    only pressure is capacity. Hot root-reachable prefixes (the top of
    every version's path, revisited by each ``query_pages`` walk) stay
    resident, so repeated reads over stable prefixes stop re-charging
    the DHT.
    """

    def __init__(self, capacity: int, hit_counter=None, miss_counter=None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._nodes: "OrderedDict[NodeKey, TreeNode]" = OrderedDict()
        #: obs counters (``.inc()``), or None when metrics are off
        self._hits = hit_counter
        self._misses = miss_counter

    def get(self, key: NodeKey) -> Optional[TreeNode]:
        node = self._nodes.get(key)
        if node is None:
            if self._misses is not None:
                self._misses.inc()
            return None
        self._nodes.move_to_end(key)
        if self._hits is not None:
            self._hits.inc()
        return node

    def put(self, node: TreeNode) -> None:
        nodes = self._nodes
        nodes[node.key] = node
        nodes.move_to_end(node.key)
        while len(nodes) > self.capacity:
            nodes.popitem(last=False)

    def __len__(self) -> int:
        return len(self._nodes)


class CachingStore:
    """Node-store view that serves gets from a :class:`NodeCache`.

    Wraps a (typically recording) store: cache hits never reach the
    inner store — no access is logged, so no RPC is charged — while
    misses fall through and populate the cache. Writes pass through
    *and* warm the cache (a just-built path is the hottest prefix of
    all).
    """

    def __init__(self, inner, cache: NodeCache) -> None:
        self.inner = inner
        self.cache = cache

    def get_node(self, key: NodeKey) -> TreeNode:
        node = self.cache.get(key)
        if node is None:
            node = self.inner.get_node(key)
            self.cache.put(node)
        return node

    def put_node(self, node: TreeNode) -> None:
        self.inner.put_node(node)
        self.cache.put(node)
