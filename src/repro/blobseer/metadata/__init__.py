"""BlobSeer's decentralized metadata: versioned segment trees over a DHT
of metadata providers."""

from .segment_tree import (
    NodeKey,
    TreeNode,
    build_version,
    capacity_for,
    iter_all_pages,
    query_pages,
)
from .dht import AccessRecord, MetadataDHT, RecordingStore, placement_hash

__all__ = [
    "NodeKey",
    "TreeNode",
    "build_version",
    "capacity_for",
    "iter_all_pages",
    "query_pages",
    "AccessRecord",
    "MetadataDHT",
    "RecordingStore",
    "placement_hash",
]
