"""Versioned distributed segment tree — BlobSeer's metadata organization.

For every published version of a BLOB there is a binary segment tree
over the BLOB's *page indices*. Each leaf records its page's
:data:`~repro.blobseer.pages.PageFragments`; inner nodes cover
power-of-two ranges of pages. All nodes are immutable and live in a
distributed hash table spread over the metadata providers; a new version
creates only the leaves it changed plus the O(log n) inner nodes on the
paths to the root, *sharing* every untouched subtree with previous
versions by pointing at their node keys. This is what lets BlobSeer
serve reads of old versions completely undisturbed while appenders
publish new versions — the versioning-based concurrency control the
paper's Figures 4 and 5 measure.

The functions here are pure tree algebra against an abstract key/value
``store``; both the threaded runtime (real dict-backed DHT) and the
simulated runtime (cost-charging DHT) drive them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Protocol, Tuple

from ...common.errors import VersionNotFoundError
from ..pages import PageFragments


@dataclass(frozen=True, slots=True)
class NodeKey:
    """Identity of one tree node: which version created it and the page
    range ``[lo, hi)`` it covers."""

    blob_id: int
    version: int
    lo: int
    hi: int

    def key_bytes(self) -> bytes:
        """Stable byte form, used for DHT placement."""
        return f"tree/{self.blob_id}/{self.version}/{self.lo}/{self.hi}".encode()

    @property
    def span(self) -> int:
        return self.hi - self.lo

    @property
    def is_leaf_range(self) -> bool:
        return self.span == 1


@dataclass(frozen=True, slots=True)
class TreeNode:
    """One immutable tree node.

    A leaf (``key.span == 1``) carries the page's fragment list; an
    inner node carries the keys of its children (``None`` where the
    half-range holds no pages at all — possible only at the right
    fringe of the tree).
    """

    key: NodeKey
    fragments: Optional[PageFragments] = None
    left: Optional[NodeKey] = None
    right: Optional[NodeKey] = None

    def __post_init__(self) -> None:
        if self.key.is_leaf_range:
            if not self.fragments:
                raise ValueError(f"leaf {self.key} missing fragments")
            if self.left is not None or self.right is not None:
                raise ValueError(f"leaf {self.key} must not have children")
        else:
            if self.fragments is not None:
                raise ValueError(f"inner node {self.key} must not carry a page")


class NodeStore(Protocol):
    """What the tree algorithms need from the metadata DHT."""

    def get_node(self, key: NodeKey) -> TreeNode: ...

    def put_node(self, node: TreeNode) -> None: ...


def capacity_for(n_pages: int) -> int:
    """Smallest power of two >= max(n_pages, 1) — the root's span."""
    cap = 1
    while cap < n_pages:
        cap *= 2
    return cap


def build_version(
    store: NodeStore,
    blob_id: int,
    version: int,
    prev_root: Optional[NodeKey],
    prev_capacity: int,
    changes: Mapping[int, PageFragments],
    new_capacity: int,
) -> NodeKey:
    """Create the tree for *version* and return its root key.

    *changes* maps page index → the page's new fragment list; every
    other page is shared with the previous version's tree. When the BLOB grew past the
    previous capacity, the old root is grafted in as the leftmost
    descendant of the (larger) new root.

    The number of nodes written is ``O(|changes| + log(capacity))`` for
    the contiguous change-sets appends produce.
    """
    if not changes:
        raise ValueError("a version must change at least one page")
    if new_capacity < prev_capacity:
        raise ValueError("capacity cannot shrink")
    if any(i < 0 or i >= new_capacity for i in changes):
        raise ValueError("change index out of capacity")

    def build(lo: int, hi: int, prev: Optional[NodeKey]) -> Optional[NodeKey]:
        touched = _range_touched(changes, lo, hi)
        if not touched:
            if prev is _UNRESOLVED:
                # untouched but structurally misaligned with the old tree:
                # descend to realign (only along the graft path).
                pass
            else:
                return prev
        if hi - lo == 1:
            frags = changes.get(lo)
            if frags is None:  # pragma: no cover - guarded by touched check
                return prev if prev is not _UNRESOLVED else None
            leaf = TreeNode(NodeKey(blob_id, version, lo, hi), fragments=frags)
            store.put_node(leaf)
            return leaf.key

        mid = (lo + hi) // 2
        prev_left: Optional[NodeKey]
        prev_right: Optional[NodeKey]
        if prev is None:
            prev_left = prev_right = None
        elif prev is _UNRESOLVED:
            # realign against the old tree's geometry
            if lo == 0 and mid == prev_capacity:
                prev_left, prev_right = prev_root, None
            elif lo == 0 and mid > prev_capacity:
                prev_left, prev_right = _UNRESOLVED, None
            elif lo == 0 and mid < prev_capacity:
                # old tree wider than this half: impossible, since the graft
                # path only ever *enlarges* ranges left-aligned at zero.
                raise AssertionError("graft path narrower than old tree")
            else:
                prev_left = prev_right = None
        else:
            node = store.get_node(prev)
            prev_left, prev_right = node.left, node.right

        new_left = build(lo, mid, prev_left)
        new_right = build(mid, hi, prev_right)
        inner = TreeNode(
            NodeKey(blob_id, version, lo, hi), left=new_left, right=new_right
        )
        store.put_node(inner)
        return inner.key

    if prev_root is not None and new_capacity > prev_capacity:
        root = build(0, new_capacity, _UNRESOLVED)
    else:
        root = build(0, new_capacity, prev_root)
    assert root is not None
    return root


def query_pages(
    store: NodeStore, root: NodeKey, lo: int, hi: int
) -> Dict[int, PageFragments]:
    """Resolve fragment lists for every page index in ``[lo, hi)``.

    Missing leaves (pages never written) are simply absent from the
    result; callers decide whether a hole is an error.
    """
    if lo < 0 or hi <= lo:
        raise ValueError(f"bad page range [{lo}, {hi})")
    out: Dict[int, PageFragments] = {}

    def walk(key: Optional[NodeKey]) -> None:
        if key is None:
            return
        if key.hi <= lo or key.lo >= hi:
            return
        node = store.get_node(key)
        if key.is_leaf_range:
            assert node.fragments is not None
            out[key.lo] = node.fragments
            return
        walk(node.left)
        walk(node.right)

    walk(root)
    return out


def iter_all_pages(
    store: NodeStore, root: NodeKey
) -> Iterator[Tuple[int, PageFragments]]:
    """Every (page index, fragment list) reachable from *root*, in order."""

    def walk(key: Optional[NodeKey]) -> Iterator[Tuple[int, PageFragments]]:
        if key is None:
            return
        node = store.get_node(key)
        if key.is_leaf_range:
            assert node.fragments is not None
            yield key.lo, node.fragments
            return
        yield from walk(node.left)
        yield from walk(node.right)

    yield from walk(root)


def _range_touched(changes: Mapping[int, PageFragments], lo: int, hi: int) -> bool:
    """True when any changed page index falls in [lo, hi)."""
    if len(changes) < (hi - lo):
        return any(lo <= i < hi for i in changes)
    return any(i in changes for i in range(lo, hi))


class _Unresolved:
    """Sentinel: 'the old tree overlaps this range but with different
    geometry' — occurs only on the graft path when capacity grows."""

    __repr__ = lambda self: "<unresolved>"  # noqa: E731 # pragma: no cover


_UNRESOLVED = _Unresolved()
