"""Versioned distributed segment tree — BlobSeer's metadata organization.

For every published version of a BLOB there is a binary segment tree
over the BLOB's *page indices*. Each leaf records its page's
:data:`~repro.blobseer.pages.PageFragments`; inner nodes cover
power-of-two ranges of pages. All nodes are immutable and live in a
distributed hash table spread over the metadata providers; a new version
creates only the leaves it changed plus the O(log n) inner nodes on the
paths to the root, *sharing* every untouched subtree with previous
versions by pointing at their node keys. This is what lets BlobSeer
serve reads of old versions completely undisturbed while appenders
publish new versions — the versioning-based concurrency control the
paper's Figures 4 and 5 measure.

The functions here are pure tree algebra against an abstract key/value
``store``; both the threaded runtime (real dict-backed DHT) and the
simulated runtime (cost-charging DHT) drive them unchanged.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Protocol, Sequence, Tuple

from ...common.errors import VersionNotFoundError
from ..pages import PageFragments, overlay


@dataclass(frozen=True, slots=True)
class NodeKey:
    """Identity of one tree node: which version created it and the page
    range ``[lo, hi)`` it covers."""

    blob_id: int
    version: int
    lo: int
    hi: int

    #: memoized :meth:`key_bytes` — every key is hashed for placement and
    #: possibly re-derived by caches; excluded from equality/hash/repr
    _kb: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False
    )

    def key_bytes(self) -> bytes:
        """Stable byte form, used for DHT placement."""
        kb = self._kb
        if kb is None:
            kb = f"tree/{self.blob_id}/{self.version}/{self.lo}/{self.hi}".encode()
            object.__setattr__(self, "_kb", kb)
        return kb

    @property
    def span(self) -> int:
        return self.hi - self.lo

    @property
    def is_leaf_range(self) -> bool:
        return self.span == 1


@dataclass(frozen=True, slots=True)
class TreeNode:
    """One immutable tree node.

    A leaf (``key.span == 1``) carries the page's fragment list; an
    inner node carries the keys of its children (``None`` where the
    half-range holds no pages at all — possible only at the right
    fringe of the tree).
    """

    key: NodeKey
    fragments: Optional[PageFragments] = None
    left: Optional[NodeKey] = None
    right: Optional[NodeKey] = None

    def __post_init__(self) -> None:
        if self.key.is_leaf_range:
            if not self.fragments:
                raise ValueError(f"leaf {self.key} missing fragments")
            if self.left is not None or self.right is not None:
                raise ValueError(f"leaf {self.key} must not have children")
        else:
            if self.fragments is not None:
                raise ValueError(f"inner node {self.key} must not carry a page")


class NodeStore(Protocol):
    """What the tree algorithms need from the metadata DHT."""

    def get_node(self, key: NodeKey) -> TreeNode: ...

    def put_node(self, node: TreeNode) -> None: ...


def capacity_for(n_pages: int) -> int:
    """Smallest power of two >= max(n_pages, 1) — the root's span."""
    if n_pages <= 1:
        return 1
    return 1 << (n_pages - 1).bit_length()


def build_version(
    store: NodeStore,
    blob_id: int,
    version: int,
    prev_root: Optional[NodeKey],
    prev_capacity: int,
    changes: Mapping[int, PageFragments],
    new_capacity: int,
) -> NodeKey:
    """Create the tree for *version* and return its root key.

    *changes* maps page index → the page's new fragment list; every
    other page is shared with the previous version's tree. When the BLOB grew past the
    previous capacity, the old root is grafted in as the leftmost
    descendant of the (larger) new root.

    The number of nodes written is ``O(|changes| + log(capacity))`` for
    the contiguous change-sets appends produce.
    """
    if not changes:
        raise ValueError("a version must change at least one page")
    if new_capacity < prev_capacity:
        raise ValueError("capacity cannot shrink")
    if any(i < 0 or i >= new_capacity for i in changes):
        raise ValueError("change index out of capacity")
    # the changed indices, sorted once up front: each node's "does any
    # change fall in my range" test is then a single bisect instead of a
    # scan over the whole change map — O(log|changes|) per node, so a
    # build writes its O(|changes| + log cap) nodes in near-linear time
    sorted_changes = sorted(changes)

    def touched_in(lo: int, hi: int) -> bool:
        i = bisect_left(sorted_changes, lo)
        return i < len(sorted_changes) and sorted_changes[i] < hi

    def build(lo: int, hi: int, prev: Optional[NodeKey]) -> Optional[NodeKey]:
        touched = touched_in(lo, hi)
        if not touched:
            if prev is _UNRESOLVED:
                # untouched but structurally misaligned with the old tree:
                # descend to realign (only along the graft path).
                pass
            else:
                return prev
        if hi - lo == 1:
            frags = changes.get(lo)
            if frags is None:  # pragma: no cover - guarded by touched check
                return prev if prev is not _UNRESOLVED else None
            leaf = TreeNode(NodeKey(blob_id, version, lo, hi), fragments=frags)
            store.put_node(leaf)
            return leaf.key

        mid = (lo + hi) // 2
        prev_left: Optional[NodeKey]
        prev_right: Optional[NodeKey]
        if prev is None:
            prev_left = prev_right = None
        elif prev is _UNRESOLVED:
            # realign against the old tree's geometry
            if lo == 0 and mid == prev_capacity:
                prev_left, prev_right = prev_root, None
            elif lo == 0 and mid > prev_capacity:
                prev_left, prev_right = _UNRESOLVED, None
            elif lo == 0 and mid < prev_capacity:
                # old tree wider than this half: impossible, since the graft
                # path only ever *enlarges* ranges left-aligned at zero.
                raise AssertionError("graft path narrower than old tree")
            else:
                prev_left = prev_right = None
        else:
            node = store.get_node(prev)
            prev_left, prev_right = node.left, node.right

        new_left = build(lo, mid, prev_left)
        new_right = build(mid, hi, prev_right)
        inner = TreeNode(
            NodeKey(blob_id, version, lo, hi), left=new_left, right=new_right
        )
        store.put_node(inner)
        return inner.key

    if prev_root is not None and new_capacity > prev_capacity:
        root = build(0, new_capacity, _UNRESOLVED)
    else:
        root = build(0, new_capacity, prev_root)
    assert root is not None
    return root


def query_pages(
    store: NodeStore, root: NodeKey, lo: int, hi: int
) -> Dict[int, PageFragments]:
    """Resolve fragment lists for every page index in ``[lo, hi)``.

    Missing leaves (pages never written) are simply absent from the
    result; callers decide whether a hole is an error. The empty range
    ``lo == hi`` (a zero-length read) is legitimate and resolves to
    ``{}`` without touching the store.
    """
    if lo < 0 or hi < lo:
        raise ValueError(f"bad page range [{lo}, {hi})")
    out: Dict[int, PageFragments] = {}
    if lo == hi:
        return out

    def walk(key: Optional[NodeKey]) -> None:
        if key is None:
            return
        if key.hi <= lo or key.lo >= hi:
            return
        node = store.get_node(key)
        if key.is_leaf_range:
            assert node.fragments is not None
            out[key.lo] = node.fragments
            return
        walk(node.left)
        walk(node.right)

    walk(root)
    return out


def merge_change_maps(
    maps: Sequence[Mapping[int, PageFragments]],
) -> Dict[int, PageFragments]:
    """Fold per-version change maps (in commit order) into one.

    Where two versions touch the same page, the later version's
    fragments are overlaid on the earlier one's — exactly what a reader
    of the later version would observe after sequential publication.
    Each map must be *self-consistent relative to its predecessors in
    the sequence*: a fragment whose page also carries older bytes (a
    boundary page) must either follow the fragments providing those
    bytes in an earlier map, or arrive pre-overlaid onto them (the map's
    tuple already containing the inherited fragments). Append batches
    satisfy this by construction — each append only writes bytes at and
    beyond its predecessor's size.
    """
    merged: Dict[int, PageFragments] = {}
    for changes in maps:
        for page, frags in changes.items():
            base = merged.get(page)
            if base is None:
                merged[page] = tuple(frags)
            else:
                for frag in frags:
                    base = overlay(base, frag)
                merged[page] = base
    return merged


def build_versions_batch(
    store: NodeStore,
    blob_id: int,
    batch: Sequence[Tuple[int, Mapping[int, PageFragments]]],
    prev_root: Optional[NodeKey],
    prev_capacity: int,
    new_capacity: int,
) -> NodeKey:
    """Publish a run of K queued versions as ONE tree build.

    *batch* is ``[(version, changes), ...]`` in commit order. The change
    maps are folded with :func:`merge_change_maps` and a single tree —
    keyed by the *last* version — is built over the union, so every
    shared inner-path node is written once per batch instead of once per
    version: ``O(Σ|changes| + log cap)`` node writes total.

    All K versions share the returned root. That is sound for *append*
    runs because each member only adds bytes at offsets ≥ its
    predecessor's size: a reader of an intermediate version clips at
    that version's recorded ``size``, and below that offset the merged
    fragment lists are byte-identical to the trees sequential
    publication would have produced (later overlays only replace ranges
    past the clip point). Overwrites do not have that property and must
    publish alone through :func:`build_version`.
    """
    if not batch:
        raise ValueError("empty publish batch")
    versions = [v for v, _ in batch]
    if versions != sorted(versions) or len(set(versions)) != len(versions):
        raise ValueError("batch versions must be distinct and ascending")
    merged = merge_change_maps([changes for _, changes in batch])
    return build_version(
        store,
        blob_id,
        versions[-1],
        prev_root,
        prev_capacity,
        merged,
        new_capacity,
    )


def iter_all_pages(
    store: NodeStore, root: NodeKey
) -> Iterator[Tuple[int, PageFragments]]:
    """Every (page index, fragment list) reachable from *root*, in order."""

    def walk(key: Optional[NodeKey]) -> Iterator[Tuple[int, PageFragments]]:
        if key is None:
            return
        node = store.get_node(key)
        if key.is_leaf_range:
            assert node.fragments is not None
            yield key.lo, node.fragments
            return
        yield from walk(node.left)
        yield from walk(node.right)

    yield from walk(root)


class _Unresolved:
    """Sentinel: 'the old tree overlaps this range but with different
    geometry' — occurs only on the graft path when capacity grows."""

    __repr__ = lambda self: "<unresolved>"  # noqa: E731 # pragma: no cover


_UNRESOLVED = _Unresolved()
