"""The provider manager — load-balanced page placement.

When a client writes pages it asks the provider manager for a list of
target providers; "the distribution of pages to providers aims at
achieving load-balancing". The strategy here is the least-allocated-
first heuristic: each page (and each of its replicas) goes to the
provider with the least bytes allocated so far, with deterministic
seeded tie-breaking. Failed providers are skipped; replicas of one page
always land on distinct providers.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import ReplicationError
from ..common.rng import substream
from ..obs import NULL_OBS, Observability


class ProviderManager:
    """Tracks provider load and allocates placement for new pages."""

    def __init__(
        self,
        provider_names: Sequence[str],
        seed: int = 0,
        obs: Optional[Observability] = None,
    ) -> None:
        if not provider_names:
            raise ValueError("need at least one provider")
        if len(set(provider_names)) != len(provider_names):
            raise ValueError("duplicate provider names")
        obs = obs or NULL_OBS
        self._c_allocations = obs.registry.counter("pm.allocations")
        self._c_pages = obs.registry.counter("pm.pages_placed")
        self._c_bytes = obs.registry.counter("pm.bytes_placed")
        self._g_imbalance = obs.registry.gauge("pm.imbalance")
        #: the imbalance readout is O(providers) per allocation — worth
        #: computing only when somebody will read it
        self._track_imbalance = obs.registry.enabled
        self._lock = threading.Lock()
        self._load: Dict[str, int] = {name: 0 for name in provider_names}
        self._down: set[str] = set()
        self._rng = substream(seed, "provider-manager")
        # random but deterministic tie-break ranks
        names = list(provider_names)
        order = self._rng.permutation(len(names))
        self._rank: Dict[str, int] = {names[i]: int(order[i]) for i in range(len(names))}
        self._counter = itertools.count()
        # lazy least-loaded heap: entries are (load, rank, name); an
        # entry is current iff its load matches the table (each push
        # happens on a strictly increasing load, so at most one entry
        # per name is ever current). Popping currents in heap order is
        # exactly the (load, rank) sort order, without sorting all
        # providers on every page placement.
        self._heap: List[Tuple[int, int, str]] = [
            (0, self._rank[n], n) for n in names
        ]
        heapq.heapify(self._heap)

    # -- membership ---------------------------------------------------------------

    def mark_down(self, name: str) -> None:
        """Exclude a provider from future allocations."""
        with self._lock:
            if name not in self._load:
                raise KeyError(name)
            self._down.add(name)

    def mark_up(self, name: str) -> None:
        """Re-admit a provider."""
        with self._lock:
            if name in self._down:
                self._down.discard(name)
                # its pre-failure heap entry may already be consumed;
                # push a fresh current one (duplicates are harmless,
                # _pick drops whichever it sees second)
                heapq.heappush(
                    self._heap, (self._load[name], self._rank[name], name)
                )

    @property
    def alive_count(self) -> int:
        with self._lock:
            return len(self._load) - len(self._down)

    # -- allocation ------------------------------------------------------------------

    def allocate(
        self,
        page_sizes: Sequence[int],
        replication: int = 1,
        prefer: Optional[str] = None,
    ) -> List[Tuple[str, ...]]:
        """Choose providers for each of a write's pages.

        Returns one tuple of *replication* distinct provider names per
        page, primary first. *prefer* (e.g. the client's own machine)
        wins the primary slot for the first page when it is alive and
        not overloaded relative to the cluster median — a mild locality
        bias that never defeats load balancing.
        """
        if replication < 1:
            raise ValueError("replication must be >= 1")
        with self._lock:
            alive_count = len(self._load) - len(self._down)
            if alive_count < replication:
                raise ReplicationError(
                    f"need {replication} distinct providers, "
                    f"only {alive_count} alive"
                )
            load, rank, heap = self._load, self._rank, self._heap
            result: List[Tuple[str, ...]] = []
            for i, size in enumerate(page_sizes):
                if size <= 0:
                    raise ValueError("page size must be positive")
                chosen = self._pick(replication, prefer if i == 0 else None)
                for name in chosen:
                    new_load = load[name] + size
                    load[name] = new_load
                    heapq.heappush(heap, (new_load, rank[name], name))
                result.append(tuple(chosen))
                self._c_pages.inc()
                self._c_bytes.inc(float(size) * replication)
            self._c_allocations.inc()
            if self._track_imbalance:
                loads = [v for n, v in load.items() if n not in self._down]
                mean = sum(loads) / len(loads)
                self._g_imbalance.set(max(loads) / mean if mean > 0 else 1.0)
            return result

    def _pick(self, replication: int, prefer: Optional[str]) -> List[str]:
        chosen: List[str] = []
        if prefer is not None and prefer in self._load and prefer not in self._down:
            loads = sorted(
                v for n, v in self._load.items() if n not in self._down
            )
            median = loads[len(loads) // 2]
            if self._load[prefer] <= median:
                chosen.append(prefer)
        if len(chosen) >= replication:
            return chosen[:replication]
        load, down, heap = self._load, self._down, self._heap
        while len(chosen) < replication:
            lo, _r, name = heapq.heappop(heap)
            if name in down or load[name] != lo or name in chosen:
                continue  # failed, stale, or duplicate entry: discard
            chosen.append(name)
        return chosen

    # -- introspection --------------------------------------------------------------

    def load_of(self, name: str) -> int:
        """Bytes allocated to one provider so far."""
        with self._lock:
            return self._load[name]

    def load_snapshot(self) -> Dict[str, int]:
        """Copy of the allocation table."""
        with self._lock:
            return dict(self._load)

    def imbalance(self) -> float:
        """Max/mean load ratio across alive providers (1.0 = perfect)."""
        with self._lock:
            loads = [v for n, v in self._load.items() if n not in self._down]
        mean = float(np.mean(loads)) if loads else 0.0
        if mean == 0:
            return 1.0
        return float(np.max(loads)) / mean
