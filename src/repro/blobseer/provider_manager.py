"""The provider manager — policy-driven page placement.

When a client writes pages it asks the provider manager for a list of
target providers; "the distribution of pages to providers aims at
achieving load-balancing". The manager owns the bookkeeping every
policy shares — the byte-load table, the down set, seeded tie-break
ranks, and the lazy least-loaded heap — and delegates the actual choice
to a :class:`~repro.blobseer.placement.PlacementPolicy` (least-loaded
by default; round-robin and rack-aware are selectable per deployment).
Failed providers are skipped; replicas of one page always land on
distinct providers.

Tie-break ranks are drawn from a seeded permutation over the *sorted*
provider names, so equal-load choices are deterministic for a given
seed regardless of the order the deployment listed its providers in.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import ReplicationError
from ..common.rng import substream
from ..obs import NULL_OBS, Observability
from .placement import LeastLoadedPolicy, PlacementPolicy


class ProviderManager:
    """Tracks provider load and allocates placement for new pages."""

    def __init__(
        self,
        provider_names: Sequence[str],
        seed: int = 0,
        obs: Optional[Observability] = None,
        policy: Optional[PlacementPolicy] = None,
        topology: Optional[Dict[str, str]] = None,
    ) -> None:
        """*policy* defaults to the paper's least-loaded heuristic;
        *topology* maps provider name -> rack name (used by the
        rack-aware policy; others ignore it)."""
        if not provider_names:
            raise ValueError("need at least one provider")
        if len(set(provider_names)) != len(provider_names):
            raise ValueError("duplicate provider names")
        obs = obs or NULL_OBS
        self._registry = obs.registry
        self._c_allocations = obs.registry.counter("pm.allocations")
        self._c_pages = obs.registry.counter("pm.pages_placed")
        self._c_bytes = obs.registry.counter("pm.bytes_placed")
        self._g_imbalance = obs.registry.gauge("pm.imbalance")
        #: the imbalance readout and the per-provider load gauges are
        #: O(providers) per allocation — worth computing only when
        #: somebody will read them
        self._track_imbalance = obs.registry.enabled
        self._lock = threading.Lock()
        self._load: Dict[str, int] = {name: 0 for name in provider_names}
        self._down: set[str] = set()
        self._rng = substream(seed, "provider-manager")
        self.policy: PlacementPolicy = policy or LeastLoadedPolicy()
        self._topology: Dict[str, str] = dict(topology or {})
        # seeded tie-break ranks, drawn over the sorted names so the
        # permutation is a function of (seed, name set) alone — feeding
        # the same providers in a different order must not change
        # placement (regression: tie-breaking used to follow the input
        # dict's iteration order)
        names = sorted(provider_names)
        order = self._rng.permutation(len(names))
        self._rank: Dict[str, int] = {names[i]: int(order[i]) for i in range(len(names))}
        #: the round-robin ring: names in seeded-rank order
        self._ring_order: List[str] = sorted(names, key=self._rank.__getitem__)
        self._counter = itertools.count()
        # lazy least-loaded heap: entries are (load, rank, name); an
        # entry is current iff its load matches the table (each push
        # happens on a strictly increasing load, so at most one entry
        # per name is ever current). Popping currents in heap order is
        # exactly the (load, rank) sort order, without sorting all
        # providers on every page placement. Only the least-loaded
        # policy consumes it; other policies skip its maintenance.
        self._heap: List[Tuple[int, int, str]] = [
            (0, self._rank[n], n) for n in names
        ]
        heapq.heapify(self._heap)

    # -- membership ---------------------------------------------------------------

    def mark_down(self, name: str) -> None:
        """Exclude a provider from future allocations."""
        with self._lock:
            if name not in self._load:
                raise KeyError(name)
            self._down.add(name)

    def mark_up(self, name: str) -> None:
        """Re-admit a provider."""
        with self._lock:
            if name in self._down:
                self._down.discard(name)
                # its pre-failure heap entry may already be consumed;
                # push a fresh current one (duplicates are harmless,
                # the policy drops whichever it sees second)
                if self.policy.uses_heap:
                    heapq.heappush(
                        self._heap, (self._load[name], self._rank[name], name)
                    )

    @property
    def alive_count(self) -> int:
        with self._lock:
            return len(self._load) - len(self._down)

    # -- allocation ------------------------------------------------------------------

    def allocate(
        self,
        page_sizes: Sequence[int],
        replication: int = 1,
        prefer: Optional[str] = None,
        exclude: Sequence[str] = (),
    ) -> List[Tuple[str, ...]]:
        """Choose providers for each of a write's pages.

        Returns one tuple of *replication* distinct provider names per
        page, primary first. *prefer* (e.g. the client's own machine)
        wins the primary slot for the first page when it is alive and
        not overloaded relative to the cluster median — a mild locality
        bias that never defeats load balancing. *exclude* temporarily
        bars specific providers (re-replication uses it to avoid the
        copies a page already has).
        """
        if replication < 1:
            raise ValueError("replication must be >= 1")
        with self._lock:
            barred = [
                n for n in exclude if n in self._load and n not in self._down
            ]
            self._down.update(barred)
            try:
                return self._allocate_locked(page_sizes, replication, prefer)
            finally:
                self._down.difference_update(barred)
                if self.policy.uses_heap:
                    # barred entries may have been popped-and-discarded
                    # as "down" during the pick; restore current ones
                    for name in barred:
                        heapq.heappush(
                            self._heap,
                            (self._load[name], self._rank[name], name),
                        )

    def _allocate_locked(
        self,
        page_sizes: Sequence[int],
        replication: int,
        prefer: Optional[str],
    ) -> List[Tuple[str, ...]]:
        alive_count = len(self._load) - len(self._down)
        if alive_count < replication:
            raise ReplicationError(
                f"need {replication} distinct providers, "
                f"only {alive_count} alive"
            )
        load, rank, heap = self._load, self._rank, self._heap
        maintain_heap = self.policy.uses_heap
        result: List[Tuple[str, ...]] = []
        touched: set[str] = set()
        for i, size in enumerate(page_sizes):
            if size <= 0:
                raise ValueError("page size must be positive")
            chosen = self._pick(replication, prefer if i == 0 else None)
            for name in chosen:
                new_load = load[name] + size
                load[name] = new_load
                if maintain_heap:
                    heapq.heappush(heap, (new_load, rank[name], name))
            result.append(tuple(chosen))
            if self._track_imbalance:
                touched.update(chosen)
            self._c_pages.inc()
            self._c_bytes.inc(float(size) * replication)
        self._c_allocations.inc()
        if self._track_imbalance:
            loads = [v for n, v in load.items() if n not in self._down]
            mean = sum(loads) / len(loads)
            self._g_imbalance.set(max(loads) / mean if mean > 0 else 1.0)
            for name in touched:
                self._registry.gauge(f"pm.load.{name}").set(float(load[name]))
        return result

    def _pick(self, replication: int, prefer: Optional[str]) -> List[str]:
        chosen = self.policy.pick(self, replication, prefer)
        assert len(chosen) >= replication, (
            f"policy {self.policy.name!r} returned {len(chosen)} providers "
            f"for replication {replication}"
        )
        return chosen[:replication]

    # -- introspection --------------------------------------------------------------

    def load_of(self, name: str) -> int:
        """Bytes allocated to one provider so far."""
        with self._lock:
            return self._load[name]

    def load_snapshot(self) -> Dict[str, int]:
        """Copy of the allocation table."""
        with self._lock:
            return dict(self._load)

    def down_snapshot(self) -> List[str]:
        """Currently excluded providers, sorted."""
        with self._lock:
            return sorted(self._down)

    def rack_of(self, name: str) -> Optional[str]:
        """The provider's rack, when the deployment declared a topology."""
        return self._topology.get(name)

    def imbalance(self) -> float:
        """Max/mean load ratio across alive providers (1.0 = perfect)."""
        with self._lock:
            loads = [v for n, v in self._load.items() if n not in self._down]
        mean = float(np.mean(loads)) if loads else 0.0
        if mean == 0:
            return 1.0
        return float(np.max(loads)) / mean
