"""The BlobSeer client protocol, sans-IO.

Everything a BlobSeer client *does* — request an append/write ticket,
ship pages to their replica placements, wait for its metadata turn,
weave the version's segment subtree and commit it, resolve and fetch a
read — lives here as engine-parameterized generators. The generators
yield :class:`~repro.engine.base.Engine` ops and never touch the clock,
threads, or the simulation kernel, so one implementation serves both the
discrete-event runtime (``repro.blobseer.simulated``) and the threaded
in-process runtime (``repro.blobseer.client``), which are now thin shims
over this module.

The metadata tree algorithms run in-process against a
:class:`~repro.blobseer.metadata.dht.RecordingStore`; the access log is
then charged through ``engine.charge_md`` so the DES runtime bills each
node access as an RPC to its owning metadata provider while the threaded
runtime (whose DHT is genuinely in-process) pays nothing.

Failure handling is shared, not duplicated per runtime: page stores
reroute around :class:`~repro.common.errors.RpcTimeoutError` by
allocating substitute providers, and reads fail over replicas through
:func:`~repro.engine.replica.sweep_fetch` with per-client rotation and
dead-node memory. When ``engine.faults_active`` is ``False`` (the DES
runtime before any injected fault) the ship/fetch stages instead take
the engine's batched fast paths, preserving the simulator's coalesced
network accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.errors import (
    OutOfRangeReadError,
    PageNotFoundError,
    ReplicationError,
    RpcTimeoutError,
)
from ..engine.base import Engine, Payload
from ..engine.replica import ReplicaSelector, make_read_policy
from ..obs import NULL_OBS, Observability
from .metadata.dht import CachingStore, MetadataDHT, NodeCache, RecordingStore
from .metadata.segment_tree import (
    build_version,
    build_versions_batch,
    capacity_for,
    iter_all_pages,
    query_pages,
)
from .pages import Fragment, fresh_page_id, overlay
from .provider_manager import ProviderManager
from .version_manager import Ticket


def capacity_pages(size: int, page_size: int) -> int:
    """Tree capacity (power of two of pages) for a blob of *size* bytes."""
    if size == 0:
        return 0
    return capacity_for(-(-size // page_size))


def compute_layout(dht: MetadataDHT, record, page_size: int):
    """(offset, length, providers) per stored fragment of a version.

    The locality primitive the paper adds so the Map/Reduce scheduler
    can place tasks next to their data. Control-plane only: walks the
    in-process tree without charging transport.
    """
    if record.root is None:
        return []
    out: List[Tuple[int, int, Tuple[str, ...]]] = []
    for index, fragments in iter_all_pages(dht, record.root):
        base = index * page_size
        for frag in fragments:
            visible = min(frag.length, max(0, record.size - base - frag.start))
            if visible > 0:
                out.append((base + frag.start, visible, frag.providers))
    return out


class BlobSeerProtocol:
    """The one client stack, bound to a runtime through its engine.

    Holds the deployment's pure in-process components (provider manager
    for placement, metadata DHT for the tree algorithms) and mediates
    everything effectful — version-manager RPCs, page transport,
    metadata charging, backoff sleeps — through the engine.
    """

    def __init__(
        self,
        engine: Engine,
        config,
        provider_manager: ProviderManager,
        dht: MetadataDHT,
        obs: Optional[Observability] = None,
        metrics=None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.pm = provider_manager
        self.dht = dht
        self.obs = obs or NULL_OBS
        #: per-operation throughput sink (the simulator's Metrics); None
        #: on runtimes that do not sample op timings
        self.metrics = metrics
        self._selectors: Dict[str, ReplicaSelector] = {}
        self._h_ticket_wait = self.obs.registry.histogram(
            "vm.append_ticket_wait_s"
        )
        self._h_turn_wait = self.obs.registry.histogram(
            "vm.metadata_turn_wait_s"
        )
        self._c_md_rpcs = self.obs.registry.counter("md.rpcs")
        #: bounded LRU of hot (root-reachable) tree nodes; None when the
        #: ``md_cache_nodes`` knob is 0 — every get then reaches the DHT
        if getattr(config, "md_cache_nodes", 0):
            self._node_cache: Optional[NodeCache] = NodeCache(
                config.md_cache_nodes,
                hit_counter=self.obs.registry.counter("md.cache.hits"),
                miss_counter=self.obs.registry.counter("md.cache.misses"),
            )
        else:
            self._node_cache = None
        #: group commit: batch ready consecutive appenders into one
        #: publish round (see :meth:`_publish_batch`)
        self._group_commit = bool(getattr(config, "group_commit", False))
        #: replica read policy (sweep failover by default; quorum reads
        #: contact ``read_quorum`` replicas per fetch)
        self.read_policy = make_read_policy(config, self.obs.registry)
        #: replica directory feeding the re-replication daemon; ``None``
        #: (and zero-overhead) unless the ``rereplication`` knob is on
        if getattr(config, "rereplication", False):
            from .rereplication import ReplicaDirectory

            self.directory: Optional[ReplicaDirectory] = ReplicaDirectory()
        else:
            self.directory = None

    def _node_store(self):
        """``(algorithm store, recording store)`` for one metadata op.

        The algorithm store serves gets from the node cache when one is
        configured — cache hits never reach the recording store, so they
        are never charged as DHT RPCs."""
        rec = RecordingStore(self.dht)
        if self._node_cache is not None:
            return CachingStore(rec, self._node_cache), rec
        return rec, rec

    def selector(self, client: str) -> ReplicaSelector:
        """The client's replica selector (rotation phase + dead memory)."""
        sel = self._selectors.get(client)
        if sel is None:
            sel = self._selectors.setdefault(
                client,
                ReplicaSelector(self.engine.rng("replica", "blobseer", client)),
            )
        return sel

    # -- update path ---------------------------------------------------------

    def append(
        self,
        client: str,
        blob_id: int,
        payload: Payload,
        record: bool = True,
        parent=None,
    ):
        """Generator: one append — ticket, ship, metadata turn, commit.

        Returns ``(version, offset)`` of the published append.
        """
        version, offset, _group_end = yield from self.append_ex(
            client, blob_id, payload, record=record, parent=parent
        )
        return version, offset

    def append_ex(
        self,
        client: str,
        blob_id: int,
        payload: Payload,
        record: bool = True,
        parent=None,
    ):
        """Generator: one append, exposing the publish outcome.

        Returns ``(version, offset, group_end)``. *group_end* is the
        byte size this client's *publish round* advanced the blob to —
        ``offset + nbytes`` on the classic one-at-a-time path, the
        batch's final size when this client led a group commit, and
        ``None`` when another leader published this version (a size
        report is then the leader's job; see the BSFS namespace update).
        """
        if len(payload) <= 0:
            raise ValueError("cannot append zero bytes")
        engine = self.engine
        start = engine.now()
        sp = self.obs.tracer.start(
            "blobseer.append",
            cat="blobseer",
            parent=parent,
            track=client,
            blob=blob_id,
            nbytes=len(payload),
        )
        sp_vm = self.obs.tracer.start(
            "vm.assign_append", cat="blobseer.vm", parent=sp, track=client
        )
        t0 = engine.now()
        engine.trace_parent(sp_vm)
        ticket = yield engine.call("vm", "assign_append", blob_id, len(payload))
        sp_vm.finish()
        self._h_ticket_wait.observe(engine.now() - t0)
        version, group_end = yield from self._update(
            client, ticket, payload, parent=sp, group=self._group_commit
        )
        sp.finish(version=version, offset=ticket.offset)
        if record and self.metrics is not None:
            self.metrics.record(
                client, "append", start, engine.now(), len(payload)
            )
        return version, ticket.offset, group_end

    def write(
        self,
        client: str,
        blob_id: int,
        offset: int,
        payload: Payload,
        record: bool = True,
        parent=None,
    ):
        """Generator: one write-at-offset; returns the published version."""
        if len(payload) <= 0:
            raise ValueError("cannot write zero bytes")
        engine = self.engine
        start = engine.now()
        sp = self.obs.tracer.start(
            "blobseer.write",
            cat="blobseer",
            parent=parent,
            track=client,
            blob=blob_id,
            nbytes=len(payload),
        )
        sp_vm = self.obs.tracer.start(
            "vm.assign_write", cat="blobseer.vm", parent=sp, track=client
        )
        engine.trace_parent(sp_vm)
        ticket = yield engine.call(
            "vm", "assign_write", blob_id, offset, len(payload)
        )
        sp_vm.finish()
        version, _ = yield from self._update(
            client, ticket, payload, parent=sp
        )
        sp.finish(version=version)
        if record and self.metrics is not None:
            self.metrics.record(
                client, "write", start, engine.now(), len(payload)
            )
        return version

    def _update(
        self,
        client: str,
        ticket: Ticket,
        payload: Payload,
        parent,
        group: bool = False,
    ):
        """The shared body of append/write, from a granted ticket on.

        Returns ``(version, group_end)`` — see :meth:`append_ex`. With
        *group* set (appends under group commit) the serialized metadata
        turn is replaced by the ready hand-off: the client pushes its
        change map to the version manager and either leads a batched
        publish round or returns as soon as some leader publishes it.
        """
        engine = self.engine
        tracer = self.obs.tracer
        ps = ticket.page_size
        offset, end = ticket.offset, ticket.offset + ticket.nbytes
        first, last = offset // ps, (end - 1) // ps
        page_indices = range(first, last + 1)
        sizes = [
            min(end, (p + 1) * ps) - max(offset, p * ps) for p in page_indices
        ]
        placements = self.pm.allocate(
            sizes, replication=self.config.replication
        )

        sp_ship = tracer.start(
            "pages.ship",
            cat="blobseer.data",
            parent=parent,
            track=client,
            pages=len(sizes),
        )
        new_frags: Dict[int, Fragment] = {}
        if engine.faults_active:
            # store page by page, rerouting around crashed providers
            for i, p in enumerate(page_indices):
                lo, hi = max(offset, p * ps), min(end, (p + 1) * ps)
                page_id = fresh_page_id(ticket.blob_id, client)
                stored_on = yield from self._store_page(
                    client,
                    page_id,
                    payload.slice(lo - offset, hi - offset),
                    placements[i],
                    parent=sp_ship,
                )
                new_frags[p] = Fragment(
                    start=lo - p * ps,
                    length=hi - lo,
                    page_id=page_id,
                    data_offset=0,
                    providers=stored_on,
                )
        else:
            # fault-free fast path: one batched fan-out for all replicas
            for i, p in enumerate(page_indices):
                lo, hi = max(offset, p * ps), min(end, (p + 1) * ps)
                new_frags[p] = Fragment(
                    start=lo - p * ps,
                    length=hi - lo,
                    page_id=fresh_page_id(ticket.blob_id, client),
                    data_offset=0,
                    providers=placements[i],
                )
            engine.trace_parent(sp_ship)
            shippers = engine.ship_many(client, placements, sizes)
            if len(shippers) == 1:
                yield shippers[0]
            else:
                engine.trace_parent(sp_ship)
                yield engine.gather(shippers)
        sp_ship.finish()
        if self.directory is not None:
            for frag in new_frags.values():
                self.directory.note_page(
                    frag.page_id, frag.providers, frag.length
                )

        if group:
            group_end = yield from self._group_publish(
                client, ticket, new_frags, parent
            )
            return ticket.version, group_end

        sp_turn = tracer.start(
            "vm.metadata_turn_wait",
            cat="blobseer.vm",
            parent=parent,
            track=client,
            version=ticket.version,
        )
        turn_t0 = engine.now()
        engine.trace_parent(sp_turn)
        prereq = yield engine.wait(
            "vm", "metadata_turn", ticket.blob_id, ticket.version
        )
        sp_turn.finish()
        self._h_turn_wait.observe(engine.now() - turn_t0)
        assert prereq is not None, "turn granted before predecessor resolved"
        prev_root, prev_capacity = prereq

        # overlay partially-covered boundary pages on the previous
        # version's fragments (reading those leaves costs metadata RPCs)
        changes: Dict[int, tuple] = {}
        boundary_log: list = []
        for p, frag in new_frags.items():
            defined = max(0, min(ticket.new_size, (p + 1) * ps) - p * ps)
            if (frag.start == 0 and frag.end >= defined) or prev_root is None:
                changes[p] = (frag,)
                continue
            store, rec_store = self._node_store()
            prev_frags = query_pages(store, prev_root, p, p + 1).get(p, ())
            boundary_log.extend(rec_store.take_log())
            changes[p] = overlay(prev_frags, frag)
        if boundary_log:
            sp_b = tracer.start(
                "md.boundary_read",
                cat="blobseer.md",
                parent=parent,
                track=client,
                rpcs=len(boundary_log),
            )
            yield from self._charge(boundary_log, parent=sp_b)
            sp_b.finish()

        store, rec_store = self._node_store()
        root = build_version(
            store,
            ticket.blob_id,
            ticket.version,
            prev_root,
            prev_capacity,
            changes,
            capacity_pages(ticket.new_size, ps),
        )
        build_log = rec_store.take_log()
        sp_md = tracer.start(
            "md.build_version",
            cat="blobseer.md",
            parent=parent,
            track=client,
            rpcs=len(build_log),
        )
        yield from self._charge(build_log, parent=sp_md)
        sp_md.finish()

        sp_c = tracer.start(
            "vm.commit", cat="blobseer.vm", parent=parent, track=client
        )
        engine.trace_parent(sp_c)
        yield engine.call("vm", "commit", ticket.blob_id, ticket.version, root)
        sp_c.finish()
        return ticket.version, ticket.offset + ticket.nbytes

    def _group_publish(
        self, client: str, ticket: Ticket, new_frags: Dict[int, Fragment], parent
    ):
        """Generator: the group-commit metadata turn for one append.

        Pushes the ready change map to the version manager (one charged
        RPC at the cheap commit-push cost). The reply either promotes
        this client to leader of a batch of consecutive ready appends —
        it then publishes all of them in one metadata round — or queues
        it behind the current leader, in which case it waits (uncharged)
        until a leader publishes its version, possibly inheriting the
        lead when its predecessor lands first.

        Returns the batch's final blob size when this client led, or
        ``None`` when another leader published its version.
        """
        engine = self.engine
        tracer = self.obs.tracer
        turn_t0 = engine.now()
        sp_r = tracer.start(
            "vm.commit_ready",
            cat="blobseer.vm",
            parent=parent,
            track=client,
            version=ticket.version,
        )
        engine.trace_parent(sp_r)
        reply = yield engine.call(
            "vm", "commit_ready", ticket.blob_id, ticket.version, new_frags
        )
        sp_r.finish(role=reply[0])
        if reply[0] == "queued":
            sp_w = tracer.start(
                "vm.publish_wait",
                cat="blobseer.vm",
                parent=parent,
                track=client,
                version=ticket.version,
            )
            engine.trace_parent(sp_w)
            reply = yield engine.wait(
                "vm", "publish_wait", ticket.blob_id, ticket.version
            )
            sp_w.finish(role=reply[0])
        self._h_turn_wait.observe(engine.now() - turn_t0)
        if reply[0] == "published":
            return None
        assert reply[0] == "lead", f"unexpected publish reply {reply!r}"
        _, prev_root, prev_capacity, batch = reply
        group_end = yield from self._publish_batch(
            client,
            ticket.blob_id,
            prev_root,
            prev_capacity,
            batch,
            ticket.page_size,
            parent,
        )
        return group_end

    def _publish_batch(
        self,
        client: str,
        blob_id: int,
        prev_root,
        prev_capacity: int,
        batch,
        page_size: int,
        parent,
    ):
        """Generator: publish a batch of ready appends as the leader.

        *batch* is ``[(version, raw_change_map, new_size), ...]`` in
        version order. The members' maps are raw single-fragment pages
        on purpose: a member's partially-covered boundary page may owe
        its missing bytes to the *previous batch member*, so the merge
        (:func:`build_versions_batch`) folds them in commit order. Only
        the very first page of the very first member can inherit bytes
        from the previously *published* tree, so a group publish does at
        most one boundary read regardless of batch size.

        Returns the batch's final blob size.
        """
        tracer = self.obs.tracer
        engine = self.engine
        versions = [v for v, _, _ in batch]
        member_maps: List[Dict[int, tuple]] = [
            {p: (frag,) for p, frag in frags.items()} for _, frags, _ in batch
        ]
        logs: List[list] = []
        first_map = member_maps[0]
        p0 = min(first_map)
        frag0 = first_map[p0][0]
        if frag0.start > 0 and prev_root is not None:
            store, rec_store = self._node_store()
            prev_frags = query_pages(store, prev_root, p0, p0 + 1).get(p0, ())
            blog = rec_store.take_log()
            if blog:
                logs.append(blog)
            first_map[p0] = overlay(prev_frags, frag0)
        last_size = batch[-1][2]
        store, rec_store = self._node_store()
        root = build_versions_batch(
            store,
            blob_id,
            list(zip(versions, member_maps)),
            prev_root,
            prev_capacity,
            capacity_pages(last_size, page_size),
        )
        logs.append(rec_store.take_log())
        sp_md = tracer.start(
            "md.publish_batch",
            cat="blobseer.md",
            parent=parent,
            track=client,
            rpcs=sum(len(log) for log in logs),
            members=len(batch),
        )
        yield from self._charge_many(logs, parent=sp_md)
        sp_md.finish()

        sp_c = tracer.start(
            "vm.publish_batch",
            cat="blobseer.vm",
            parent=parent,
            track=client,
            members=len(batch),
        )
        engine.trace_parent(sp_c)
        yield engine.call(
            "vm", "publish_batch", blob_id, versions, root, last_size
        )
        sp_c.finish()
        return last_size

    def _store_page(
        self, client: str, page_id, payload: Payload, providers, parent=None
    ):
        """Generator: store one page on its placement, rerouting around
        timeouts by allocating substitute providers. Returns the tuple
        of providers that actually hold the page."""
        engine = self.engine
        remaining = list(providers)
        stored: List[str] = []
        attempts = 0
        while remaining:
            name = remaining.pop(0)
            try:
                engine.trace_parent(parent)
                yield engine.store(client, name, page_id, payload)
            except RpcTimeoutError:
                self.pm.mark_down(name)
                attempts += 1
                if attempts > 3 + len(providers):
                    break
                try:
                    substitute = self.pm.allocate(
                        [len(payload)], replication=1
                    )[0][0]
                except ReplicationError:
                    break
                if (
                    substitute != name
                    and substitute not in remaining
                    and substitute not in stored
                ):
                    remaining.append(substitute)
            else:
                stored.append(name)
        if not stored:
            raise ReplicationError(
                f"page {page_id} could not be stored on any provider"
            )
        return tuple(stored)

    def _charge(self, log, parent=None):
        """Generator: bill a metadata access log as RPCs to its owners."""
        if not log:
            return
        self._c_md_rpcs.inc(len(log))
        self.engine.trace_parent(parent)
        yield self.engine.charge_md([rec.owner for rec in log])

    def _charge_many(self, logs, parent=None):
        """Generator: bill several access logs as one publish round."""
        logs = [log for log in logs if log]
        if not logs:
            return
        self._c_md_rpcs.inc(sum(len(log) for log in logs))
        self.engine.trace_parent(parent)
        yield self.engine.charge_md_many(
            [[rec.owner for rec in log] for log in logs]
        )

    # -- read path -----------------------------------------------------------

    def read(
        self,
        client: str,
        blob_id: int,
        offset: int,
        nbytes: int,
        version: Optional[int] = None,
        record: bool = True,
        parent=None,
    ):
        """Generator: read ``[offset, offset+nbytes)`` of a version.

        Returns ``(version, data)`` — *data* is the bytes on engines
        that materialize payloads and ``None`` under pure simulation.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("read range must be non-negative")
        engine = self.engine
        start = engine.now()
        sp = self.obs.tracer.start(
            "blobseer.read",
            cat="blobseer",
            parent=parent,
            track=client,
            blob=blob_id,
            offset=offset,
            nbytes=nbytes,
        )
        sp_vm = self.obs.tracer.start(
            "vm.resolve", cat="blobseer.vm", parent=sp, track=client
        )
        engine.trace_parent(sp_vm)
        rec, ps = yield engine.call("vm", "resolve", blob_id, version)
        sp_vm.finish()
        if nbytes == 0:
            if offset > rec.size:
                raise OutOfRangeReadError(
                    f"blob {blob_id} v{rec.version}: offset {offset} past "
                    f"size {rec.size}"
                )
            sp.finish(version=rec.version)
            return rec.version, b""
        if offset + nbytes > rec.size:
            raise OutOfRangeReadError(
                f"blob {blob_id} v{rec.version}: read [{offset}, "
                f"{offset + nbytes}) past size {rec.size}"
            )
        if rec.root is None:
            raise PageNotFoundError(
                f"blob {blob_id} v{rec.version}: range is an aborted hole"
            )

        first, last = offset // ps, (offset + nbytes - 1) // ps
        store, rec_store = self._node_store()
        leaves = query_pages(store, rec.root, first, last + 1)
        query_log = rec_store.take_log()
        sp_md = self.obs.tracer.start(
            "md.query_pages",
            cat="blobseer.md",
            parent=sp,
            track=client,
            rpcs=len(query_log),
        )
        yield from self._charge(query_log, parent=sp_md)
        sp_md.finish()

        # walk each page's fragments with a cursor so holes *inside* a
        # leaf (from an aborted writer whose neighbour committed) fail
        # loudly instead of returning zeros
        jobs: List[Tuple[int, Fragment]] = []
        for p in range(first, last + 1):
            if p not in leaves:
                raise PageNotFoundError(
                    f"blob {blob_id} v{rec.version}: page {p} is a hole"
                )
            base = p * ps
            lo = max(offset, base) - base
            hi = min(offset + nbytes, base + ps) - base
            cursor = lo
            for frag in leaves[p]:
                piece = frag.clip(cursor, hi)
                if piece is None:
                    continue
                if piece.start > cursor:
                    raise PageNotFoundError(
                        f"blob {blob_id} v{rec.version}: hole in page {p} "
                        f"at [{cursor}, {piece.start})"
                    )
                jobs.append((base + piece.start - offset, piece))
                cursor = piece.end
                if cursor >= hi:
                    break
            if cursor < hi:
                raise PageNotFoundError(
                    f"blob {blob_id} v{rec.version}: page {p} ends at "
                    f"{cursor}, need {hi}"
                )

        sp_fetch = self.obs.tracer.start(
            "pages.fetch", cat="blobseer.data", parent=sp, track=client
        )
        directory = self.directory
        if directory is not None:
            for _, piece in jobs:
                directory.note_read(piece.page_id)
        buf: Optional[bytearray] = None
        if engine.faults_active or self.read_policy.serial_fetch:
            sel = self.selector(client)
            for out_pos, piece in jobs:
                providers = piece.providers
                if directory is not None:
                    # re-replicated copies are readable too
                    providers = directory.providers_for(
                        piece.page_id, providers
                    )
                data = yield from self.read_policy.fetch(
                    engine,
                    sel,
                    client,
                    providers,
                    piece.page_id,
                    piece.data_offset,
                    piece.length,
                    f"page {piece.page_id}",
                    parent=sp_fetch,
                )
                if data is not None:
                    if buf is None:
                        buf = bytearray(nbytes)
                    buf[out_pos : out_pos + piece.length] = data
        else:
            fetchers = []
            for _, piece in jobs:
                engine.trace_parent(sp_fetch)
                fetchers.append(
                    engine.fetch(
                        client,
                        piece.providers[0],
                        piece.page_id,
                        piece.data_offset,
                        piece.length,
                    )
                )
            engine.trace_parent(sp_fetch)
            yield engine.gather(fetchers)
        sp_fetch.finish(fragments=len(jobs))
        sp.finish(version=rec.version)
        if record and self.metrics is not None:
            self.metrics.record(client, "read", start, engine.now(), nbytes)
        return rec.version, (bytes(buf) if buf is not None else None)
