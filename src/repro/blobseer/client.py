"""Threaded (real-bytes) BlobSeer service and client.

This runtime actually stores and serves data, with genuine concurrency:
many threads may append to the same BLOB simultaneously and the
versioning protocol guarantees each append lands intact at its assigned
offset, while readers of published versions are never disturbed.

The write/append data path follows :mod:`repro.blobseer.version_manager`:

* the update's bytes are shipped to providers as position-independent
  stored objects, in parallel, immediately after version assignment;
* during the client's *metadata turn* (sequenced by the version
  manager) the new segment-tree leaves are formed by **overlaying**
  fragment descriptors over the previous version's — no old data is
  ever read back or rewritten, so unaligned concurrent appends cost
  exactly one metadata read per boundary page;
* the tree for the new version is written to the metadata DHT and the
  version is committed, which publishes versions in order.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..common.config import BlobSeerConfig
from ..common.errors import (
    OutOfRangeReadError,
    PageNotFoundError,
    ProviderUnavailableError,
    ReplicationError,
)
from ..common.intervals import Extent
from ..common.rng import substream
from ..obs import NULL_OBS, Observability
from .metadata.dht import MetadataDHT
from .metadata.segment_tree import (
    NodeKey,
    build_version,
    capacity_for,
    iter_all_pages,
    query_pages,
)
from .pages import Fragment, PageFragments, PageId, fresh_page_id, overlay
from .provider import Provider
from .provider_manager import ProviderManager
from .version_manager import ThreadedVersionManager, Ticket


class BlobSeerService:
    """One in-process BlobSeer deployment: VM + PM + metadata DHT + providers."""

    def __init__(
        self,
        config: Optional[BlobSeerConfig] = None,
        n_providers: int = 8,
        seed: int = 0,
        store_factory=None,
        obs: Optional[Observability] = None,
    ) -> None:
        """*store_factory*, when given, is called with each provider's name
        and must return a :class:`~repro.blobseer.persistence.PageStore`
        (used to give providers durable log-structured backends)."""
        self.config = config or BlobSeerConfig()
        self.config.validate()
        if n_providers < 1:
            raise ValueError("need at least one provider")
        self.obs = obs or NULL_OBS
        self.seed = seed
        names = [f"provider-{i:03d}" for i in range(n_providers)]
        self.providers: Dict[str, Provider] = {
            name: Provider(name, store_factory(name) if store_factory else None)
            for name in names
        }
        self.version_manager = ThreadedVersionManager(self.obs, config=self.config)
        self.dht = MetadataDHT(self.config.metadata_providers)
        self.provider_manager = ProviderManager(names, seed=seed, obs=self.obs)

    # -- service operations -------------------------------------------------

    def create_blob(self, page_size: Optional[int] = None) -> int:
        """Create an empty BLOB; returns its id."""
        return self.version_manager.create_blob(page_size or self.config.page_size)

    def client(self, name: str = "client") -> "BlobClient":
        """A client endpoint (one per application thread is conventional,
        but clients are themselves thread-safe)."""
        return BlobClient(self, name)

    def prune_blob(self, blob_id: int, keep_from_version: int):
        """Reclaim the storage of versions older than *keep_from_version*
        (which stays readable, as does everything newer). Returns a
        :class:`~repro.blobseer.pruning.PruneReport`."""
        from .pruning import prune_blob

        return prune_blob(self, blob_id, keep_from_version)

    def fail_provider(self, name: str) -> None:
        """Fault injection: crash a provider and exclude it from placement."""
        self.providers[name].fail()
        self.provider_manager.mark_down(name)

    def recover_provider(self, name: str) -> None:
        """Bring a crashed provider back."""
        self.providers[name].recover()
        self.provider_manager.mark_up(name)

    def close(self) -> None:
        """Release provider persistence backends."""
        for provider in self.providers.values():
            provider.store.close()


class BlobClient:
    """Client endpoint of the threaded BlobSeer service."""

    def __init__(self, service: BlobSeerService, name: str) -> None:
        self.service = service
        self.name = name
        self._pool = ThreadPoolExecutor(
            max_workers=service.config.client_parallelism,
            thread_name_prefix=f"blobseer-{name}",
        )
        # replica rotation: a seeded per-client phase plus a round-robin
        # step per fetch, so concurrent readers spread over replicas
        # instead of all hammering the placement-order primary
        self._replica_rr = itertools.count(
            int(substream(service.seed, "client", name).integers(1 << 30))
        )
        #: providers that failed an RPC, skipped-first for this client's
        #: lifetime (re-probed last; removed again on a successful reply)
        self._dead_providers: Set[str] = set()

    # -- blob lifecycle ---------------------------------------------------------

    def create_blob(self, page_size: Optional[int] = None) -> int:
        """Create an empty BLOB; returns its id."""
        return self.service.create_blob(page_size)

    # -- write paths ---------------------------------------------------------------

    def append(self, blob_id: int, data: bytes) -> int:
        """Append *data*; returns the version this update generates.

        The offset is chosen by the version manager (size of the latest
        assigned version), exactly as in BlobSeer/GFS record append.
        """
        version, _offset = self.append_with_offset(blob_id, data)
        return version

    def append_with_offset(self, blob_id: int, data: bytes) -> Tuple[int, int]:
        """Append *data*; returns ``(version, offset)`` — the offset the
        version manager assigned. BSFS uses the offset to maintain the
        file size at its namespace manager."""
        if not data:
            raise ValueError("cannot append zero bytes")
        vm = self.service.version_manager
        with self.service.obs.tracer.span(
            "blobseer.append",
            cat="blobseer",
            track=self.name,
            blob=blob_id,
            nbytes=len(data),
        ):
            ticket = vm.assign_append(blob_id, len(data))
            return self._run_update(ticket, data), ticket.offset

    def write(self, blob_id: int, offset: int, data: bytes) -> int:
        """Overwrite ``[offset, offset+len(data))``; returns the new version.

        The offset must be page-aligned and must not create a hole
        (``offset <= current size``). Data outside the written range is
        inherited from the previous version via subtree sharing and
        fragment overlay.
        """
        if not data:
            raise ValueError("cannot write zero bytes")
        vm = self.service.version_manager
        with self.service.obs.tracer.span(
            "blobseer.write",
            cat="blobseer",
            track=self.name,
            blob=blob_id,
            nbytes=len(data),
        ):
            ticket = vm.assign_write(blob_id, offset, len(data))
            return self._run_update(ticket, data)

    # -- read path --------------------------------------------------------------------

    def read(
        self,
        blob_id: int,
        offset: int,
        size: int,
        version: Optional[int] = None,
    ) -> bytes:
        """Read ``[offset, offset+size)`` of a published version
        (default: the latest)."""
        if offset < 0 or size < 0:
            raise ValueError("negative offset/size")
        vm = self.service.version_manager
        record = (
            vm.latest_published(blob_id)
            if version is None
            else vm.get_version(blob_id, version)
        )
        if size == 0:
            if offset > record.size:
                raise OutOfRangeReadError(
                    f"offset {offset} beyond version size {record.size}"
                )
            return b""
        if offset + size > record.size:
            raise OutOfRangeReadError(
                f"read [{offset}, {offset + size}) beyond version size {record.size}"
            )
        if record.root is None:
            # aborted version over an empty blob: the whole range is a hole
            raise PageNotFoundError(
                f"blob {blob_id} v{record.version}: range is an aborted hole"
            )
        sp = self.service.obs.tracer.start(
            "blobseer.read",
            cat="blobseer",
            track=self.name,
            blob=blob_id,
            offset=offset,
            nbytes=size,
        )
        page_size = vm.blob(blob_id).page_size
        first = offset // page_size
        last = (offset + size - 1) // page_size
        leaves = query_pages(self.service.dht, record.root, first, last + 1)
        missing = [p for p in range(first, last + 1) if p not in leaves]
        if missing:
            raise PageNotFoundError(
                f"blob {blob_id} v{record.version}: no pages at indices {missing}"
            )

        # every (fragment, in-fragment range) needed, with its output slot
        jobs: List[Tuple[int, Fragment, int, int]] = []  # (out_pos, frag, lo, n)
        for p in range(first, last + 1):
            base = p * page_size
            lo = max(offset, base) - base
            hi = min(offset + size, base + page_size) - base
            cursor = lo
            for frag in leaves[p]:
                piece = frag.clip(cursor, hi)
                if piece is None:
                    continue
                if piece.start > cursor:
                    raise PageNotFoundError(
                        f"blob {blob_id} v{record.version}: hole in page {p} "
                        f"at [{cursor}, {piece.start})"
                    )
                jobs.append(
                    (base + piece.start - offset, piece, piece.data_offset, piece.length)
                )
                cursor = piece.end
                if cursor >= hi:
                    break
            if cursor < hi:
                raise PageNotFoundError(
                    f"blob {blob_id} v{record.version}: page {p} ends at "
                    f"{cursor}, need {hi}"
                )

        out = bytearray(size)

        def fetch(job: Tuple[int, Fragment, int, int]) -> None:
            pos, frag, data_off, n = job
            out[pos : pos + n] = self._fetch_fragment(frag, data_off, n)

        if len(jobs) == 1:
            fetch(jobs[0])
        else:
            futures = [self._pool.submit(fetch, job) for job in jobs]
            wait(futures)
            for f in futures:
                f.result()
        sp.finish(fragments=len(jobs))
        return bytes(out)

    def size(self, blob_id: int, version: Optional[int] = None) -> int:
        """Byte size of a published version (default latest)."""
        vm = self.service.version_manager
        record = (
            vm.latest_published(blob_id)
            if version is None
            else vm.get_version(blob_id, version)
        )
        return record.size

    def latest_version(self, blob_id: int) -> int:
        """Number of the latest published version."""
        return self.service.version_manager.latest_published(blob_id).version

    def get_layout(
        self, blob_id: int, version: Optional[int] = None
    ) -> List[Tuple[Extent, Tuple[str, ...]]]:
        """The data layout of a published version.

        This is the primitive the paper adds to BlobSeer so the
        Map/Reduce scheduler can be made data-location aware: one
        ``(extent, providers)`` entry per stored fragment, clipped to
        the version's size, in offset order.
        """
        vm = self.service.version_manager
        record = (
            vm.latest_published(blob_id)
            if version is None
            else vm.get_version(blob_id, version)
        )
        if record.root is None:
            return []
        page_size = vm.blob(blob_id).page_size
        out: List[Tuple[Extent, Tuple[str, ...]]] = []
        for index, fragments in iter_all_pages(self.service.dht, record.root):
            base = index * page_size
            for frag in fragments:
                visible = min(frag.length, max(0, record.size - base - frag.start))
                if visible > 0:
                    out.append((Extent(base + frag.start, visible), frag.providers))
        return out

    def close(self) -> None:
        """Shut down the client's I/O thread pool."""
        self._pool.shutdown(wait=True)

    # -- update machinery ------------------------------------------------------------

    def _run_update(self, ticket: Ticket, data: bytes) -> int:
        service = self.service
        tracer = service.obs.tracer
        vm = service.version_manager
        ps = ticket.page_size
        offset, end = ticket.offset, ticket.offset + ticket.nbytes
        first = offset // ps
        last = (end - 1) // ps
        page_indices = list(range(first, last + 1))

        # ship every page's bytes immediately; each page of the update is
        # one stored object (so reads fetch at page granularity)
        placements = service.provider_manager.allocate(
            [min(end, (p + 1) * ps) - max(offset, p * ps) for p in page_indices],
            replication=service.config.replication,
        )
        new_frags: Dict[int, Fragment] = {}
        futures = []

        def ship(i: int, p: int) -> Tuple[int, Fragment]:
            lo = max(offset, p * ps)
            hi = min(end, (p + 1) * ps)
            page_id = fresh_page_id(ticket.blob_id, self.name)
            stored_on = self._store_page(page_id, data[lo - offset : hi - offset],
                                         placements[i])
            return p, Fragment(
                start=lo - p * ps,
                length=hi - lo,
                page_id=page_id,
                data_offset=0,
                providers=stored_on,
            )

        with tracer.span(
            "pages.ship",
            cat="blobseer.data",
            track=self.name,
            pages=len(page_indices),
        ):
            for i, p in enumerate(page_indices):
                futures.append(self._pool.submit(ship, i, p))
            done, _ = wait(futures)
            for fut in done:
                p, frag = fut.result()  # surfaces store failures
                new_frags[p] = frag

        # metadata turn: previous version's tree is now complete
        with tracer.span(
            "vm.metadata_turn_wait",
            cat="blobseer.vm",
            track=self.name,
            version=ticket.version,
        ):
            prev_root, prev_capacity = vm.wait_metadata_turn(
                ticket.blob_id, ticket.version
            )

        # boundary pages inherit the previous version's fragments by
        # overlay (metadata only — no data is read back)
        changes: Dict[int, PageFragments] = {}
        for p, frag in new_frags.items():
            prev_size_here = max(0, min(ticket.new_size, (p + 1) * ps) - p * ps)
            whole_page = frag.start == 0 and frag.end >= prev_size_here
            if whole_page or prev_root is None:
                changes[p] = (frag,)
                continue
            prev_frags = query_pages(service.dht, prev_root, p, p + 1).get(p, ())
            changes[p] = overlay(prev_frags, frag)

        with tracer.span(
            "md.build_version", cat="blobseer.md", track=self.name
        ):
            root = build_version(
                service.dht,
                ticket.blob_id,
                ticket.version,
                prev_root,
                prev_capacity,
                changes,
                _capacity_pages(ticket.new_size, ps),
            )
        with tracer.span("vm.commit", cat="blobseer.vm", track=self.name):
            vm.commit(ticket.blob_id, ticket.version, root)
        return ticket.version

    def _store_page(
        self, page_id: PageId, data: bytes, providers: Sequence[str]
    ) -> Tuple[str, ...]:
        """Write one stored object to every replica, re-allocating around
        failures. Returns the providers that actually hold it."""
        remaining = list(providers)
        stored: List[str] = []
        attempts = 0
        while remaining:
            name = remaining.pop(0)
            provider = self.service.providers[name]
            try:
                provider.put_page(page_id, data)
                stored.append(name)
            except ProviderUnavailableError:
                self.service.provider_manager.mark_down(name)
                attempts += 1
                if attempts > 3 + len(providers):
                    break
                # pick a substitute provider not already used
                try:
                    sub = self.service.provider_manager.allocate(
                        [len(data)], replication=1
                    )[0][0]
                except ReplicationError:
                    break
                if sub not in remaining and sub != name and sub not in stored:
                    remaining.append(sub)
        if not stored:
            raise ReplicationError(
                f"page {page_id} could not be stored on any provider"
            )
        return tuple(stored)

    def _fetch_fragment(self, frag: Fragment, data_offset: int, size: int) -> bytes:
        """Read a byte range of one stored object, falling back across
        replicas. The starting replica rotates per fetch and providers
        this client has seen fail are tried last."""
        n = len(frag.providers)
        start = next(self._replica_rr) % n if n > 1 else 0
        order = [frag.providers[(start + i) % n] for i in range(n)]
        if self._dead_providers:
            order.sort(key=lambda name: name in self._dead_providers)
        last_exc: Exception | None = None
        for name in order:
            provider = self.service.providers.get(name)
            if provider is None:
                continue
            try:
                data = provider.get_page(frag.page_id, data_offset, size)
            except ProviderUnavailableError as exc:
                self._dead_providers.add(name)
                last_exc = exc
            except PageNotFoundError as exc:
                # the provider answered: alive, just missing this page
                last_exc = exc
            else:
                self._dead_providers.discard(name)
                return data
        raise ReplicationError(
            f"no replica of page {frag.page_id} is readable"
        ) from last_exc


def _capacity_pages(size: int, page_size: int) -> int:
    """Tree capacity in pages for a blob of *size* bytes."""
    if size == 0:
        return 0
    return capacity_for(-(-size // page_size))
