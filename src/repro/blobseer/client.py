"""The threaded, in-process BlobSeer runtime — a shim over the protocol core.

The client logic lives in :mod:`repro.blobseer.protocol`; this module
assembles the deployment around the threaded engine: real provider
objects with byte-materialized pages, the lock-based
:class:`~repro.blobseer.version_manager.ThreadedVersionManager` bound as
the ``vm`` control endpoint, and a wall-clock retry policy. Each client
call drives a protocol generator through the engine's synchronous
trampoline in the caller's thread.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.config import BlobSeerConfig
from ..common.intervals import Extent
from ..engine.base import Payload
from ..engine.threaded import ThreadedEngine
from ..obs import NULL_OBS, Observability
from .backends import store_factory_from_config
from .metadata.dht import MetadataDHT
from .placement import make_placement_policy
from .protocol import BlobSeerProtocol, compute_layout
from .provider import Provider
from .provider_manager import ProviderManager
from .version_manager import ThreadedVersionManager


class BlobSeerService:
    """One in-process BlobSeer deployment: VM + PM + metadata DHT + providers."""

    def __init__(
        self,
        config: Optional[BlobSeerConfig] = None,
        n_providers: int = 8,
        seed: int = 0,
        store_factory=None,
        obs: Optional[Observability] = None,
        engine=None,
        topology: Optional[Dict[str, str]] = None,
    ) -> None:
        """*store_factory*, when given, is called with each provider's name
        and must return a :class:`~repro.blobseer.persistence.PageStore`
        (used to give providers durable log-structured backends); when
        ``None`` it is derived from the config's ``page_store_backend``
        knobs (see :mod:`repro.blobseer.backends`). *topology* maps
        provider name -> rack name for the rack-aware placement policy.

        *engine*, when given, replaces the default
        :class:`~repro.engine.threaded.ThreadedEngine` — any engine with
        the same ``bind``/``bind_data`` wiring surface works; the HTTP
        front-end passes an :class:`~repro.engine.aio.AsyncioEngine`
        here (note its ``run`` is a coroutine, so the synchronous
        :class:`BlobClient` facade only works on the threaded default).
        """
        self.config = config or BlobSeerConfig()
        self.config.validate()
        if n_providers < 1:
            raise ValueError("need at least one provider")
        self.obs = obs or NULL_OBS
        self.seed = seed
        names = [f"provider-{i:03d}" for i in range(n_providers)]
        if store_factory is None:
            store_factory = store_factory_from_config(self.config)
        self.providers: Dict[str, Provider] = {
            name: Provider(name, store_factory(name) if store_factory else None)
            for name in names
        }
        self.version_manager = ThreadedVersionManager(self.obs, config=self.config)
        self.dht = MetadataDHT(self.config.metadata_providers)
        self.provider_manager = ProviderManager(
            names,
            seed=seed,
            obs=self.obs,
            policy=make_placement_policy(self.config.placement_policy),
            topology=topology,
        )

        self.engine = engine or ThreadedEngine(seed=seed, obs=self.obs)
        self.engine.bind("vm", self.version_manager)
        for name in names:
            # resolve through the dict at call time: tests (and the
            # durability story) swap provider objects to model restarts
            self.engine.bind_data(
                name,
                lambda pid, data, n=name: self.providers[n].put_page(pid, data),
                lambda pid, off, sz, n=name: self.providers[n].get_page(
                    pid, off, sz
                ),
            )
        self.protocol = BlobSeerProtocol(
            self.engine,
            self.config,
            self.provider_manager,
            self.dht,
            obs=self.obs,
        )
        self._replicator = None

    # -- service operations -------------------------------------------------

    def create_blob(self, page_size: Optional[int] = None) -> int:
        """Create an empty BLOB; returns its id."""
        return self.version_manager.create_blob(page_size or self.config.page_size)

    def client(self, name: str = "client") -> "BlobClient":
        """A client endpoint (one per application thread is conventional,
        but clients are themselves thread-safe)."""
        return BlobClient(self, name)

    def prune_blob(self, blob_id: int, keep_from_version: int):
        """Reclaim the storage of versions older than *keep_from_version*
        (which stays readable, as does everything newer). Returns a
        :class:`~repro.blobseer.pruning.PruneReport`."""
        from .pruning import prune_blob

        return prune_blob(self, blob_id, keep_from_version)

    def fail_provider(self, name: str) -> None:
        """Fault injection: crash a provider and exclude it from placement."""
        self.providers[name].fail()
        self.provider_manager.mark_down(name)
        self.engine.fail_endpoint(name)

    def recover_provider(self, name: str) -> None:
        """Bring a crashed provider back."""
        self.providers[name].recover()
        self.provider_manager.mark_up(name)
        self.engine.recover_endpoint(name)

    def rereplicate_once(self, client: str = "rereplicator") -> int:
        """Run one re-replication scan (requires the ``rereplication``
        config knob): promote hot pages and repair crash-lost replicas.
        Returns the number of copies made by this scan."""
        if self._replicator is None:
            from .rereplication import HotPageReplicator

            self._replicator = HotPageReplicator(
                self.protocol, client, obs=self.obs
            )
        before = self._replicator.copies
        self.engine.run(self._replicator.scan())
        return self._replicator.copies - before

    def close(self) -> None:
        """Release provider persistence backends and drain the version
        manager's outstanding lease timers (idempotent)."""
        self.version_manager.close()
        for provider in self.providers.values():
            provider.store.close()


class BlobClient:
    """Client endpoint of the threaded BlobSeer service."""

    def __init__(self, service: BlobSeerService, name: str) -> None:
        self.service = service
        self.name = name

    @property
    def _dead_providers(self):
        """Providers this client has seen failing (sweep-last memory)."""
        return self.service.protocol.selector(self.name).dead

    def create_blob(self, page_size: Optional[int] = None) -> int:
        """Create an empty BLOB; returns its id."""
        return self.service.create_blob(page_size)

    def append(self, blob_id: int, data: bytes) -> int:
        """Append *data*; returns the version this update generates. The
        offset is chosen by the version manager, as in GFS record append."""
        version, _offset = self.append_with_offset(blob_id, data)
        return version

    def append_with_offset(self, blob_id: int, data: bytes) -> Tuple[int, int]:
        """Append *data*; returns ``(version, offset)`` — BSFS uses the
        assigned offset to maintain the namespace file size."""
        return self.service.engine.run(
            self.service.protocol.append(self.name, blob_id, Payload(data))
        )

    def append_ex(self, blob_id: int, data: bytes) -> Tuple[int, int, Optional[int]]:
        """Append *data*; returns ``(version, offset, group_end)`` where
        *group_end* is the blob size this client's publish round landed
        (``None`` when a group-commit leader published on its behalf —
        see :meth:`BlobSeerProtocol.append_ex`)."""
        return self.service.engine.run(
            self.service.protocol.append_ex(self.name, blob_id, Payload(data))
        )

    def write(self, blob_id: int, offset: int, data: bytes) -> int:
        """Overwrite ``[offset, offset+len(data))``; returns the new
        version. The offset must be page-aligned and must not create a
        hole; data outside the range is inherited via subtree sharing."""
        return self.service.engine.run(
            self.service.protocol.write(self.name, blob_id, offset, Payload(data))
        )

    def read(
        self,
        blob_id: int,
        offset: int,
        size: int,
        version: Optional[int] = None,
    ) -> bytes:
        """Read ``[offset, offset+size)`` of a published version
        (default: the latest)."""
        _version, data = self.service.engine.run(
            self.service.protocol.read(
                self.name, blob_id, offset, size, version=version
            )
        )
        return data

    def size(self, blob_id: int, version: Optional[int] = None) -> int:
        """Byte size of a published version (default latest)."""
        return self.service.version_manager.resolve(blob_id, version)[0].size

    def latest_version(self, blob_id: int) -> int:
        """Number of the latest published version."""
        return self.service.version_manager.latest_published(blob_id).version

    def get_layout(
        self, blob_id: int, version: Optional[int] = None
    ) -> List[Tuple[Extent, Tuple[str, ...]]]:
        """The data layout of a published version: one
        ``(extent, providers)`` entry per stored fragment, in offset
        order — the primitive the paper adds so the Map/Reduce scheduler
        can be made data-location aware."""
        record, page_size = self.service.version_manager.resolve(blob_id, version)
        return [
            (Extent(offset, length), providers)
            for offset, length, providers in compute_layout(
                self.service.dht, record, page_size
            )
        ]

    def close(self) -> None:
        """Kept for API compatibility; the client holds no resources."""
