"""The data join application — the paper's evaluation workload (§4.3).

"The data join application is similar to the outer join operation from
the database context. Data join takes as input two files consisting of
key-value pairs, and merges them based on the keys from the first file
that appear in the second file as well. The generated output consists
of 3 columns: the key from the first file and the two values associated
to the key in each of the files. If a key in the first file appears
more than once in either one of the two files, the output will contain
all the possible combinations. The keys that appear only in the first
file are not included in the output."

Implemented Hadoop-contrib style with source tagging: each mapper tags
its records with which input file they came from (via the map context's
split), and the reducer emits the cross product of the two tag groups
for keys present in both.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..common.fs import FileSystem
from ..mapreduce.job import Context, JobConf
from ..mapreduce.runner import MapReduceCluster

#: source tags
_TAG_LEFT = 0
_TAG_RIGHT = 1


def make_datajoin_conf(
    left_path: str,
    right_path: str,
    output_dir: str,
    n_reducers: int,
    output_mode: str = "separate",
) -> JobConf:
    """Job configuration for joining *left_path* with *right_path*.

    *output_mode* selects the paper's two scenarios: ``"separate"`` for
    the original Hadoop framework (one output file per reducer, needs
    only write support) and ``"shared"`` for the modified framework
    (every reducer appends to one file, needs concurrent-append support).
    """
    left = left_path

    def join_map(key: bytes, value: bytes, ctx: Context) -> None:
        """Tag each record with its source file."""
        tag = _TAG_LEFT if ctx.split.path == left else _TAG_RIGHT
        ctx.emit(key, (tag, value))

    def join_reduce(key: bytes, values: Iterable[Tuple[int, bytes]], ctx: Context) -> None:
        """Emit every (left value, right value) combination for the key."""
        lefts: List[bytes] = []
        rights: List[bytes] = []
        for tag, value in values:
            (lefts if tag == _TAG_LEFT else rights).append(value)
        if not lefts or not rights:
            ctx.counters.increment("datajoin_unmatched_keys")
            return
        ctx.counters.increment("datajoin_matched_keys")
        for lv in lefts:
            for rv in rights:
                ctx.emit(key, lv + b"\t" + rv)

    return JobConf(
        name="datajoin",
        input_paths=[left_path, right_path],
        output_dir=output_dir,
        map_fn=join_map,
        reduce_fn=join_reduce,
        n_reducers=n_reducers,
        input_format="kv",
        output_mode=output_mode,
    )


def run_datajoin(
    cluster: MapReduceCluster,
    left_path: str,
    right_path: str,
    output_dir: str,
    n_reducers: int,
    output_mode: str = "separate",
):
    """Run the join on *cluster*; returns the framework's
    :class:`~repro.mapreduce.job.JobResult`."""
    conf = make_datajoin_conf(
        left_path, right_path, output_dir, n_reducers, output_mode
    )
    return cluster.run_job(conf)


def reference_join(
    left_records: Iterable[Tuple[bytes, bytes]],
    right_records: Iterable[Tuple[bytes, bytes]],
) -> List[Tuple[bytes, bytes, bytes]]:
    """In-memory oracle of the data join semantics, used by the tests to
    validate the distributed result (sorted (key, lv, rv) triples)."""
    from collections import defaultdict

    lefts: dict[bytes, List[bytes]] = defaultdict(list)
    rights: dict[bytes, List[bytes]] = defaultdict(list)
    for k, v in left_records:
        lefts[k].append(v)
    for k, v in right_records:
        rights[k].append(v)
    out: List[Tuple[bytes, bytes, bytes]] = []
    for k in lefts:
        if k in rights:
            for lv in lefts[k]:
                for rv in rights[k]:
                    out.append((k, lv, rv))
    out.sort()
    return out


def parse_join_output(data: bytes) -> List[Tuple[bytes, bytes, bytes]]:
    """Parse the framework's 3-column output back into sorted triples."""
    triples: List[Tuple[bytes, bytes, bytes]] = []
    for line in data.splitlines():
        key, lv, rv = line.split(b"\t")
        triples.append((key, lv, rv))
    triples.sort()
    return triples
