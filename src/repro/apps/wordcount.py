"""Word count — the canonical Map/Reduce application, used as the
quickstart example and as a generic workload in tests/benchmarks."""

from __future__ import annotations

from typing import Iterable

from ..mapreduce.job import Context, JobConf
from ..mapreduce.runner import MapReduceCluster


def wordcount_map(offset: int, line: bytes, ctx: Context) -> None:
    """Emit ``(word, 1)`` for every whitespace-separated token."""
    for word in line.split():
        ctx.emit(word, 1)


def wordcount_reduce(word: bytes, counts: Iterable[int], ctx: Context) -> None:
    """Sum the counts of one word."""
    ctx.emit(word, sum(counts))


def make_wordcount_conf(
    input_paths: list[str],
    output_dir: str,
    n_reducers: int = 1,
    output_mode: str = "separate",
) -> JobConf:
    """Word-count job configuration (combiner enabled, Hadoop-style)."""
    return JobConf(
        name="wordcount",
        input_paths=input_paths,
        output_dir=output_dir,
        map_fn=wordcount_map,
        reduce_fn=wordcount_reduce,
        combiner_fn=wordcount_reduce,
        n_reducers=n_reducers,
        output_mode=output_mode,
    )


def run_wordcount(
    cluster: MapReduceCluster,
    input_paths: list[str],
    output_dir: str,
    n_reducers: int = 1,
    output_mode: str = "separate",
):
    """Run word count; returns the job result."""
    return cluster.run_job(
        make_wordcount_conf(input_paths, output_dir, n_reducers, output_mode)
    )


def parse_counts(data: bytes) -> dict[bytes, int]:
    """Parse ``word<TAB>count`` output lines into a dict."""
    out: dict[bytes, int] = {}
    for line in data.splitlines():
        word, count = line.split(b"\t")
        out[word] = int(count)
    return out
