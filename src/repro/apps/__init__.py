"""Map/Reduce applications: the paper's data join plus classic workloads
(word count, distributed grep, total-order sort)."""

from .datajoin import (
    make_datajoin_conf,
    parse_join_output,
    reference_join,
    run_datajoin,
)
from .wordcount import (
    make_wordcount_conf,
    parse_counts,
    run_wordcount,
    wordcount_map,
    wordcount_reduce,
)
from .grep import make_grep_conf, run_grep
from .sort import make_sort_conf, run_sort, sample_split_points

__all__ = [
    "make_datajoin_conf",
    "parse_join_output",
    "reference_join",
    "run_datajoin",
    "make_wordcount_conf",
    "parse_counts",
    "run_wordcount",
    "wordcount_map",
    "wordcount_reduce",
    "make_grep_conf",
    "run_grep",
    "make_sort_conf",
    "run_sort",
    "sample_split_points",
]
