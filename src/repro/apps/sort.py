"""Distributed sort — TeraSort-style total-order sort.

Identity map/reduce with a *range partitioner* built by sampling the
input: reducer *r* receives all keys in its range, so concatenating the
(individually sorted) outputs in reducer order yields a globally sorted
file. With the shared-append output mode the reducers' blocks land in
completion order, not key order — a useful demonstration of what the
shared file does and does not guarantee.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List

from ..common.fs import FileSystem
from ..mapreduce.io.input import KeyValueLineRecordReader, compute_splits
from ..mapreduce.job import Context, JobConf
from ..mapreduce.runner import MapReduceCluster


def sample_split_points(
    fs: FileSystem, input_paths: List[str], n_reducers: int, sample_limit: int = 10_000
) -> List[bytes]:
    """Sample keys from the input and derive ``n_reducers - 1`` cut points."""
    keys: List[bytes] = []
    for split in compute_splits(fs, input_paths):
        for key, _value in KeyValueLineRecordReader(fs, split):
            keys.append(key)
            if len(keys) >= sample_limit:
                break
        if len(keys) >= sample_limit:
            break
    keys.sort()
    if not keys or n_reducers <= 1:
        return []
    points = []
    for r in range(1, n_reducers):
        points.append(keys[(r * len(keys)) // n_reducers])
    return points


def make_sort_conf(
    fs: FileSystem,
    input_paths: List[str],
    output_dir: str,
    n_reducers: int = 1,
    output_mode: str = "separate",
) -> JobConf:
    """Total-order sort job over tab-separated key/value input."""
    cuts = sample_split_points(fs, input_paths, n_reducers)

    def range_partitioner(key: bytes, n: int) -> int:
        return bisect.bisect_right(cuts, key)

    def identity_map(key: bytes, value: bytes, ctx: Context) -> None:
        ctx.emit(key, value)

    def identity_reduce(key: bytes, values: Iterable[bytes], ctx: Context) -> None:
        for value in values:
            ctx.emit(key, value)

    return JobConf(
        name="sort",
        input_paths=input_paths,
        output_dir=output_dir,
        map_fn=identity_map,
        reduce_fn=identity_reduce,
        n_reducers=n_reducers,
        partitioner=range_partitioner,
        input_format="kv",
        output_mode=output_mode,
    )


def run_sort(
    cluster: MapReduceCluster,
    input_paths: List[str],
    output_dir: str,
    n_reducers: int = 1,
    output_mode: str = "separate",
):
    """Run the distributed sort; returns the job result."""
    return cluster.run_job(
        make_sort_conf(cluster.fs, input_paths, output_dir, n_reducers, output_mode)
    )
