"""Distributed grep — Map/Reduce pattern matching (a Dean & Ghemawat
original). Emits every matching line keyed by its pattern match; the
reduce phase counts occurrences per match."""

from __future__ import annotations

import re
from typing import Iterable

from ..mapreduce.job import Context, JobConf
from ..mapreduce.runner import MapReduceCluster


def make_grep_conf(
    pattern: bytes,
    input_paths: list[str],
    output_dir: str,
    n_reducers: int = 1,
    output_mode: str = "separate",
) -> JobConf:
    """Count occurrences of a regex across the input files."""
    regex = re.compile(pattern)

    def grep_map(offset: int, line: bytes, ctx: Context) -> None:
        for match in regex.finditer(line):
            ctx.emit(match.group(0), 1)

    def grep_reduce(match: bytes, counts: Iterable[int], ctx: Context) -> None:
        ctx.emit(match, sum(counts))

    return JobConf(
        name="grep",
        input_paths=input_paths,
        output_dir=output_dir,
        map_fn=grep_map,
        reduce_fn=grep_reduce,
        combiner_fn=grep_reduce,
        n_reducers=n_reducers,
        output_mode=output_mode,
    )


def run_grep(
    cluster: MapReduceCluster,
    pattern: bytes,
    input_paths: list[str],
    output_dir: str,
    n_reducers: int = 1,
    output_mode: str = "separate",
):
    """Run distributed grep; returns the job result."""
    return cluster.run_job(
        make_grep_conf(pattern, input_paths, output_dir, n_reducers, output_mode)
    )
