"""Generic workload generators for tests, examples and benchmarks."""

from __future__ import annotations

from typing import List

import numpy as np

from ..common.fs import FileSystem
from ..common.rng import substream

_WORDS = (
    b"data", b"append", b"chunk", b"page", b"version", b"reduce", b"map",
    b"blob", b"file", b"node", b"grid", b"cloud", b"stream", b"record",
    b"key", b"value", b"shuffle", b"merge", b"commit", b"publish",
)


def text_corpus(n_bytes: int, seed: int = 0, line_words: int = 8) -> bytes:
    """Deterministic whitespace-tokenized text of ~*n_bytes* bytes."""
    if n_bytes <= 0:
        raise ValueError("n_bytes must be positive")
    rng = substream(seed, "text-corpus")
    out = bytearray()
    while len(out) < n_bytes:
        idx = rng.integers(0, len(_WORDS), size=line_words)
        out += b" ".join(_WORDS[int(i)] for i in idx) + b"\n"
    return bytes(out[:n_bytes].rsplit(b"\n", 1)[0] + b"\n")


def kv_corpus(
    n_records: int, key_space: int = 100, seed: int = 0
) -> bytes:
    """Tab-separated key/value lines with repeated keys (join fodder)."""
    if n_records < 0:
        raise ValueError("n_records must be non-negative")
    rng = substream(seed, "kv-corpus")
    keys = rng.integers(0, key_space, size=n_records)
    vals = rng.integers(0, 10**6, size=n_records)
    lines = [
        b"k%05d\tv%06d" % (int(keys[i]), int(vals[i])) for i in range(n_records)
    ]
    return b"\n".join(lines) + (b"\n" if lines else b"")


def random_keys_corpus(n_records: int, seed: int = 0) -> bytes:
    """Tab-separated records with (mostly) unique random keys, for sort."""
    rng = substream(seed, "sort-corpus")
    keys = rng.integers(0, 2**40, size=n_records)
    return b"".join(
        b"%012d\trow%06d\n" % (int(keys[i]), i) for i in range(n_records)
    )


def write_corpus_files(
    fs: FileSystem, base_dir: str, n_files: int, bytes_per_file: int, seed: int = 0
) -> List[str]:
    """Write *n_files* text files under *base_dir*; returns their paths."""
    fs.mkdirs(base_dir)
    paths = []
    for i in range(n_files):
        path = f"{base_dir.rstrip('/')}/input-{i:04d}.txt"
        fs.write_all(path, text_corpus(bytes_per_file, seed=seed + i))
        paths.append(path)
    return paths
