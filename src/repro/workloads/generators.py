"""Generic workload generators for tests, examples and benchmarks.

Two families live here:

* **corpus generators** — deterministic input bytes for the Map/Reduce
  figures (text, key/value join fodder, sort keys);
* **arrival processes** — *open-loop* request schedules for the scale
  experiments (fig8). Open-loop means arrival times are fixed up front,
  independent of how fast the system serves them — the methodology for
  "offered load" sweeps, since closed-loop clients implicitly throttle
  to the service rate and can never overload the system. Arrivals are
  plain arrays, not simulated processes: tens of thousands of flyweight
  clients are represented by integer ids on a shared schedule, and the
  experiment driver spawns one pooled protocol generator per in-flight
  op rather than one long-lived process per client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

import numpy as np

from ..common.fs import FileSystem
from ..common.rng import substream, zipf_indices

_WORDS = (
    b"data", b"append", b"chunk", b"page", b"version", b"reduce", b"map",
    b"blob", b"file", b"node", b"grid", b"cloud", b"stream", b"record",
    b"key", b"value", b"shuffle", b"merge", b"commit", b"publish",
)


def text_corpus(n_bytes: int, seed: int = 0, line_words: int = 8) -> bytes:
    """Deterministic whitespace-tokenized text of ~*n_bytes* bytes."""
    if n_bytes <= 0:
        raise ValueError("n_bytes must be positive")
    rng = substream(seed, "text-corpus")
    out = bytearray()
    while len(out) < n_bytes:
        idx = rng.integers(0, len(_WORDS), size=line_words)
        out += b" ".join(_WORDS[int(i)] for i in idx) + b"\n"
    return bytes(out[:n_bytes].rsplit(b"\n", 1)[0] + b"\n")


def kv_corpus(
    n_records: int, key_space: int = 100, seed: int = 0
) -> bytes:
    """Tab-separated key/value lines with repeated keys (join fodder)."""
    if n_records < 0:
        raise ValueError("n_records must be non-negative")
    rng = substream(seed, "kv-corpus")
    keys = rng.integers(0, key_space, size=n_records)
    vals = rng.integers(0, 10**6, size=n_records)
    lines = [
        b"k%05d\tv%06d" % (int(keys[i]), int(vals[i])) for i in range(n_records)
    ]
    return b"\n".join(lines) + (b"\n" if lines else b"")


def random_keys_corpus(n_records: int, seed: int = 0) -> bytes:
    """Tab-separated records with (mostly) unique random keys, for sort."""
    rng = substream(seed, "sort-corpus")
    keys = rng.integers(0, 2**40, size=n_records)
    return b"".join(
        b"%012d\trow%06d\n" % (int(keys[i]), i) for i in range(n_records)
    )


@dataclass(slots=True, frozen=True)
class ArrivalProcess:
    """An open-loop request schedule: when each op arrives, and which
    flyweight client issues it.

    ``times`` is sorted ascending and starts at (or after) 0; ``clients``
    holds one integer client id per arrival. Iterating yields
    ``(time, client)`` pairs in arrival order.
    """

    times: np.ndarray
    clients: np.ndarray

    def __post_init__(self) -> None:
        if len(self.times) != len(self.clients):
            raise ValueError("times and clients must have equal length")
        if len(self.times) and float(self.times[0]) < 0.0:
            raise ValueError("arrival times must be non-negative")
        if np.any(np.diff(self.times) < 0.0):
            raise ValueError("arrival times must be sorted ascending")

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, int]]:
        times = self.times
        clients = self.clients
        for i in range(len(times)):
            yield float(times[i]), int(clients[i])

    @property
    def distinct_clients(self) -> int:
        """How many distinct client ids appear in the schedule."""
        return int(np.unique(self.clients).size) if len(self.clients) else 0

    @property
    def duration(self) -> float:
        """Time of the last arrival (0.0 when empty)."""
        return float(self.times[-1]) if len(self.times) else 0.0

    def offered_load(self) -> float:
        """Mean arrival rate over the schedule's span, ops/s."""
        span = self.duration
        return len(self) / span if span > 0 else 0.0


def _round_robin_clients(
    n_arrivals: int, n_clients: int, rng: np.random.Generator
) -> np.ndarray:
    """Client ids for *n_arrivals* ops over *n_clients* flyweights.

    A seeded permutation repeated round-robin: every client id appears
    either ``floor(n_arrivals / n_clients)`` or one more time, so a
    schedule of at least ``n_clients`` arrivals is guaranteed to touch
    every client — the property the ≥20k-client scale claim rests on —
    while the permutation decorrelates client identity from arrival
    order.
    """
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    perm = rng.permutation(n_clients)
    reps = -(-n_arrivals // n_clients)  # ceil
    return np.tile(perm, reps)[:n_arrivals]


def poisson_arrivals(
    rate: float,
    duration: float,
    n_clients: int,
    seed: int = 0,
) -> ArrivalProcess:
    """A Poisson arrival process: *rate* ops/s offered for *duration*
    seconds across *n_clients* flyweight clients.

    Inter-arrival gaps are i.i.d. exponential with mean ``1/rate`` (the
    memoryless process of many independent sources), truncated at
    *duration*. Deterministic per ``(seed, rate, duration)``.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    rng = substream(seed, "poisson-arrivals", repr(rate), repr(duration))
    # draw in one vectorized batch, padding ~5 sigma above the mean
    # count so a single draw almost always suffices
    expect = rate * duration
    batch = int(expect + 5.0 * max(expect, 1.0) ** 0.5) + 16
    gaps = rng.exponential(1.0 / rate, size=batch)
    times = np.cumsum(gaps)
    while len(times) and float(times[-1]) < duration:  # pragma: no cover
        extra = rng.exponential(1.0 / rate, size=batch)
        times = np.concatenate([times, float(times[-1]) + np.cumsum(extra)])
    times = times[times < duration]
    clients = _round_robin_clients(len(times), n_clients, rng)
    return ArrivalProcess(times=times, clients=clients)


def trace_arrivals(
    events: Iterable[Tuple[float, object]],
    time_scale: float = 1.0,
) -> ArrivalProcess:
    """Replay a recorded trace of ``(timestamp, client_key)`` events as
    an arrival schedule.

    Timestamps are rebased so the earliest event arrives at t=0 and
    scaled by *time_scale* (e.g. ``1/3600`` replays an hour-long trace
    in one simulated second); client keys (user names, ids) are mapped
    to dense integer ids in order of first appearance. Events may be
    given unordered; the replay is sorted by time with ties kept in
    input order — the Last.fm-style replay semantics, where one user's
    same-instant plays stay in log order.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    pairs = list(events)
    ids: dict = {}
    raw_clients = np.empty(len(pairs), dtype=np.int64)
    raw_times = np.empty(len(pairs), dtype=np.float64)
    for i, (ts, key) in enumerate(pairs):
        raw_times[i] = float(ts)
        cid = ids.get(key)
        if cid is None:
            cid = ids[key] = len(ids)
        raw_clients[i] = cid
    order = np.argsort(raw_times, kind="stable")
    times = raw_times[order]
    if len(times):
        times = (times - times[0]) * time_scale
    return ArrivalProcess(times=times, clients=raw_clients[order])


def lastfm_arrivals(
    n_events: int,
    n_clients: int,
    duration: float,
    seed: int = 0,
    skew: float = 1.1,
) -> ArrivalProcess:
    """A synthetic Last.fm-style trace: *n_events* plays over *duration*
    seconds, with client activity Zipf-skewed (a few heavy listeners
    dominate, like the real dataset's per-user play counts).

    Arrival instants are uniform over the span — the aggregate of many
    independent user sessions — and the schedule is deterministic per
    seed. Use :func:`trace_arrivals` to replay a real trace instead.
    """
    if n_events < 0:
        raise ValueError("n_events must be non-negative")
    if duration <= 0:
        raise ValueError("duration must be positive")
    rng = substream(seed, "lastfm-arrivals", n_events, n_clients)
    times = np.sort(rng.uniform(0.0, duration, size=n_events))
    clients = zipf_indices(rng, n_clients, n_events, skew=skew).astype(np.int64)
    return ArrivalProcess(times=times, clients=clients)


def write_corpus_files(
    fs: FileSystem, base_dir: str, n_files: int, bytes_per_file: int, seed: int = 0
) -> List[str]:
    """Write *n_files* text files under *base_dir*; returns their paths."""
    fs.mkdirs(base_dir)
    paths = []
    for i in range(n_files):
        path = f"{base_dir.rstrip('/')}/input-{i:04d}.txt"
        fs.write_all(path, text_corpus(bytes_per_file, seed=seed + i))
        paths.append(path)
    return paths
