"""Synthetic workloads: the Last.fm-like join dataset plus generic
text/key-value corpora."""

from .lastfm import (
    LastFMSpec,
    estimate_join_output_bytes,
    generate_records,
    key_histogram,
    write_dataset,
)
from .generators import (
    kv_corpus,
    random_keys_corpus,
    text_corpus,
    write_corpus_files,
)

__all__ = [
    "LastFMSpec",
    "estimate_join_output_bytes",
    "generate_records",
    "key_histogram",
    "write_dataset",
    "kv_corpus",
    "random_keys_corpus",
    "text_corpus",
    "write_corpus_files",
]
