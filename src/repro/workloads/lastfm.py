"""Last.fm-like synthetic dataset generator.

The paper's data-join input is "two files of 320 MB each; the input
files contain key-value pairs extracted from the datasets made public by
Last.fm"; joining them "generates 6.3 GB of output data" — roughly a
10× blow-up, which only happens when keys repeat in *both* files (every
(left, right) combination per key is emitted).

This generator reproduces those statistics synthetically: keys are
user/artist handles drawn Zipf-skewed from a bounded universe, values
are track-play records. Key multiplicity on both sides drives the
join's output multiplication; :func:`estimate_join_output_bytes` lets
experiments size the universe for a target blow-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from ..common.fs import FileSystem
from ..common.rng import substream, zipf_indices

#: realistic-looking token pools
_ADJECTIVES = (
    b"red", b"blue", b"lazy", b"mad", b"neon", b"lost", b"loud", b"cold",
    b"pale", b"wild", b"grim", b"soft", b"dark", b"calm", b"odd", b"shy",
)
_NOUNS = (
    b"fox", b"wolf", b"echo", b"moon", b"star", b"wave", b"pixel", b"robot",
    b"rider", b"ghost", b"piano", b"comet", b"raven", b"tiger", b"cloud",
    b"ember",
)
_TRACKS = (
    b"intro", b"anthem", b"reprise", b"outro", b"ballad", b"groove",
    b"nocturne", b"sonata", b"refrain", b"overture", b"etude", b"chorale",
)


@dataclass(slots=True)
class LastFMSpec:
    """Shape of one generated dataset pair."""

    #: bytes per generated file (the paper: two files of 320 MB each)
    bytes_per_file: int
    #: distinct users (keys); smaller = more repetition = bigger join
    n_users: int = 2_000
    #: Zipf skew of user activity
    skew: float = 1.05
    #: experiment seed
    seed: int = 20100621


def _user_name(index: int) -> bytes:
    adj = _ADJECTIVES[index % len(_ADJECTIVES)]
    noun = _NOUNS[(index // len(_ADJECTIVES)) % len(_NOUNS)]
    return b"%s_%s_%04d" % (adj, noun, index)


def _play_value(rng_ints: np.ndarray, i: int) -> bytes:
    track = _TRACKS[int(rng_ints[i, 0]) % len(_TRACKS)]
    artist = _NOUNS[int(rng_ints[i, 1]) % len(_NOUNS)]
    plays = int(rng_ints[i, 2]) % 500 + 1
    return b"%s-%s:%d" % (artist, track, plays)


def generate_records(
    spec: LastFMSpec, which: str
) -> Iterator[Tuple[bytes, bytes]]:
    """Yield (user, play-record) pairs totalling ~``spec.bytes_per_file``.

    *which* ("left"/"right") selects an independent RNG substream so the
    two files share the key universe but not their sampling.
    """
    if which not in ("left", "right"):
        raise ValueError("which must be 'left' or 'right'")
    rng = substream(spec.seed, "lastfm", which)
    # average record: key ~16B + tab + value ~20B + newline ≈ 40 bytes
    est_records = max(1, spec.bytes_per_file // 40)
    produced = 0
    batch = 8192
    while produced < spec.bytes_per_file:
        users = zipf_indices(rng, spec.n_users, batch, skew=spec.skew)
        ints = rng.integers(0, 2**31, size=(batch, 3))
        for i in range(batch):
            key = _user_name(int(users[i]))
            value = _play_value(ints, i)
            produced += len(key) + 1 + len(value) + 1
            yield key, value
            if produced >= spec.bytes_per_file:
                return


def write_dataset(
    fs: FileSystem, spec: LastFMSpec, left_path: str, right_path: str
) -> Tuple[int, int]:
    """Materialize both files on *fs*; returns their byte sizes."""
    sizes = []
    for which, path in (("left", left_path), ("right", right_path)):
        with fs.create(path, overwrite=True) as out:
            buf = bytearray()
            for key, value in generate_records(spec, which):
                buf += key + b"\t" + value + b"\n"
                if len(buf) >= 4 * 1024 * 1024:
                    out.write(bytes(buf))
                    buf.clear()
            if buf:
                out.write(bytes(buf))
            sizes.append(out.tell())
    return sizes[0], sizes[1]


def key_histogram(spec: LastFMSpec, which: str) -> dict[bytes, int]:
    """Key multiplicities of one generated file (no I/O)."""
    hist: dict[bytes, int] = {}
    for key, _value in generate_records(spec, which):
        hist[key] = hist.get(key, 0) + 1
    return hist


def _sum_p_squared(n_users: int, skew: float) -> float:
    """Σ p_k² of the Zipf(n_users, skew) key distribution."""
    ranks = np.arange(1, n_users + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return float(np.sum(weights**2))


def users_for_blowup(
    bytes_per_file: int,
    target_blowup: float = 10.0,
    skew: float = 0.8,
    record_bytes: int = 60,
    input_record_bytes: int = 31,
) -> int:
    """Pick ``n_users`` so the join output is ~``target_blowup`` × input.

    Analytically: with N records per file drawn i.i.d. from the key
    distribution, E[Σ_k left(k)·right(k)] = N²·Σp², so
    ``blowup ≈ N·Σp²·record_bytes / (2·input_record_bytes)``. We binary
    search the user-universe size whose Σp² hits the target — this is
    how the experiments keep the paper's 2×320 MB → 6.3 GB shape at any
    scale.

    The default skew is sub-critical (0.8 < 1) because for skew > 1 the
    head key keeps a constant probability mass no matter how many users
    exist, putting a floor under the blow-up at small input sizes.
    """
    if target_blowup <= 0:
        raise ValueError("target_blowup must be positive")
    n_records = max(1, bytes_per_file // input_record_bytes)
    want = target_blowup * 2 * input_record_bytes / (n_records * record_bytes)
    lo, hi = 2, 50_000_000
    while lo < hi:
        mid = (lo + hi) // 2
        if _sum_p_squared(mid, skew) > want:
            lo = mid + 1  # too concentrated: need more users
        else:
            hi = mid
    return lo


def spec_for_scale(
    bytes_per_file: int, target_blowup: float = 10.0, seed: int = 20100621
) -> LastFMSpec:
    """A spec whose join output is ≈ *target_blowup* × the input volume —
    the knob experiments turn to keep the paper's 2×320 MB → 6.3 GB
    ratio when running scaled-down."""
    skew = 0.8
    n_users = users_for_blowup(bytes_per_file, target_blowup, skew=skew)
    return LastFMSpec(
        bytes_per_file=bytes_per_file, n_users=n_users, skew=skew, seed=seed
    )


def estimate_join_output_bytes(spec: LastFMSpec, record_bytes: int = 60) -> int:
    """Predicted join output volume: Σ_k left(k)·right(k)·record_bytes.

    Used to pick ``n_users``/``skew`` so a scaled-down run keeps the
    paper's ~10× input→output blow-up.
    """
    left = key_histogram(spec, "left")
    right = key_histogram(spec, "right")
    combos = sum(n * right.get(k, 0) for k, n in left.items())
    return combos * record_bytes
