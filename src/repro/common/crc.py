"""CRC-framed record encoding for the persistence layer.

BlobSeer persists pages through a BerkeleyDB layer; our substitute is a
log-structured store whose on-disk records are framed as::

    magic (2B) | key_len (4B) | value_len (8B) | crc32 (4B) | key | value

The CRC covers key and value, so torn or bit-rotted records are detected
on read (surfaced as :class:`~repro.common.errors.CorruptPageError`).
"""

from __future__ import annotations

import struct
import zlib
from typing import BinaryIO, Iterator, Tuple

from .errors import CorruptPageError

_MAGIC = 0xB10B  # "blob"
_HEADER = struct.Struct(">HIQI")  # magic, key_len, value_len, crc32


def encode_record(key: bytes, value: bytes) -> bytes:
    """Frame one key/value record with header and CRC."""
    crc = zlib.crc32(key)
    crc = zlib.crc32(value, crc)
    return _HEADER.pack(_MAGIC, len(key), len(value), crc) + key + value


def decode_record(buf: bytes, offset: int = 0) -> Tuple[bytes, bytes, int]:
    """Decode the record at *offset*; returns ``(key, value, next_offset)``.

    Raises :class:`CorruptPageError` on bad magic, truncation, or CRC
    mismatch.
    """
    end = offset + _HEADER.size
    if end > len(buf):
        raise CorruptPageError(f"truncated header at offset {offset}")
    magic, key_len, value_len, crc = _HEADER.unpack_from(buf, offset)
    if magic != _MAGIC:
        raise CorruptPageError(f"bad magic 0x{magic:04x} at offset {offset}")
    key_end = end + key_len
    value_end = key_end + value_len
    if value_end > len(buf):
        raise CorruptPageError(f"truncated body at offset {offset}")
    key = buf[end:key_end]
    value = buf[key_end:value_end]
    actual = zlib.crc32(value, zlib.crc32(key))
    if actual != crc:
        raise CorruptPageError(
            f"crc mismatch at offset {offset}: stored=0x{crc:08x} actual=0x{actual:08x}"
        )
    return key, value, value_end


def read_record(fp: BinaryIO) -> Tuple[bytes, bytes] | None:
    """Read the record at the file's current position; ``None`` at EOF."""
    header = fp.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise CorruptPageError("truncated header at end of log")
    magic, key_len, value_len, crc = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise CorruptPageError(f"bad magic 0x{magic:04x}")
    body = fp.read(key_len + value_len)
    if len(body) < key_len + value_len:
        raise CorruptPageError("truncated body at end of log")
    key, value = body[:key_len], body[key_len:]
    actual = zlib.crc32(value, zlib.crc32(key))
    if actual != crc:
        raise CorruptPageError(
            f"crc mismatch: stored=0x{crc:08x} actual=0x{actual:08x}"
        )
    return key, value


def scan_log(fp: BinaryIO) -> Iterator[Tuple[bytes, bytes]]:
    """Iterate every record in a log file from its current position."""
    while True:
        rec = read_record(fp)
        if rec is None:
            return
        yield rec
