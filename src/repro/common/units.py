"""Byte-size units and formatting helpers.

Everything in the reproduction is denominated in plain integer bytes;
these constants exist so that configuration reads like the paper
("64 MB chunks", "4 KB records") rather than like arithmetic.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

#: HDFS chunk size and the BlobSeer page size used throughout the paper
#: ("As HDFS handles data in 64 MB chunks, we also set the page size at the
#: level of BlobSeer to 64 MB, to enable a fair comparison").
CHUNK_SIZE: int = 64 * MiB

#: Typical Map/Reduce record size the BSFS client cache is tuned for
#: ("Map/Reduce applications usually process data in small records (4KB,
#: whereas Hadoop is concerned)").
RECORD_SIZE: int = 4 * KiB


def format_bytes(n: int) -> str:
    """Render a byte count with a binary-unit suffix, e.g. ``"64.0 MiB"``.

    Negative counts keep their sign; sub-KiB counts render as plain bytes.
    """
    sign = "-" if n < 0 else ""
    n = abs(int(n))
    for unit, factor in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if n >= factor:
            return f"{sign}{n / factor:.1f} {unit}"
    return f"{sign}{n} B"


def parse_bytes(text: str) -> int:
    """Parse ``"64MB"``, ``"64 MiB"``, ``"4k"``, ``"123"`` into bytes.

    Decimal suffixes (MB) are treated as binary (MiB) to match the paper's
    informal usage, where "64 MB chunks" means 2**26 bytes.
    """
    s = text.strip().lower().replace(" ", "")
    multipliers = {
        "t": TiB, "tb": TiB, "tib": TiB,
        "g": GiB, "gb": GiB, "gib": GiB,
        "m": MiB, "mb": MiB, "mib": MiB,
        "k": KiB, "kb": KiB, "kib": KiB,
        "b": 1, "": 1,
    }
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit():
        idx -= 1
    num, suffix = s[:idx], s[idx:]
    if not num or suffix not in multipliers:
        raise ValueError(f"unparseable byte size: {text!r}")
    try:
        quantity = float(num) if "." in num else int(num)
    except ValueError:
        raise ValueError(f"unparseable byte size: {text!r}") from None
    result = quantity * multipliers[suffix]
    if result != int(result):
        raise ValueError(f"fractional byte count: {text!r}")
    return int(result)
