"""Configuration dataclasses for the storage systems and the testbed.

Defaults reproduce the paper's deployment on the Grid'5000 Orsay cluster:
270 nodes total; for BSFS one version manager, one provider manager, one
namespace manager, and 20 metadata providers, with the remaining nodes
acting as data providers; for HDFS a dedicated namenode with datanodes on
the remaining nodes; 64 MB pages/chunks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .units import CHUNK_SIZE, MiB


@dataclass(slots=True)
class BlobSeerConfig:
    """Tunables of the BlobSeer service and its BSFS layer."""

    #: BlobSeer page size; set to the HDFS chunk size for a fair comparison.
    page_size: int = CHUNK_SIZE
    #: page-level replication degree (BlobSeer's fault-tolerance knob)
    replication: int = 1
    #: number of metadata providers forming the DHT
    metadata_providers: int = 20
    #: BSFS client cache: number of whole blocks kept per stream
    cache_blocks: int = 2
    #: enable the BSFS client cache (prefetch + write-behind)
    cache_enabled: bool = True
    #: degree of parallelism when a client stripes one operation's pages
    client_parallelism: int = 16
    #: append-ticket lease: an assigned-but-uncommitted version is
    #: aborted (published as a hole) once it has sat at the *head* of
    #: the commit queue for this many seconds, so a dead appender cannot
    #: wedge the publish frontier. 0 disables leases. Must exceed the
    #: worst-case head-to-commit time (page transport may still be in
    #: flight when the turn arrives) — there is no renewal.
    append_lease_s: float = 30.0
    #: how long a threaded client waits for its metadata turn before
    #: aborting its own version and giving up
    metadata_turn_timeout_s: float = 60.0
    #: group commit: ready consecutive appenders hand their change maps
    #: to the version manager and one leader publishes them as a single
    #: batched metadata round. Off by default — the classic serialized
    #: publish stays bit-identical.
    group_commit: bool = False
    #: client-side LRU over immutable metadata tree nodes (entries);
    #: 0 disables the cache and every node get reaches the DHT
    md_cache_nodes: int = 0
    #: BSFS namespace: cache path->record lookups at the client, saving
    #: one namespace-manager RPC per append/read on hot files
    ns_record_cache: bool = False
    #: provider persistence backend (``repro.blobseer.backends``):
    #: "memory" (default), "log" (append-only CRC log), or "sharded"
    #: (file-per-page with batched fsync)
    page_store_backend: str = "memory"
    #: directory durable backends place their per-provider files under;
    #: required when the backend is not "memory"
    page_store_dir: str | None = None
    #: fsync durable backends on write (the log store per record, the
    #: sharded store in batches)
    page_store_fsync: bool = False
    #: page placement policy: "least_loaded" (default, the paper's
    #: load-balancing heuristic), "round_robin", or "rack_aware"
    #: (replicas spread over distinct racks)
    placement_policy: str = "least_loaded"
    #: replica read policy: "sweep" (default rotated failover sweep) or
    #: "quorum" (fetch from ``read_quorum`` replicas, first wins)
    read_policy: str = "sweep"
    #: replicas a quorum read contacts (capped at the replica count)
    read_quorum: int = 2
    #: adaptive re-replication: a daemon watches per-page read counters
    #: and raises the replica count of hot pages, and restores the
    #: configured replication of pages that lost replicas to crashes
    rereplication: bool = False
    #: period of the re-replication daemon's scans, seconds
    rereplication_period_s: float = 1.0
    #: reads of one page between scans that make it "hot"
    hot_page_threshold: int = 3
    #: ceiling on the replica count re-replication may grow a page to
    rereplication_max: int = 4

    def validate(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.metadata_providers < 1:
            raise ValueError("need at least one metadata provider")
        if self.cache_blocks < 1:
            raise ValueError("cache_blocks must be >= 1")
        if self.client_parallelism < 1:
            raise ValueError("client_parallelism must be >= 1")
        if self.append_lease_s < 0:
            raise ValueError("append_lease_s must be non-negative")
        if self.metadata_turn_timeout_s <= 0:
            raise ValueError("metadata_turn_timeout_s must be positive")
        if self.md_cache_nodes < 0:
            raise ValueError("md_cache_nodes must be non-negative")
        if self.page_store_backend != "memory" and self.page_store_dir is None:
            raise ValueError(
                f"backend {self.page_store_backend!r} needs page_store_dir"
            )
        if self.placement_policy not in (
            "least_loaded",
            "round_robin",
            "rack_aware",
        ):
            raise ValueError(
                f"unknown placement_policy {self.placement_policy!r}"
            )
        if self.read_policy not in ("sweep", "quorum"):
            raise ValueError(f"unknown read_policy {self.read_policy!r}")
        if self.read_quorum < 1:
            raise ValueError("read_quorum must be >= 1")
        if self.rereplication_period_s <= 0:
            raise ValueError("rereplication_period_s must be positive")
        if self.hot_page_threshold < 1:
            raise ValueError("hot_page_threshold must be >= 1")
        if self.rereplication_max < 1:
            raise ValueError("rereplication_max must be >= 1")


@dataclass(slots=True)
class HDFSConfig:
    """Tunables of the HDFS reimplementation."""

    #: chunk ("block") size
    chunk_size: int = CHUNK_SIZE
    #: block replication degree
    replication: int = 1
    #: client-side write buffer: writes are held until a chunk fills
    write_buffer: int = CHUNK_SIZE
    #: readahead: a small read prefetches the whole containing chunk
    readahead: bool = True

    def validate(self) -> None:
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.write_buffer <= 0:
            raise ValueError("write_buffer must be positive")


@dataclass(slots=True)
class MapReduceConfig:
    """Tunables of the Map/Reduce framework."""

    #: map slots per tasktracker
    map_slots: int = 2
    #: reduce slots per tasktracker
    reduce_slots: int = 2
    #: retries before a task is declared failed
    max_task_attempts: int = 4
    #: sort buffer for the map-side sort, bytes
    sort_buffer: int = 64 * MiB
    #: use the storage layer's block locations for task placement
    locality_aware: bool = True
    #: modified-framework mode: reducers append to one shared output file
    shared_output_file: bool = False

    def validate(self) -> None:
        if self.map_slots < 1 or self.reduce_slots < 1:
            raise ValueError("slot counts must be >= 1")
        if self.max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")


@dataclass(slots=True)
class ClusterConfig:
    """Shape and capacities of the simulated Grid'5000 Orsay deployment."""

    #: total number of machines in the reservation
    nodes: int = 270
    #: NIC capacity per node, bytes/s. The paper's per-client figures
    #: (reads up to ~350-400 MB/s) exceed GigE line rate, so the Orsay
    #: fabric must have been 10G-class (Myrinet); we model its effective
    #: node bandwidth here.
    nic_bandwidth: float = 1150.0 * MiB
    #: per-flow ceiling imposed by the client/server I/O stack (TCP +
    #: copies on 2006-era Opterons) — what actually bounds one client's
    #: throughput on a 10G fabric. bytes/s; 0 disables the cap.
    flow_rate_cap: float = 270.0 * MiB
    #: aggregate backbone capacity, bytes/s (0 = non-blocking fabric)
    backbone_bandwidth: float = 0.0
    #: number of racks in a two-level (rack switch + core) topology;
    #: 0 keeps the paper's flat single-switch fabric. Nodes are assigned
    #: round-robin, intra-rack traffic turns around at the rack switch,
    #: and inter-rack traffic shares each rack's uplink/downlink (and
    #: the backbone when configured).
    racks: int = 0
    #: rack uplink = downlink capacity, bytes/s (required when racks > 0)
    rack_bandwidth: float = 0.0
    #: one-way network latency per RPC/flow, seconds
    latency: float = 0.0002
    #: sustained disk write bandwidth per node, bytes/s
    disk_write_bandwidth: float = 70.0 * MiB
    #: sustained disk read bandwidth per node, bytes/s
    disk_read_bandwidth: float = 90.0 * MiB
    #: fraction of reads served from the OS page cache (the
    #: microbenchmarks read recently written data, largely RAM-resident)
    page_cache_hit_ratio: float = 0.9
    #: service time of one metadata RPC at a metadata provider, seconds
    metadata_rpc_time: float = 0.0006
    #: service time of the version manager's critical section, seconds
    version_assign_time: float = 0.0004
    #: service time of a group-commit ready push at the version manager,
    #: seconds — cheaper than a ticket assignment: the VM only files the
    #: change map and answers lead/queued
    commit_push_time: float = 0.0002
    #: service time of one namespace-manager / namenode RPC, seconds
    namespace_rpc_time: float = 0.0008
    #: max-min rate allocator: "incremental" (component-scoped refills,
    #: the fast default) or "reference" (full recompute per flow event)
    allocator: str = "incremental"
    #: per-RPC timeout a simulated client charges when it addresses a
    #: crashed provider/datanode/metadata provider, seconds
    rpc_timeout: float = 0.5
    #: first capped-exponential backoff delay between retry sweeps, seconds
    rpc_retry_base: float = 0.05
    #: backoff ceiling, seconds
    rpc_retry_cap: float = 2.0
    #: RPC attempts (across replicas/sweeps) before the operation fails
    rpc_max_attempts: int = 6
    #: experiment seed
    seed: int = 20100621  # HPDC'10 workshop date

    def validate(self) -> None:
        if self.allocator not in ("incremental", "reference"):
            raise ValueError(f"unknown allocator {self.allocator!r}")
        if self.nodes < 4:
            raise ValueError("need at least 4 nodes for a deployment")
        for name in (
            "nic_bandwidth",
            "disk_write_bandwidth",
            "disk_read_bandwidth",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not (0.0 <= self.page_cache_hit_ratio <= 1.0):
            raise ValueError("page_cache_hit_ratio must be in [0, 1]")
        if self.flow_rate_cap < 0:
            raise ValueError("flow_rate_cap must be non-negative")
        if self.racks < 0:
            raise ValueError("racks must be non-negative")
        if self.racks > 0 and self.rack_bandwidth <= 0:
            raise ValueError("racks > 0 needs a positive rack_bandwidth")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.commit_push_time <= 0:
            raise ValueError("commit_push_time must be positive")
        if self.rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be positive")
        if self.rpc_retry_base <= 0 or self.rpc_retry_cap < self.rpc_retry_base:
            raise ValueError("need 0 < rpc_retry_base <= rpc_retry_cap")
        if self.rpc_max_attempts < 1:
            raise ValueError("rpc_max_attempts must be >= 1")


@dataclass(slots=True)
class ExperimentConfig:
    """Bundle of every knob an experiment run needs."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    blobseer: BlobSeerConfig = field(default_factory=BlobSeerConfig)
    hdfs: HDFSConfig = field(default_factory=HDFSConfig)
    mapreduce: MapReduceConfig = field(default_factory=MapReduceConfig)
    #: repetitions per data point (the paper runs each test 5 times)
    repetitions: int = 5

    def validate(self) -> None:
        self.cluster.validate()
        self.blobseer.validate()
        self.hdfs.validate()
        self.mapreduce.validate()
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
