"""Error hierarchy shared by every subsystem of the reproduction.

The tree mirrors the layering of the stack: storage-level failures
(BlobSeer / HDFS) are distinct from namespace-level failures (BSFS /
namenode) and from framework-level failures (Map/Reduce), so callers can
catch at the altitude they care about.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --------------------------------------------------------------------------
# storage layer
# --------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for data-plane failures (providers, datanodes, pages)."""


class PageNotFoundError(StorageError):
    """A page id was requested from a provider that does not hold it."""


class ProviderUnavailableError(StorageError):
    """A provider/datanode was unreachable or declared failed."""


class RpcTimeoutError(StorageError):
    """An RPC to a crashed or unreachable node timed out.

    Raised by the engines' data-plane primitives so the shared protocol
    cores see one failure shape under both runtimes: the DES engine
    charges the timeout in simulated time, the threaded engine maps a
    provider's refusal onto it immediately.
    """


class ReplicationError(StorageError):
    """Fewer replicas than required could be written."""


class CorruptPageError(StorageError):
    """A persisted page failed its CRC check on read."""


class OutOfRangeReadError(StorageError):
    """A read extends past the end of the addressed BLOB version / file."""


# --------------------------------------------------------------------------
# BLOB / version layer
# --------------------------------------------------------------------------

class BlobError(ReproError):
    """Base class for BLOB-level failures."""


class BlobNotFoundError(BlobError):
    """No BLOB is registered under the given id."""


class VersionNotFoundError(BlobError):
    """The requested version number has not been published for this BLOB."""


class VersionNotReadyError(BlobError):
    """The version exists but has not yet been published (still pending)."""


class AppendAbortedError(BlobError):
    """The version's append ticket expired and the version was aborted.

    Raised when a client tries to commit a version whose lease lapsed:
    the version manager has already published it as a zero-length hole
    so later appenders could make progress.
    """


# --------------------------------------------------------------------------
# namespace / file-system layer
# --------------------------------------------------------------------------

class FileSystemError(ReproError):
    """Base class for namespace-level failures."""


class FileNotFoundInNamespaceError(FileSystemError):
    """Path lookup failed."""


class FileAlreadyExistsError(FileSystemError):
    """Exclusive create on an existing path."""


class NotADirectoryError_(FileSystemError):
    """A path component that must be a directory is a file."""


class IsADirectoryError_(FileSystemError):
    """A data operation was attempted on a directory."""


class DirectoryNotEmptyError(FileSystemError):
    """Non-recursive delete of a non-empty directory."""


class AppendNotSupportedError(FileSystemError):
    """The file system does not implement append.

    Raised by the HDFS reimplementation: the paper notes the append call
    exists in the Hadoop ``FileSystem`` interface "but is not implemented
    in the latest Hadoop release available".
    """


class ConcurrentWriteError(FileSystemError):
    """A second writer attempted to open a file HDFS-style (single writer)."""


class FileClosedError(FileSystemError):
    """I/O on a closed stream."""


class ImmutableFileError(FileSystemError):
    """Write/append to a closed HDFS file (write-once-read-many model)."""


class LeaseExpiredError(FileSystemError):
    """The writer's lease on a file lapsed before the operation."""


# --------------------------------------------------------------------------
# Map/Reduce framework
# --------------------------------------------------------------------------

class MapReduceError(ReproError):
    """Base class for framework-level failures."""


class JobConfigurationError(MapReduceError):
    """A job was submitted with an invalid or incomplete configuration."""


class TaskFailedError(MapReduceError):
    """A task exhausted its retry budget."""


class JobFailedError(MapReduceError):
    """The job as a whole failed."""


# --------------------------------------------------------------------------
# simulation kernel
# --------------------------------------------------------------------------

class SimulationError(ReproError):
    """Base class for discrete-event-simulation kernel failures."""


class SimDeadlockError(SimulationError):
    """The event queue drained while processes were still waiting."""


class InterruptedProcessError(SimulationError):
    """A simulated process was interrupted by another process."""
