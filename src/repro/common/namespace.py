"""Hierarchical namespace tree.

Both centralized metadata services of the paper's storage systems — the
HDFS *namenode* and the BSFS *namespace manager* — maintain a file-system
namespace mapping paths to per-file metadata. This module is the shared,
thread-safe tree they are built on; the payload attached to each file is
system-specific (block list for HDFS, BLOB id + size for BSFS).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .errors import (
    DirectoryNotEmptyError,
    FileAlreadyExistsError,
    FileNotFoundInNamespaceError,
    IsADirectoryError_,
    NotADirectoryError_,
)
from .fs import normalize_path, parent_path, path_components


@dataclass(slots=True)
class Entry:
    """One namespace node: a directory (with children) or a file (with a
    system-specific payload)."""

    name: str
    is_directory: bool
    payload: Any = None
    children: Optional[Dict[str, "Entry"]] = None
    modification_time: float = field(default_factory=time.time)

    @classmethod
    def directory(cls, name: str) -> "Entry":
        return cls(name=name, is_directory=True, children={})

    @classmethod
    def file(cls, name: str, payload: Any) -> "Entry":
        return cls(name=name, is_directory=False, payload=payload)


class NamespaceTree:
    """Thread-safe path → entry tree with POSIX-ish operations.

    All mutating operations are atomic with respect to each other; the
    coarse single lock matches the centralized nature of the services it
    models (a namenode / namespace manager is one process).
    """

    def __init__(self) -> None:
        self._root = Entry.directory("")
        self._lock = threading.RLock()
        #: counts metadata operations, for the file-count-problem analysis
        self.op_counter: Dict[str, int] = {}

    def _count(self, op: str) -> None:
        self.op_counter[op] = self.op_counter.get(op, 0) + 1

    # -- traversal helpers ----------------------------------------------------

    def _walk(self, path: str) -> Entry:
        """Entry at *path*; raises when any component is missing/not a dir."""
        entry = self._root
        for comp in path_components(path):
            if not entry.is_directory:
                raise NotADirectoryError_(f"{comp!r} under a file in {path!r}")
            assert entry.children is not None
            try:
                entry = entry.children[comp]
            except KeyError:
                raise FileNotFoundInNamespaceError(path) from None
        return entry

    def _walk_parent(self, path: str) -> Tuple[Entry, str]:
        """(parent directory entry, final component) of *path*."""
        comps = path_components(path)
        if not comps:
            raise ValueError("operation on the root directory")
        parent = self._walk(parent_path(path))
        if not parent.is_directory:
            raise NotADirectoryError_(parent_path(path))
        return parent, comps[-1]

    # -- queries ------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        with self._lock:
            try:
                self._walk(path)
                return True
            except (FileNotFoundInNamespaceError, NotADirectoryError_):
                return False

    def lookup(self, path: str) -> Entry:
        """Entry at *path* (raises ``FileNotFoundInNamespaceError``)."""
        with self._lock:
            self._count("lookup")
            return self._walk(path)

    def lookup_file(self, path: str) -> Entry:
        """Entry at *path*, which must be a file."""
        entry = self.lookup(path)
        if entry.is_directory:
            raise IsADirectoryError_(path)
        return entry

    def list_dir(self, path: str) -> List[Tuple[str, Entry]]:
        """(child path, entry) pairs of a directory, sorted by name."""
        with self._lock:
            self._count("list")
            entry = self._walk(path)
            if not entry.is_directory:
                raise NotADirectoryError_(path)
            assert entry.children is not None
            base = normalize_path(path)
            prefix = base if base.endswith("/") else base + "/"
            return [
                (prefix + name, child)
                for name, child in sorted(entry.children.items())
            ]

    def count_entries(self) -> Tuple[int, int]:
        """(number of directories, number of files) in the whole tree."""

        def rec(entry: Entry) -> Tuple[int, int]:
            if not entry.is_directory:
                return 0, 1
            dirs, files = 1, 0
            assert entry.children is not None
            for child in entry.children.values():
                d, f = rec(child)
                dirs += d
                files += f
            return dirs, files

        with self._lock:
            dirs, files = rec(self._root)
            return dirs - 1, files  # don't count the root

    def iter_files(self, path: str = "/") -> Iterator[Tuple[str, Entry]]:
        """Depth-first (path, file entry) pairs under *path*."""
        with self._lock:
            start = self._walk(path)
            base = normalize_path(path)

            def rec(prefix: str, entry: Entry) -> Iterator[Tuple[str, Entry]]:
                if not entry.is_directory:
                    yield prefix, entry
                    return
                assert entry.children is not None
                for name, child in sorted(entry.children.items()):
                    child_path = prefix.rstrip("/") + "/" + name
                    yield from rec(child_path, child)

            yield from rec(base, start)

    # -- mutations -------------------------------------------------------------------

    def mkdirs(self, path: str) -> None:
        """Create a directory and missing ancestors; idempotent."""
        with self._lock:
            self._count("mkdirs")
            entry = self._root
            for comp in path_components(path):
                assert entry.children is not None
                child = entry.children.get(comp)
                if child is None:
                    child = Entry.directory(comp)
                    entry.children[comp] = child
                    entry.modification_time = time.time()
                elif not child.is_directory:
                    raise NotADirectoryError_(
                        f"{path!r}: component {comp!r} is a file"
                    )
                entry = child

    def create_file(
        self, path: str, payload: Any, overwrite: bool = False
    ) -> Entry:
        """Create a file entry (parents are created as needed)."""
        with self._lock:
            self._count("create")
            self.mkdirs(parent_path(path))
            parent, name = self._walk_parent(path)
            assert parent.children is not None
            existing = parent.children.get(name)
            if existing is not None:
                if existing.is_directory:
                    raise IsADirectoryError_(path)
                if not overwrite:
                    raise FileAlreadyExistsError(path)
            entry = Entry.file(name, payload)
            parent.children[name] = entry
            parent.modification_time = time.time()
            return entry

    def delete(self, path: str, recursive: bool = False) -> Optional[List[Any]]:
        """Delete a path; returns payloads of every removed file, or
        ``None`` when the path did not exist."""
        with self._lock:
            self._count("delete")
            try:
                parent, name = self._walk_parent(path)
            except (FileNotFoundInNamespaceError, NotADirectoryError_):
                # nothing at that path (including "under a file")
                return None
            assert parent.children is not None
            entry = parent.children.get(name)
            if entry is None:
                return None
            if entry.is_directory:
                assert entry.children is not None
                if entry.children and not recursive:
                    raise DirectoryNotEmptyError(path)
                payloads: List[Any] = [
                    e.payload for _p, e in self.iter_files(path)
                ]
            else:
                payloads = [entry.payload]
            del parent.children[name]
            parent.modification_time = time.time()
            return payloads

    def rename(self, src: str, dst: str) -> None:
        """Atomically move *src* to *dst* (exact destination path).

        The destination must not exist; its parent directories are
        created as needed — this is the namenode-side primitive behind
        Hadoop's commit-by-rename.
        """
        with self._lock:
            self._count("rename")
            src_norm, dst_norm = normalize_path(src), normalize_path(dst)
            if dst_norm == src_norm or dst_norm.startswith(src_norm + "/"):
                raise ValueError(f"cannot rename {src!r} into itself")
            src_parent, src_name = self._walk_parent(src_norm)
            assert src_parent.children is not None
            entry = src_parent.children.get(src_name)
            if entry is None:
                raise FileNotFoundInNamespaceError(src)
            self.mkdirs(parent_path(dst_norm))
            dst_parent, dst_name = self._walk_parent(dst_norm)
            assert dst_parent.children is not None
            if dst_name in dst_parent.children:
                raise FileAlreadyExistsError(dst)
            del src_parent.children[src_name]
            entry.name = dst_name
            entry.modification_time = time.time()
            dst_parent.children[dst_name] = entry
            src_parent.modification_time = time.time()
            dst_parent.modification_time = time.time()
