"""Abstract file-system interface, mirroring Hadoop's ``FileSystem`` class.

The Hadoop Map/Reduce framework "accesses the storage layer through an
interface that exposes the basic functions of a file system"; both our
HDFS reimplementation and BSFS implement this interface, so the framework
(and the applications) are storage-agnostic. As in the paper's Hadoop
release, ``append`` is *present in the interface* but a concrete file
system may refuse it (HDFS raises
:class:`~repro.common.errors.AppendNotSupportedError`).
"""

from __future__ import annotations

import abc
import posixpath
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence


def normalize_path(path: str) -> str:
    """Canonicalize a slash-separated absolute path.

    Accepts relative paths by anchoring them at ``/``; collapses ``.``,
    ``..`` and duplicate separators; the root is ``"/"``.
    """
    if not path:
        raise ValueError("empty path")
    if not path.startswith("/"):
        path = "/" + path
    norm = posixpath.normpath(path)
    # POSIX allows normpath("//") == "//"; collapse it for our purposes
    if norm.startswith("//"):
        norm = "/" + norm.lstrip("/")
    return norm


def parent_path(path: str) -> str:
    """Parent directory of a normalized path (parent of ``/`` is ``/``)."""
    return posixpath.dirname(normalize_path(path)) or "/"


def basename(path: str) -> str:
    """Final component of a normalized path (empty for ``/``)."""
    return posixpath.basename(normalize_path(path))


def path_components(path: str) -> List[str]:
    """The non-root components of a normalized path, in order."""
    norm = normalize_path(path)
    if norm == "/":
        return []
    return norm.strip("/").split("/")


def join_path(*parts: str) -> str:
    """Join path fragments and normalize the result."""
    return normalize_path(posixpath.join("/", *[p.lstrip("/") for p in parts]))


@dataclass(frozen=True, slots=True)
class FileStatus:
    """Metadata returned by :meth:`FileSystem.get_status` / ``list_dir``."""

    path: str
    is_directory: bool
    size: int
    replication: int = 1
    block_size: int = 0
    modification_time: float = 0.0


@dataclass(frozen=True, slots=True)
class BlockLocation:
    """Location of one block/page of a file — the layout information both
    HDFS and (via the new BlobSeer primitive) BSFS expose to the
    Map/Reduce scheduler for locality-aware task placement."""

    offset: int
    length: int
    hosts: tuple[str, ...]


class InputStream(abc.ABC):
    """A positioned, seekable read stream (Hadoop's ``FSDataInputStream``)."""

    @abc.abstractmethod
    def read(self, n: int) -> bytes:
        """Read up to *n* bytes from the current position; ``b""`` at EOF."""

    @abc.abstractmethod
    def pread(self, offset: int, n: int) -> bytes:
        """Positional read that does not move the stream cursor."""

    @abc.abstractmethod
    def seek(self, offset: int) -> None:
        """Move the cursor to an absolute offset."""

    @abc.abstractmethod
    def tell(self) -> int:
        """Current cursor position."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the stream; further I/O raises ``FileClosedError``."""

    def read_fully(self, offset: int, n: int) -> bytes:
        """Positional read that raises if fewer than *n* bytes exist."""
        data = self.pread(offset, n)
        if len(data) != n:
            from .errors import OutOfRangeReadError

            raise OutOfRangeReadError(
                f"wanted {n} bytes at {offset}, file ended after {len(data)}"
            )
        return data

    def __enter__(self) -> "InputStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def iter_lines(self) -> Iterator[bytes]:
        """Iterate newline-terminated records from the current position.

        The trailing record is yielded even without a final newline.
        """
        buf = b""
        while True:
            piece = self.read(64 * 1024)
            if not piece:
                break
            buf += piece
            while True:
                nl = buf.find(b"\n")
                if nl < 0:
                    break
                yield buf[: nl + 1]
                buf = buf[nl + 1 :]
        if buf:
            yield buf


class OutputStream(abc.ABC):
    """An append-only write stream (Hadoop's ``FSDataOutputStream``)."""

    @abc.abstractmethod
    def write(self, data: bytes) -> int:
        """Buffer/write *data* at the end of the stream; returns len(data)."""

    @abc.abstractmethod
    def flush(self) -> None:
        """Push buffered data to the storage service."""

    @abc.abstractmethod
    def close(self) -> None:
        """Flush and release; further I/O raises ``FileClosedError``."""

    @abc.abstractmethod
    def tell(self) -> int:
        """Bytes written through this stream so far."""

    def discard(self) -> None:
        """Abandon the stream WITHOUT publishing buffered data.

        Used by task abort paths so a failed attempt contributes nothing.
        Subclasses with client-side buffering override this; the default
        is a plain close.
        """
        self.close()

    def __enter__(self) -> "OutputStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class FileSystem(abc.ABC):
    """The storage contract the Map/Reduce framework programs against."""

    #: human-readable scheme, e.g. ``"hdfs"`` or ``"bsfs"``
    scheme: str = "abstract"

    # -- namespace ---------------------------------------------------------

    @abc.abstractmethod
    def create(self, path: str, overwrite: bool = False) -> OutputStream:
        """Create a new file and open it for writing (single writer)."""

    @abc.abstractmethod
    def open(self, path: str) -> InputStream:
        """Open an existing file for reading."""

    @abc.abstractmethod
    def append(self, path: str) -> OutputStream:
        """Open an existing file for appending.

        Part of the interface for every file system; HDFS raises
        ``AppendNotSupportedError`` exactly as the paper describes.
        """

    @abc.abstractmethod
    def mkdirs(self, path: str) -> None:
        """Create a directory and any missing ancestors (idempotent)."""

    @abc.abstractmethod
    def delete(self, path: str, recursive: bool = False) -> bool:
        """Delete a file or directory; returns False if absent."""

    @abc.abstractmethod
    def rename(self, src: str, dst: str) -> None:
        """Atomically move *src* to *dst* (the original Hadoop commit step)."""

    @abc.abstractmethod
    def exists(self, path: str) -> bool:
        """True when the path names a file or directory."""

    @abc.abstractmethod
    def get_status(self, path: str) -> FileStatus:
        """Status of one path; raises ``FileNotFoundInNamespaceError``."""

    @abc.abstractmethod
    def list_dir(self, path: str) -> List[FileStatus]:
        """Statuses of the children of a directory, sorted by path."""

    @abc.abstractmethod
    def get_block_locations(
        self, path: str, offset: int, length: int
    ) -> List[BlockLocation]:
        """Which hosts store each block of ``[offset, offset+length)``.

        This is what makes the jobtracker's scheduler data-location aware.
        """

    # -- conveniences shared by both implementations -----------------------

    def read_all(self, path: str) -> bytes:
        """Slurp an entire file."""
        with self.open(path) as stream:
            out = bytearray()
            while True:
                piece = stream.read(8 * 1024 * 1024)
                if not piece:
                    break
                out += piece
            return bytes(out)

    def write_all(self, path: str, data: bytes, overwrite: bool = False) -> None:
        """Create a file holding exactly *data*."""
        with self.create(path, overwrite=overwrite) as stream:
            stream.write(data)

    def file_size(self, path: str) -> int:
        """Size in bytes of a file path."""
        return self.get_status(path).size

    def list_files_recursive(self, path: str) -> List[FileStatus]:
        """Every *file* under a directory tree, depth-first, sorted."""
        out: List[FileStatus] = []
        for st in self.list_dir(path):
            if st.is_directory:
                out.extend(self.list_files_recursive(st.path))
            else:
                out.append(st)
        return sorted(out, key=lambda s: s.path)
