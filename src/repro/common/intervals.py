"""Byte-extent algebra.

BlobSeer's metadata layer, the BSFS client cache, and the HDFS block map
all reason about half-open byte ranges ``[offset, offset + size)``. This
module centralizes that arithmetic so each subsystem shares one audited
implementation of overlap, clipping, coverage, and hole detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple


@dataclass(frozen=True, slots=True, order=True)
class Extent:
    """A half-open byte range ``[offset, offset + size)`` with ``size > 0``.

    Extents are immutable and ordered by ``(offset, size)`` so sorted
    sequences of extents are cheap to sweep.
    """

    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError(f"negative offset: {self.offset}")
        if self.size <= 0:
            raise ValueError(f"non-positive size: {self.size}")

    @property
    def end(self) -> int:
        """One past the last byte covered."""
        return self.offset + self.size

    def overlaps(self, other: "Extent") -> bool:
        """True when the two ranges share at least one byte."""
        return self.offset < other.end and other.offset < self.end

    def contains(self, other: "Extent") -> bool:
        """True when *other* lies entirely inside this extent."""
        return self.offset <= other.offset and other.end <= self.end

    def contains_offset(self, offset: int) -> bool:
        """True when the single byte at *offset* lies inside this extent."""
        return self.offset <= offset < self.end

    def intersect(self, other: "Extent") -> "Extent | None":
        """The overlapping sub-range, or ``None`` when disjoint."""
        lo = max(self.offset, other.offset)
        hi = min(self.end, other.end)
        if lo >= hi:
            return None
        return Extent(lo, hi - lo)

    def shift(self, delta: int) -> "Extent":
        """This extent translated by *delta* bytes."""
        return Extent(self.offset + delta, self.size)

    def split_at(self, offset: int) -> Tuple["Extent", "Extent"]:
        """Split into ``[offset0, offset)`` and ``[offset, end)``.

        *offset* must fall strictly inside the extent.
        """
        if not (self.offset < offset < self.end):
            raise ValueError(f"split point {offset} outside interior of {self}")
        return Extent(self.offset, offset - self.offset), Extent(offset, self.end - offset)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.offset}, {self.end})"


def align_down(offset: int, granularity: int) -> int:
    """Largest multiple of *granularity* that is <= *offset*."""
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    return (offset // granularity) * granularity


def align_up(offset: int, granularity: int) -> int:
    """Smallest multiple of *granularity* that is >= *offset*."""
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    return -(-offset // granularity) * granularity


def split_to_pages(extent: Extent, page_size: int) -> List[Extent]:
    """Decompose an extent into page-aligned sub-extents.

    The first and last pieces may be partial pages; interior pieces are
    exactly *page_size* long. This is the striping rule both BlobSeer
    (pages) and HDFS (chunks) apply to client I/O.
    """
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    pieces: List[Extent] = []
    cursor = extent.offset
    while cursor < extent.end:
        boundary = align_down(cursor, page_size) + page_size
        upper = min(boundary, extent.end)
        pieces.append(Extent(cursor, upper - cursor))
        cursor = upper
    return pieces


def page_span(extent: Extent, page_size: int) -> range:
    """Indices of every page touched by *extent* (page i covers
    ``[i*page_size, (i+1)*page_size)``)."""
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    first = extent.offset // page_size
    last = (extent.end - 1) // page_size
    return range(first, last + 1)


def merge_extents(extents: Iterable[Extent]) -> List[Extent]:
    """Coalesce overlapping/adjacent extents into a minimal sorted list."""
    ordered = sorted(extents)
    merged: List[Extent] = []
    for ext in ordered:
        if merged and ext.offset <= merged[-1].end:
            prev = merged[-1]
            if ext.end > prev.end:
                merged[-1] = Extent(prev.offset, ext.end - prev.offset)
        else:
            merged.append(ext)
    return merged


def subtract(base: Extent, covers: Sequence[Extent]) -> List[Extent]:
    """The parts of *base* not covered by any extent in *covers*.

    Used to find the holes a cache miss must fetch and the regions a
    segment-tree query still needs to resolve from older versions.
    """
    holes: List[Extent] = []
    cursor = base.offset
    for cov in merge_extents(c for c in covers if c.overlaps(base)):
        clipped = cov.intersect(base)
        assert clipped is not None
        if clipped.offset > cursor:
            holes.append(Extent(cursor, clipped.offset - cursor))
        cursor = max(cursor, clipped.end)
    if cursor < base.end:
        holes.append(Extent(cursor, base.end - cursor))
    return holes


def covers_fully(base: Extent, covers: Sequence[Extent]) -> bool:
    """True when *covers* jointly blanket every byte of *base*."""
    return not subtract(base, covers)


def iter_chunks(total_size: int, chunk_size: int) -> Iterator[Extent]:
    """Yield consecutive chunk extents covering ``[0, total_size)``.

    The final chunk may be short. Yields nothing for ``total_size == 0``.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if total_size < 0:
        raise ValueError("total_size must be non-negative")
    offset = 0
    while offset < total_size:
        size = min(chunk_size, total_size - offset)
        yield Extent(offset, size)
        offset += size
