"""Shared substrate: units, errors, extent algebra, RNG streams, the
abstract file-system interface, CRC framing, and configuration."""

from .units import KiB, MiB, GiB, TiB, CHUNK_SIZE, RECORD_SIZE, format_bytes, parse_bytes
from .errors import ReproError
from .intervals import Extent
from .fs import FileSystem, FileStatus, BlockLocation, InputStream, OutputStream
from .config import (
    BlobSeerConfig,
    HDFSConfig,
    MapReduceConfig,
    ClusterConfig,
    ExperimentConfig,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "CHUNK_SIZE",
    "RECORD_SIZE",
    "format_bytes",
    "parse_bytes",
    "ReproError",
    "Extent",
    "FileSystem",
    "FileStatus",
    "BlockLocation",
    "InputStream",
    "OutputStream",
    "BlobSeerConfig",
    "HDFSConfig",
    "MapReduceConfig",
    "ClusterConfig",
    "ExperimentConfig",
]
