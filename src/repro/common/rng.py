"""Deterministic random-number streams.

Every stochastic choice in the reproduction (page placement, input data
generation, simulated service-time jitter) draws from a named substream
derived from one experiment seed, so a run is reproducible bit-for-bit
while distinct subsystems stay statistically independent.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np


def derive_seed(root_seed: int, *names: str | int) -> int:
    """Derive a 63-bit child seed from a root seed and a path of names.

    Uses SHA-256 over the canonical path, so ``derive_seed(7, "placement")``
    is stable across processes and Python versions (unlike ``hash``).
    """
    payload = repr((int(root_seed),) + tuple(names)).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


def substream(root_seed: int, *names: str | int) -> np.random.Generator:
    """A NumPy generator seeded from the named substream."""
    return np.random.default_rng(derive_seed(root_seed, *names))


def zipf_indices(
    rng: np.random.Generator, n_items: int, count: int, skew: float = 1.1
) -> np.ndarray:
    """Draw *count* item indices in ``[0, n_items)`` with Zipfian skew.

    Used by the Last.fm-like workload generator: a few artists/tracks are
    played vastly more often than the tail, which is what makes the join's
    output (all key-match combinations) much larger than its input.
    """
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    if skew <= 0:
        raise ValueError("skew must be positive")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return rng.choice(n_items, size=count, p=weights)


def choose_distinct(
    rng: np.random.Generator, population: Sequence, k: int
) -> list:
    """Sample *k* distinct elements (order random); errors if k > len."""
    if k > len(population):
        raise ValueError(f"cannot choose {k} distinct from {len(population)}")
    idx = rng.choice(len(population), size=k, replace=False)
    return [population[i] for i in idx]
