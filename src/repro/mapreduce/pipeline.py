"""Pipelined Map/Reduce — the paper's §5 proposal, implemented.

"Based on the use of BSFS as a storage layer, our improved Hadoop
framework can further be optimized for the case of Map/Reduce
applications that are executed in pipeline. For this type of
applications, the mappers and the reducers belonging to distinct stages
of the pipeline can concurrently be executed: the reducers generate the
data and append it to a file that is at the same time read and
processed by the mappers."

Two execution modes:

* :func:`run_pipeline` with ``overlap=False`` — classic staging: stage
  *k+1* starts only after stage *k* commits (works on any file system);
* ``overlap=True`` — stage *k+1*'s map phase *streams* records out of
  stage *k*'s shared output file while stage *k*'s reducers are still
  appending to it. This requires a storage layer with concurrent
  append + read-your-growth semantics, i.e. BSFS; the reader follows
  the file via the namespace size exactly as the paper's
  microbenchmarks (Figures 4/5) show is cheap.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..common.errors import JobFailedError, MapReduceError
from ..common.fs import FileSystem
from .io.committers import make_committer
from .io.records import TextRecordWriter
from .job import Context, Counters, JobConf, Partitioner, default_partitioner
from .runner import MapReduceCluster
from .shuffle import MapOutputStore, merge_sorted_partitions, partition_and_sort

#: streaming feeder batch size (records per mini-split)
_BATCH_RECORDS = 2000
#: first feeder sleep when the upstream file has not grown; doubles on
#: every idle poll up to :data:`_TAIL_MAX_INTERVAL`, resets on data
_TAIL_INTERVAL = 0.0005
#: backoff cap — keeps the tail latency bounded near stage handoff
_TAIL_MAX_INTERVAL = 0.016


@dataclass(slots=True)
class PipelineStage:
    """One stage of the pipeline (a Map/Reduce job minus its input)."""

    name: str
    map_fn: Callable[[Any, Any, Context], None]
    reduce_fn: Callable[[Any, Any, Context], None]
    n_reducers: int = 1
    combiner_fn: Optional[Callable] = None
    partitioner: Partitioner = default_partitioner
    #: input format of the *first* stage only; later stages always read
    #: the previous stage's text output as (offset, line) records
    input_format: str = "text"


@dataclass(slots=True)
class PipelineResult:
    """What a pipeline run returns."""

    stage_outputs: List[List[str]]
    elapsed_seconds: float
    overlapped: bool
    counters: List[dict] = field(default_factory=list)


def _stage_conf(
    stage: PipelineStage,
    input_paths: List[str],
    output_dir: str,
    output_mode: str,
    input_format: str,
) -> JobConf:
    return JobConf(
        name=stage.name,
        input_paths=input_paths,
        output_dir=output_dir,
        map_fn=stage.map_fn,
        reduce_fn=stage.reduce_fn,
        combiner_fn=stage.combiner_fn,
        partitioner=stage.partitioner,
        n_reducers=stage.n_reducers,
        input_format=input_format,
        output_mode=output_mode,
    )


def run_pipeline(
    cluster: MapReduceCluster,
    stages: Sequence[PipelineStage],
    input_paths: List[str],
    base_dir: str,
    output_mode: str = "shared",
    overlap: bool = False,
) -> PipelineResult:
    """Run *stages* in sequence over *input_paths*.

    With ``overlap=True`` every stage after the first streams from its
    predecessor's shared output file while the predecessor is still
    running; ``output_mode`` must then be ``"shared"``.
    """
    if not stages:
        raise MapReduceError("empty pipeline")
    if overlap and output_mode != "shared":
        raise MapReduceError("overlapped pipelines require shared output files")
    start = time.perf_counter()
    if not overlap:
        outputs: List[List[str]] = []
        counters: List[dict] = []
        paths = list(input_paths)
        for i, stage in enumerate(stages):
            conf = _stage_conf(
                stage,
                paths,
                f"{base_dir.rstrip('/')}/stage-{i:02d}",
                output_mode,
                stage.input_format if i == 0 else "text",
            )
            result = cluster.run_job(conf)
            outputs.append(result.output_files)
            counters.append(result.counters)
            paths = result.output_files
        return PipelineResult(
            stage_outputs=outputs,
            elapsed_seconds=time.perf_counter() - start,
            overlapped=False,
            counters=counters,
        )

    # ---- overlapped execution -------------------------------------------------
    outputs = [[] for _ in stages]
    counters = [{} for _ in stages]
    errors: List[BaseException] = []
    done_flags = [threading.Event() for _ in stages]

    def run_first() -> None:
        try:
            conf = _stage_conf(
                stages[0],
                list(input_paths),
                f"{base_dir.rstrip('/')}/stage-00",
                "shared",
                stages[0].input_format,
            )
            result = cluster.run_job(conf)
            outputs[0] = result.output_files
            counters[0] = result.counters
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors.append(exc)
        finally:
            done_flags[0].set()

    threads = [threading.Thread(target=run_first, name="stage-00", daemon=True)]
    for i in range(1, len(stages)):

        def run_streaming(i: int = i) -> None:
            try:
                upstream = f"{base_dir.rstrip('/')}/stage-{i - 1:02d}/part-shared"
                out = _run_streaming_stage(
                    cluster.fs,
                    stages[i],
                    upstream,
                    f"{base_dir.rstrip('/')}/stage-{i:02d}",
                    upstream_done=done_flags[i - 1],
                    map_workers=max(
                        2, cluster.config.map_slots * len(cluster.tasktrackers) // 2
                    ),
                )
                outputs[i], counters[i] = out
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                done_flags[i].set()

        threads.append(
            threading.Thread(target=run_streaming, name=f"stage-{i:02d}", daemon=True)
        )
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise JobFailedError(f"pipeline failed: {errors[0]!r}") from errors[0]
    return PipelineResult(
        stage_outputs=outputs,
        elapsed_seconds=time.perf_counter() - start,
        overlapped=True,
        counters=counters,
    )


def _run_streaming_stage(
    fs: FileSystem,
    stage: PipelineStage,
    upstream_path: str,
    output_dir: str,
    upstream_done: threading.Event,
    map_workers: int,
) -> Tuple[List[str], dict]:
    """Stage *k+1*: map workers consume the growing upstream file, then a
    standard shuffle/reduce produces this stage's shared output."""
    job_counters = Counters()
    store = MapOutputStore()
    batches: "queue.Queue" = queue.Queue(maxsize=64)
    feeder_error: List[BaseException] = []

    def feeder() -> None:
        """Tail the upstream shared file, batching complete lines.

        Idle polls sleep with capped exponential backoff (reset whenever
        bytes arrive) instead of a fixed interval, and every poll bumps
        the ``tail_polls`` job counter so pipeline stalls show up in the
        result's counters.
        """
        backoff = _TAIL_INTERVAL

        def tail_sleep() -> None:
            nonlocal backoff
            job_counters.increment("tail_polls")
            time.sleep(backoff)
            backoff = min(backoff * 2, _TAIL_MAX_INTERVAL)

        try:
            while not fs.exists(upstream_path):
                if upstream_done.is_set():
                    # upstream failed before creating its output
                    raise JobFailedError(f"{upstream_path} never appeared")
                tail_sleep()
            stream = fs.open(upstream_path)
            pos = 0
            pending = b""
            batch: List[bytes] = []
            batch_id = 0
            while True:
                piece = stream.pread(pos, 1 << 20)
                if piece:
                    backoff = _TAIL_INTERVAL
                    pos += len(piece)
                    pending += piece
                    *lines, pending = pending.split(b"\n")
                    for line in lines:
                        batch.append(line)
                        if len(batch) >= _BATCH_RECORDS:
                            batches.put((batch_id, batch))
                            batch_id += 1
                            batch = []
                    continue
                if upstream_done.is_set():
                    # one final check: the size may have grown after the
                    # last read but before the flag was set
                    piece = stream.pread(pos, 1 << 20)
                    if piece:
                        backoff = _TAIL_INTERVAL
                        pos += len(piece)
                        pending += piece
                        *lines, pending = pending.split(b"\n")
                        batch.extend(lines)
                        continue
                    break
                tail_sleep()
            if pending:
                batch.append(pending)
            if batch:
                batches.put((batch_id, batch))
            stream.close()
        except BaseException as exc:  # noqa: BLE001
            feeder_error.append(exc)
        finally:
            for _ in range(map_workers):
                batches.put(None)

    def map_worker() -> None:
        ctx = Context(job_counters)
        while True:
            item = batches.get()
            if item is None:
                return
            batch_id, lines = item
            pairs: List[Tuple[Any, Any]] = []
            ctx._bind(lambda k, v: pairs.append((k, v)))
            for offset, line in enumerate(lines):
                stage.map_fn(offset, line, ctx)
            job_counters.increment("map_input_records", len(lines))
            job_counters.increment("map_output_records", len(pairs))
            partitions = partition_and_sort(
                pairs,
                stage.partitioner,
                stage.n_reducers,
                stage.combiner_fn,
                job_counters,
            )
            for p, bucket in partitions.items():
                store.put(batch_id, p, bucket)

    feeder_thread = threading.Thread(target=feeder, name="feeder", daemon=True)
    workers = [
        threading.Thread(target=map_worker, name=f"smap-{i}", daemon=True)
        for i in range(map_workers)
    ]
    feeder_thread.start()
    for w in workers:
        w.start()
    feeder_thread.join()
    for w in workers:
        w.join()
    if feeder_error:
        raise JobFailedError(
            f"streaming feeder failed: {feeder_error[0]!r}"
        ) from feeder_error[0]

    # standard reduce over the streamed map output
    committer = make_committer("shared", fs, output_dir)
    committer.setup_job()
    batch_ids = store.map_ids()

    def reduce_worker(partition: int) -> None:
        parts = [store.get(mid, partition) for mid in batch_ids]
        stream = committer.open_task_output(partition, 1)
        writer = TextRecordWriter(stream)
        ctx = Context(job_counters)
        ctx._bind(writer.write)
        for key, values in merge_sorted_partitions(parts):
            stage.reduce_fn(key, values, ctx)
        writer.close()
        committer.commit_task(partition, 1)
        job_counters.increment("reduce_output_records", writer.records)

    reducers = [
        threading.Thread(target=reduce_worker, args=(p,), name=f"sred-{p}")
        for p in range(stage.n_reducers)
    ]
    for r in reducers:
        r.start()
    for r in reducers:
        r.join()
    committer.cleanup_job()
    return committer.output_files(), job_counters.snapshot()
