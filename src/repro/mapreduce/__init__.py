"""Hadoop-style Map/Reduce framework with both output paths of the paper:
the original file-per-reducer commit-by-rename, and the modified
shared-file concurrent-append commit enabled by BSFS."""

from .job import (
    Context,
    Counters,
    JobConf,
    JobResult,
    default_partitioner,
)
from .task import MapTaskInfo, ReduceTaskInfo, TaskState
from .jobtracker import JobInProgress
from .tasktracker import TaskTracker, execute_map_task, execute_reduce_task
from .runner import MapReduceCluster
from .shuffle import (
    MapOutputStore,
    merge_sorted_partitions,
    partition_and_sort,
)
from .pipeline import PipelineResult, PipelineStage, run_pipeline

__all__ = [
    "Context",
    "Counters",
    "JobConf",
    "JobResult",
    "default_partitioner",
    "MapTaskInfo",
    "ReduceTaskInfo",
    "TaskState",
    "JobInProgress",
    "TaskTracker",
    "execute_map_task",
    "execute_reduce_task",
    "MapReduceCluster",
    "MapOutputStore",
    "merge_sorted_partitions",
    "partition_and_sort",
    "PipelineResult",
    "PipelineStage",
    "run_pipeline",
]
