"""Record writers: how reduce output becomes file bytes.

``TextRecordWriter`` is Hadoop's ``TextOutputFormat``: one
``key<TAB>value<NEWLINE>`` line per emitted pair. Keys/values may be
``bytes``, ``str`` or anything ``str()``-able.
"""

from __future__ import annotations

from typing import Any

from ...common.fs import OutputStream


def to_bytes(obj: Any) -> bytes:
    """Canonical byte form of a key or value."""
    if isinstance(obj, bytes):
        return obj
    if isinstance(obj, str):
        return obj.encode()
    return str(obj).encode()


class TextRecordWriter:
    """``key \\t value \\n`` writer over any output stream."""

    def __init__(self, stream: OutputStream) -> None:
        self.stream = stream
        #: lifetime counters
        self.records = 0
        self.bytes_written = 0

    def write(self, key: Any, value: Any) -> None:
        line = to_bytes(key) + b"\t" + to_bytes(value) + b"\n"
        self.stream.write(line)
        self.records += 1
        self.bytes_written += len(line)

    def close(self) -> None:
        self.stream.close()
