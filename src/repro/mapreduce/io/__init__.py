"""Map/Reduce I/O: input splitting/reading, output writing, committers."""

from .input import (
    FileSplit,
    KeyValueLineRecordReader,
    LineRecordReader,
    compute_splits,
    make_record_reader,
)
from .records import TextRecordWriter, to_bytes
from .committers import (
    OutputCommitter,
    SeparateFileCommitter,
    SharedAppendCommitter,
    make_committer,
)

__all__ = [
    "FileSplit",
    "KeyValueLineRecordReader",
    "LineRecordReader",
    "compute_splits",
    "make_record_reader",
    "TextRecordWriter",
    "to_bytes",
    "OutputCommitter",
    "SeparateFileCommitter",
    "SharedAppendCommitter",
    "make_committer",
]
