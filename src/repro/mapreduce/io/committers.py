"""Output committers — where the paper modifies Hadoop.

* :class:`SeparateFileCommitter` is the original framework (Figure 1):
  "when a tasktracker executes the 'reduce' function …, the output is
  written to a temporary file; each temporary file has a unique name …
  When the 'reduce' phase is completed, each reducer renames the
  temporary file to the final output directory". The job ends with one
  ``part-NNNNN`` file per reducer.

* :class:`SharedAppendCommitter` is the modified framework (Figure 2):
  "We modified the reducer code to append the output it produces to a
  single file, instead of writing it to a distinct file". Every reducer
  opens an append stream on the same shared file; the storage layer must
  therefore support concurrent appends (BSFS does; HDFS raises
  ``AppendNotSupportedError``, surfacing exactly why the paper needs
  BlobSeer).
"""

from __future__ import annotations

import abc
import threading
from typing import Dict, List, Tuple

from ...common.errors import FileClosedError
from ...common.fs import FileSystem, OutputStream, join_path


class OutputCommitter(abc.ABC):
    """Lifecycle hooks around each reducer's output."""

    def __init__(self, fs: FileSystem, output_dir: str) -> None:
        self.fs = fs
        self.output_dir = output_dir

    @abc.abstractmethod
    def setup_job(self) -> None:
        """Prepare the output directory before any reducer runs."""

    @abc.abstractmethod
    def open_task_output(self, partition: int, attempt: int) -> OutputStream:
        """The stream reducer *partition* (attempt *attempt*) writes to."""

    @abc.abstractmethod
    def commit_task(self, partition: int, attempt: int) -> str:
        """Make the task's output final; returns the committed path."""

    @abc.abstractmethod
    def abort_task(self, partition: int, attempt: int) -> None:
        """Discard a failed attempt's partial output."""

    @abc.abstractmethod
    def cleanup_job(self) -> None:
        """Remove scratch state after the last commit."""

    @abc.abstractmethod
    def output_files(self) -> List[str]:
        """The committed output paths, sorted."""


class SeparateFileCommitter(OutputCommitter):
    """Original Hadoop: temp file per attempt, commit-by-rename."""

    TEMP_DIR = "_temporary"

    def setup_job(self) -> None:
        self.fs.mkdirs(self.output_dir)
        self.fs.mkdirs(self._temp_dir())

    def _temp_dir(self) -> str:
        return join_path(self.output_dir, self.TEMP_DIR)

    def _temp_path(self, partition: int, attempt: int) -> str:
        # unique name per attempt, as in Hadoop's attempt directories
        return join_path(
            self._temp_dir(), f"attempt_{partition:05d}_{attempt}", "part"
        )

    def _final_path(self, partition: int) -> str:
        return join_path(self.output_dir, f"part-{partition:05d}")

    def open_task_output(self, partition: int, attempt: int) -> OutputStream:
        return self.fs.create(self._temp_path(partition, attempt), overwrite=True)

    def commit_task(self, partition: int, attempt: int) -> str:
        final = self._final_path(partition)
        self.fs.rename(self._temp_path(partition, attempt), final)
        return final

    def abort_task(self, partition: int, attempt: int) -> None:
        self.fs.delete(
            join_path(self._temp_dir(), f"attempt_{partition:05d}_{attempt}"),
            recursive=True,
        )

    def cleanup_job(self) -> None:
        self.fs.delete(self._temp_dir(), recursive=True)

    def output_files(self) -> List[str]:
        return sorted(
            s.path
            for s in self.fs.list_dir(self.output_dir)
            if not s.is_directory and s.path.rsplit("/", 1)[-1].startswith("part-")
        )


class _BufferedTaskOutput(OutputStream):
    """Buffer-until-close wrapper enforcing attempt atomicity.

    An underlying append stream may ship full pages mid-stream (the BSFS
    write-behind buffer holds only up to ``page_size``), which would let
    a failed attempt leak a prefix into the shared file. This wrapper
    holds the attempt's *entire* output and only opens the append stream
    at close, so an attempt contributes either everything or nothing.
    """

    def __init__(self, committer: "SharedAppendCommitter", key: Tuple[int, int]):
        self._committer = committer
        self._key = key
        self._chunks: List[bytes] = []
        self._written = 0
        self._closed = False
        self._lock = threading.Lock()

    @property
    def closed(self) -> bool:
        return self._closed

    def write(self, data: bytes) -> int:
        with self._lock:
            if self._closed:
                raise FileClosedError(
                    f"attempt {self._key} output already closed"
                )
            self._chunks.append(bytes(data))
            self._written += len(data)
            return len(data)

    def flush(self) -> None:
        # intentionally a no-op: emitting bytes before close would break
        # the abort-containment invariant this wrapper exists to enforce
        if self._closed:
            raise FileClosedError(f"attempt {self._key} output already closed")

    def tell(self) -> int:
        with self._lock:
            return self._written

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            data = b"".join(self._chunks)
            self._chunks.clear()
        if data:
            stream = self._committer.fs.append(self._committer.shared_path())
            try:
                stream.write(data)
            finally:
                stream.close()

    def discard(self) -> None:
        with self._lock:
            self._closed = True
            self._chunks.clear()


class SharedAppendCommitter(OutputCommitter):
    """Modified Hadoop: all reducers append to one shared output file.

    The shared file is created once at job setup; each reducer's stream
    is an append stream on it. Commit is a no-op — the data is already
    in its final place the moment the appends complete, which is exactly
    the simplification the paper highlights ("at the end of the
    computation data is already available in a single logical file").

    Failure containment: each attempt's stream buffers its whole output
    and emits one atomic append at close (:class:`_BufferedTaskOutput`);
    :meth:`abort_task` before that point discards the buffer, so a failed
    or re-tried attempt contributes nothing until it closes successfully.
    """

    SHARED_NAME = "part-shared"

    def __init__(self, fs: FileSystem, output_dir: str) -> None:
        super().__init__(fs, output_dir)
        self._lock = threading.Lock()
        self._open: Dict[Tuple[int, int], _BufferedTaskOutput] = {}

    def setup_job(self) -> None:
        self.fs.mkdirs(self.output_dir)
        # create the (empty) shared file all reducers will append to
        self.fs.create(self.shared_path(), overwrite=True).close()

    def shared_path(self) -> str:
        """Path of the single shared output file."""
        return join_path(self.output_dir, self.SHARED_NAME)

    def open_task_output(self, partition: int, attempt: int) -> OutputStream:
        # surface missing append support at open time, not at close
        # (HDFS raises AppendNotSupportedError here — the paper's point)
        self.fs.append(self.shared_path()).discard()
        stream = _BufferedTaskOutput(self, (partition, attempt))
        with self._lock:
            self._open[(partition, attempt)] = stream
        return stream

    def commit_task(self, partition: int, attempt: int) -> str:
        with self._lock:
            stream = self._open.pop((partition, attempt), None)
        if stream is not None and not stream.closed:
            raise ValueError(
                f"commit of attempt ({partition}, {attempt}) before its "
                f"output stream was closed"
            )
        return self.shared_path()

    def abort_task(self, partition: int, attempt: int) -> None:
        with self._lock:
            stream = self._open.pop((partition, attempt), None)
        if stream is not None:
            stream.discard()

    def cleanup_job(self) -> None:
        return

    def output_files(self) -> List[str]:
        return [self.shared_path()]


def make_committer(mode: str, fs: FileSystem, output_dir: str) -> OutputCommitter:
    """Committer factory keyed by :attr:`JobConf.output_mode`."""
    if mode == "separate":
        return SeparateFileCommitter(fs, output_dir)
    if mode == "shared":
        return SharedAppendCommitter(fs, output_dir)
    raise ValueError(f"unknown output mode {mode!r}")
