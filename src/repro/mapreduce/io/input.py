"""Input formats: splitting files and reading records from splits.

Faithful to Hadoop's ``TextInputFormat`` semantics:

* splits are block-sized byte ranges annotated with the hosts storing
  them (from :meth:`~repro.common.fs.FileSystem.get_block_locations`),
  which is what the locality-aware scheduler consumes;
* a record (line) belongs to the split in which it *starts*: a reader
  skips the first partial line (unless at offset 0) and reads past its
  split's end to finish the last line it started.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ...common.fs import FileSystem, InputStream

#: readers scan in pieces of this size
_IO_CHUNK = 256 * 1024


@dataclass(frozen=True, slots=True)
class FileSplit:
    """One map task's slice of one input file."""

    path: str
    offset: int
    length: int
    hosts: Tuple[str, ...] = ()

    @property
    def end(self) -> int:
        return self.offset + self.length


def compute_splits(
    fs: FileSystem,
    paths: List[str],
    split_size: Optional[int] = None,
) -> List[FileSplit]:
    """Block-aligned splits for every input file, with storage hosts.

    *split_size* defaults to each file's block size (so "the Hadoop
    framework starts a mapper to process each input chunk").
    """
    splits: List[FileSplit] = []
    for path in paths:
        status = fs.get_status(path)
        if status.is_directory:
            children = [s.path for s in fs.list_dir(path) if not s.is_directory]
            splits.extend(compute_splits(fs, children, split_size))
            continue
        if status.size == 0:
            continue
        size = split_size or status.block_size or status.size
        if size <= 0:
            size = status.size
        locations = fs.get_block_locations(path, 0, status.size)
        offset = 0
        while offset < status.size:
            length = min(size, status.size - offset)
            hosts = _hosts_for_range(locations, offset, length)
            splits.append(FileSplit(path, offset, length, hosts))
            offset += length
    return splits


def _hosts_for_range(locations, offset: int, length: int) -> Tuple[str, ...]:
    """Hosts storing the block(s) overlapping the split, majority first."""
    tally: dict[str, int] = {}
    for loc in locations:
        if loc.offset + loc.length > offset and loc.offset < offset + length:
            overlap = min(loc.offset + loc.length, offset + length) - max(
                loc.offset, offset
            )
            for host in loc.hosts:
                tally[host] = tally.get(host, 0) + overlap
    ordered = sorted(tally.items(), key=lambda kv: (-kv[1], kv[0]))
    return tuple(host for host, _n in ordered)


class LineRecordReader:
    """Iterate the lines belonging to one split (Hadoop line semantics).

    Yields ``(byte_offset, line_without_newline)`` pairs — the key/value
    contract of ``TextInputFormat``.
    """

    def __init__(self, fs: FileSystem, split: FileSplit) -> None:
        self.fs = fs
        self.split = split

    def __iter__(self) -> Iterator[Tuple[int, bytes]]:
        split = self.split
        with self.fs.open(split.path) as stream:
            pos = split.offset
            if split.offset > 0:
                # skip the partial first line: it belongs to the previous split
                skipped = _scan_past_newline(stream, split.offset)
                if skipped is None:
                    return  # no newline until EOF: nothing starts here
                pos = skipped
            # Hadoop's boundary rule: keep reading while the next line
            # STARTS at or before the split end (pos <= end). A line
            # starting exactly at the boundary therefore belongs to the
            # earlier split — matching the skip rule above, so no line is
            # lost or read twice.
            while pos <= split.end:
                line_start = pos
                line, pos = _read_line(stream, pos)
                if line is None:
                    return  # EOF
                yield line_start, line


def _scan_past_newline(stream: InputStream, offset: int) -> Optional[int]:
    """Position of the first byte after the first ``\\n`` at/after *offset*;
    None when the file ends first."""
    pos = offset
    while True:
        piece = stream.pread(pos, _IO_CHUNK)
        if not piece:
            return None
        nl = piece.find(b"\n")
        if nl >= 0:
            return pos + nl + 1
        pos += len(piece)


def _read_line(
    stream: InputStream, offset: int
) -> Tuple[Optional[bytes], int]:
    """The line starting at *offset* (without its newline) and the offset
    just past it. ``(None, offset)`` at EOF; a trailing line without a
    final newline is returned as-is."""
    parts: List[bytes] = []
    pos = offset
    while True:
        piece = stream.pread(pos, _IO_CHUNK)
        if not piece:
            if parts:
                line = b"".join(parts)
                return line, pos
            return None, pos
        nl = piece.find(b"\n")
        if nl >= 0:
            parts.append(piece[:nl])
            return b"".join(parts), pos + nl + 1
        parts.append(piece)
        pos += len(piece)


class KeyValueLineRecordReader:
    """Tab-separated key/value lines (Hadoop's ``KeyValueTextInputFormat``).

    Yields ``(key, value)`` byte pairs; a line without a tab yields the
    whole line as key and ``b""`` as value.
    """

    def __init__(self, fs: FileSystem, split: FileSplit) -> None:
        self._inner = LineRecordReader(fs, split)

    def __iter__(self) -> Iterator[Tuple[bytes, bytes]]:
        for _offset, line in self._inner:
            tab = line.find(b"\t")
            if tab < 0:
                yield line, b""
            else:
                yield line[:tab], line[tab + 1 :]


def make_record_reader(
    fs: FileSystem, split: FileSplit, input_format: str
):
    """Reader factory keyed by :attr:`JobConf.input_format`."""
    if input_format == "text":
        return LineRecordReader(fs, split)
    if input_format == "kv":
        return KeyValueLineRecordReader(fs, split)
    raise ValueError(f"unknown input format {input_format!r}")
