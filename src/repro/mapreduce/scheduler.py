"""Task scheduling policy.

The paper's framework: the storage layer "provides the information about
the location of each chunk, and the jobtracker will use it to execute
tasks on datanodes in such way as to achieve load balancing across all
nodes" — i.e. prefer a map task whose split is stored on the requesting
tasktracker's machine, fall back to any pending task. Reduce tasks have
no input locality (their input is the shuffled map output) and are
handed out FIFO.
"""

from __future__ import annotations

from typing import List, Optional

from .task import MapTaskInfo, ReduceTaskInfo, TaskState


def pick_map_task(
    tasks: List[MapTaskInfo], host: str, locality_aware: bool
) -> Optional[MapTaskInfo]:
    """The next map task for a tasktracker on *host*.

    With locality on, a task whose split is stored on *host* wins;
    otherwise (or when none is local) the first pending task is chosen.
    Returns None when nothing is pending.
    """
    fallback: Optional[MapTaskInfo] = None
    for task in tasks:
        if task.state is not TaskState.PENDING:
            continue
        if locality_aware and host in task.split.hosts:
            return task
        if fallback is None:
            fallback = task
    return fallback


def pick_reduce_task(tasks: List[ReduceTaskInfo]) -> Optional[ReduceTaskInfo]:
    """The next pending reduce task (FIFO)."""
    for task in tasks:
        if task.state is TaskState.PENDING:
            return task
    return None
