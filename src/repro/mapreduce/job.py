"""Job model: configuration, counters, results.

A job is configured Hadoop-style: input paths, an output directory, a
``map(key, value, context)`` function, a ``reduce(key, values,
context)`` function, optional combiner and partitioner, and the number
of reduce tasks. The paper's two framework variants are selected by
``output_mode``:

* ``"separate"`` — the original Hadoop behaviour (Figure 1): each
  reducer writes a distinct ``part-NNNNN`` file via a temporary path
  renamed at commit;
* ``"shared"`` — the modified framework (Figure 2): every reducer
  appends its output to one shared file.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..common.errors import JobConfigurationError
from ..common.fs import FileSystem

#: map signature: (key, value, MapContext) -> None
MapFunction = Callable[[Any, Any, "Context"], None]
#: reduce signature: (key, values-iterator, ReduceContext) -> None
ReduceFunction = Callable[[Any, Iterable[Any], "Context"], None]
#: partitioner: (key, n_partitions) -> partition index
Partitioner = Callable[[Any, int], int]


def default_partitioner(key: Any, n_partitions: int) -> int:
    """Hash partitioning, Hadoop's default."""
    return hash(key) % n_partitions


class Context:
    """What map/reduce functions see: an ``emit``/``write`` sink, shared
    job counters, and (in map tasks) the input split being processed —
    the hook tagged-join applications use to tell their sources apart."""

    def __init__(self, counters: "Counters") -> None:
        self.counters = counters
        self._sink: Optional[Callable[[Any, Any], None]] = None
        #: the FileSplit a map task is reading (None in reduce tasks)
        self.split: Any = None

    def _bind(self, sink: Callable[[Any, Any], None]) -> None:
        self._sink = sink

    def emit(self, key: Any, value: Any) -> None:
        """Emit one output pair."""
        assert self._sink is not None, "context not bound to a task"
        self._sink(key, value)

    # Hadoop spells it write(); keep both
    write = emit


class Counters:
    """Thread-safe named counters, aggregated job-wide."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}
        self._lock = threading.Lock()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._values.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._values)


@dataclass(slots=True)
class JobConf:
    """Everything needed to run one Map/Reduce job."""

    name: str
    input_paths: List[str]
    output_dir: str
    map_fn: MapFunction
    reduce_fn: ReduceFunction
    n_reducers: int = 1
    combiner_fn: Optional[ReduceFunction] = None
    partitioner: Partitioner = default_partitioner
    #: "separate" (original Hadoop, Fig. 1) or "shared" (modified, Fig. 2)
    output_mode: str = "separate"
    #: input format name: "text" (offset, line) or "kv" (tab-separated)
    input_format: str = "text"
    #: desired split size; None = the storage layer's block size
    split_size: Optional[int] = None

    def validate(self, fs: FileSystem) -> None:
        if not self.input_paths:
            raise JobConfigurationError("no input paths")
        if self.n_reducers < 1:
            raise JobConfigurationError("n_reducers must be >= 1")
        if self.output_mode not in ("separate", "shared"):
            raise JobConfigurationError(
                f"unknown output_mode {self.output_mode!r}"
            )
        if self.input_format not in ("text", "kv"):
            raise JobConfigurationError(
                f"unknown input_format {self.input_format!r}"
            )
        for path in self.input_paths:
            if not fs.exists(path):
                raise JobConfigurationError(f"input path missing: {path}")
        if fs.exists(self.output_dir):
            raise JobConfigurationError(
                f"output directory already exists: {self.output_dir}"
            )


@dataclass(slots=True)
class JobResult:
    """What :meth:`~repro.mapreduce.runner.MapReduceCluster.run_job` returns."""

    job_name: str
    output_files: List[str]
    counters: Dict[str, int]
    n_map_tasks: int
    n_reduce_tasks: int
    elapsed_seconds: float

    @property
    def output_file_count(self) -> int:
        """The file-count-problem metric of the paper's Figure 1 vs 2."""
        return len(self.output_files)
