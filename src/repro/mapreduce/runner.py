"""The cluster-level entry point: submit a job, run it to completion.

:class:`MapReduceCluster` stands in for "a single master jobtracker, and
multiple slave tasktrackers, one per node": it owns the tasktrackers,
drives a :class:`~repro.mapreduce.jobtracker.JobInProgress` with real
threads, and returns a :class:`~repro.mapreduce.job.JobResult`.

The tasktrackers' hosts should be the same machine names the storage
layer reports in its block locations (co-deployment of tasktrackers
with datanodes/providers, as in the paper's setup) — that is what makes
locality-aware scheduling meaningful.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..common.config import MapReduceConfig
from ..common.fs import FileSystem
from ..obs import NULL_OBS, Observability
from .job import JobConf, JobResult
from .jobtracker import JobInProgress
from .tasktracker import TaskTracker


class MapReduceCluster:
    """A jobtracker plus its tasktrackers over one file system."""

    def __init__(
        self,
        fs: FileSystem,
        hosts: Optional[Sequence[str]] = None,
        n_tasktrackers: int = 4,
        config: Optional[MapReduceConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.fs = fs
        self.obs = obs or NULL_OBS
        self.config = config or MapReduceConfig()
        self.config.validate()
        if hosts is None:
            hosts = [f"tracker-{i:03d}" for i in range(n_tasktrackers)]
        if not hosts:
            raise ValueError("need at least one tasktracker host")
        self.tasktrackers = [
            TaskTracker(
                host,
                fs,
                map_slots=self.config.map_slots,
                reduce_slots=self.config.reduce_slots,
            )
            for host in hosts
        ]
        #: the most recent job's in-progress state (introspection/tests)
        self.last_job: Optional[JobInProgress] = None

    def run_job(self, conf: JobConf) -> JobResult:
        """Run *conf* to completion; raises
        :class:`~repro.common.errors.JobFailedError` when a task exhausts
        its retries."""
        if self.config.shared_output_file and conf.output_mode == "separate":
            # cluster-wide "modified framework" switch
            conf.output_mode = "shared"
        start = time.perf_counter()
        sp = self.obs.tracer.start(
            "mr.job", cat="mapreduce", track="jobtracker", job=conf.name
        )
        jip = JobInProgress(conf, self.fs, self.config, obs=self.obs)
        self.last_job = jip
        threads: List = []
        for tracker in self.tasktrackers:
            threads.extend(tracker.run_job(jip))
        for t in threads:
            t.join()
        output_files = jip.finish()
        sp.finish(
            n_maps=len(jip.map_tasks),
            n_reduces=len(jip.reduce_tasks),
            locality=jip.locality_fraction(),
        )
        self.obs.registry.gauge("mr.locality_fraction").set(
            jip.locality_fraction()
        )
        elapsed = time.perf_counter() - start
        return JobResult(
            job_name=conf.name,
            output_files=output_files,
            counters=jip.counters.snapshot(),
            n_map_tasks=len(jip.map_tasks),
            n_reduce_tasks=len(jip.reduce_tasks),
            elapsed_seconds=elapsed,
        )
