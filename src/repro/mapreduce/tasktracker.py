"""Tasktrackers: slot-bounded task execution.

One tasktracker per machine, each with a fixed number of map slots and
reduce slots (worker threads). Workers pull tasks from the
:class:`~repro.mapreduce.jobtracker.JobInProgress`, execute them against
the shared file system, and report success/failure; failed attempts are
retried by the jobtracker up to the configured attempt budget.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..common.errors import TaskFailedError
from ..common.fs import FileSystem
from .io.input import make_record_reader
from .io.records import TextRecordWriter
from .job import Context
from .jobtracker import JobInProgress
from .shuffle import merge_sorted_partitions, partition_and_sort
from .task import MapTaskInfo, ReduceTaskInfo

#: idle workers poll the jobtracker at this interval (seconds)
_POLL_INTERVAL = 0.002


def execute_map_task(
    fs: FileSystem, jip: JobInProgress, task: MapTaskInfo
) -> None:
    """Run one map attempt: read the split, apply map, partition/sort,
    park the output in the shuffle store."""
    conf = jip.conf
    counters = jip.counters
    pairs: list = []
    ctx = Context(counters)
    ctx._bind(lambda k, v: pairs.append((k, v)))
    ctx.split = task.split
    reader = make_record_reader(fs, task.split, conf.input_format)
    n_records = 0
    for key, value in reader:
        conf.map_fn(key, value, ctx)
        n_records += 1
    counters.increment("map_input_records", n_records)
    counters.increment("map_output_records", len(pairs))
    partitions = partition_and_sort(
        pairs, conf.partitioner, conf.n_reducers, conf.combiner_fn, counters
    )
    for p, bucket in partitions.items():
        jip.map_outputs.put(task.task_id, p, bucket)


def execute_reduce_task(
    fs: FileSystem, jip: JobInProgress, task: ReduceTaskInfo
) -> str:
    """Run one reduce attempt: fetch + merge the partition, apply reduce,
    write through the committer; returns the committed output path."""
    conf = jip.conf
    counters = jip.counters
    with jip.obs.tracer.span(
        "mr.shuffle_fetch",
        cat="mapreduce",
        partition=task.partition,
        n_maps=len(jip.map_tasks),
    ):
        partitions = [
            jip.map_outputs.get(m.task_id, task.partition) for m in jip.map_tasks
        ]
    stream = jip.committer.open_task_output(task.partition, task.attempts)
    writer = TextRecordWriter(stream)
    ctx = Context(counters)
    ctx._bind(writer.write)
    try:
        n_groups = 0
        for key, values in merge_sorted_partitions(partitions):
            conf.reduce_fn(key, values, ctx)
            n_groups += 1
        writer.close()
    except BaseException:
        # abandon without publishing buffered output
        try:
            stream.discard()
        except Exception:
            pass
        raise
    counters.increment("reduce_input_groups", n_groups)
    counters.increment("reduce_output_records", writer.records)
    counters.increment("reduce_output_bytes", writer.bytes_written)
    return jip.committer.commit_task(task.partition, task.attempts)


class TaskTracker:
    """One machine's worth of task slots, pulling from one job at a time."""

    def __init__(
        self,
        host: str,
        fs: FileSystem,
        map_slots: int,
        reduce_slots: int,
    ) -> None:
        if map_slots < 1 or reduce_slots < 1:
            raise ValueError("slot counts must be >= 1")
        self.host = host
        self.fs = fs
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        self._crashed = threading.Event()
        #: lifetime counters
        self.maps_run = 0
        self.reduces_run = 0

    # -- fault injection -------------------------------------------------------

    @property
    def is_failed(self) -> bool:
        return self._crashed.is_set()

    def fail(self) -> None:
        """Fault injection: crash this tracker. Its workers stop claiming
        tasks; a task claimed but not yet finished is reported failed so
        the jobtracker re-queues it on surviving trackers. Tasks that
        already completed stay completed (map outputs live in the shared
        store, not on the tracker)."""
        self._crashed.set()

    def recover(self) -> None:
        """Bring the tracker back: workers spawned after this point run
        normally (workers that already exited are not restarted)."""
        self._crashed.clear()

    def run_job(self, jip: JobInProgress) -> list[threading.Thread]:
        """Spawn this tracker's worker threads for one job; returns them
        (the caller joins)."""
        threads = [
            threading.Thread(
                target=self._map_worker,
                args=(jip,),
                name=f"{self.host}-map-{i}",
                daemon=True,
            )
            for i in range(self.map_slots)
        ] + [
            threading.Thread(
                target=self._reduce_worker,
                args=(jip,),
                name=f"{self.host}-reduce-{i}",
                daemon=True,
            )
            for i in range(self.reduce_slots)
        ]
        for t in threads:
            t.start()
        return threads

    def _map_worker(self, jip: JobInProgress) -> None:
        while not jip.is_complete:
            if self.is_failed:
                return
            task = jip.next_map_task(self.host)
            if task is None:
                if jip.maps_done:
                    return
                time.sleep(_POLL_INTERVAL)
                continue
            if self.is_failed:
                # crashed between claiming and executing: hand the task back
                jip.map_failed(
                    task, TaskFailedError(f"tasktracker {self.host} crashed")
                )
                return
            try:
                with jip.obs.tracer.span(
                    "mr.map_task",
                    cat="mapreduce",
                    track=self.host,
                    task=task.task_id,
                    attempt=task.attempts,
                    data_local=task.data_local,
                ):
                    execute_map_task(self.fs, jip, task)
            except Exception as exc:
                jip.map_failed(task, exc)
            else:
                jip.map_succeeded(task)
                self.maps_run += 1

    def _reduce_worker(self, jip: JobInProgress) -> None:
        while not jip.is_complete:
            if self.is_failed:
                return
            task = jip.next_reduce_task(self.host)
            if task is None:
                time.sleep(_POLL_INTERVAL)
                continue
            if self.is_failed:
                jip.reduce_failed(
                    task, TaskFailedError(f"tasktracker {self.host} crashed")
                )
                return
            try:
                with jip.obs.tracer.span(
                    "mr.reduce_task",
                    cat="mapreduce",
                    track=self.host,
                    task=task.task_id,
                    attempt=task.attempts,
                ):
                    path = execute_reduce_task(self.fs, jip, task)
            except Exception as exc:
                jip.committer.abort_task(task.partition, task.attempts)
                jip.reduce_failed(task, exc)
            else:
                jip.reduce_succeeded(task, path)
                self.reduces_run += 1
