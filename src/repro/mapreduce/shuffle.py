"""Shuffle machinery: map-side partition/sort, reduce-side merge.

Map outputs are partitioned by the job's partitioner, sorted by key
within each partition (with the optional combiner applied to sorted
groups), and parked in a :class:`MapOutputStore` — the stand-in for the
tasktrackers' local disks that reducers fetch from. The reduce side
performs the classic k-way merge over one partition of every map output
and groups values by key.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..obs import NULL_OBS, Observability
from .job import Context, Counters, Partitioner, ReduceFunction

#: one map output partition: key-sorted (key, value) pairs
Partition = List[Tuple[Any, Any]]


class MapOutputStore:
    """Holds every map task's partitioned, sorted output until reducers
    fetch it (Hadoop: tasktracker-local files served over HTTP)."""

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self._data: Dict[Tuple[int, int], Partition] = {}
        # secondary indexes so discard/size queries don't scan every
        # (map, partition) entry under the lock
        self._by_map: Dict[int, Set[int]] = {}
        self._by_partition: Dict[int, Set[int]] = {}
        self._lock = threading.Lock()
        #: lifetime counter of stored bytes-ish (pair count)
        self.pairs_stored = 0
        obs = obs or NULL_OBS
        self._c_pairs_stored = obs.registry.counter("mr.shuffle.pairs_stored")
        self._c_pairs_fetched = obs.registry.counter("mr.shuffle.pairs_fetched")

    def put(self, map_id: int, partition: int, pairs: Partition) -> None:
        """Park one partition of one map task's output."""
        with self._lock:
            self._data[(map_id, partition)] = pairs
            self._by_map.setdefault(map_id, set()).add(partition)
            self._by_partition.setdefault(partition, set()).add(map_id)
            self.pairs_stored += len(pairs)
            self._c_pairs_stored.inc(float(len(pairs)))

    def get(self, map_id: int, partition: int) -> Partition:
        """Fetch one partition of one map task's output (empty if none)."""
        with self._lock:
            pairs = self._data.get((map_id, partition), [])
            self._c_pairs_fetched.inc(float(len(pairs)))
            return pairs

    def discard_map(self, map_id: int) -> None:
        """Drop a failed attempt's output before the retry re-stores it."""
        with self._lock:
            for partition in self._by_map.pop(map_id, ()):
                del self._data[(map_id, partition)]
                maps = self._by_partition[partition]
                maps.discard(map_id)
                if not maps:
                    del self._by_partition[partition]

    def map_ids(self) -> List[int]:
        """Every map-task id that has stored output, sorted."""
        with self._lock:
            return sorted(self._by_map)

    def partition_sizes(self, partition: int) -> Dict[int, int]:
        """pair counts per map task for one partition (shuffle skew view)."""
        with self._lock:
            return {
                mid: len(self._data[(mid, partition)])
                for mid in self._by_partition.get(partition, ())
            }


def partition_and_sort(
    pairs: Iterable[Tuple[Any, Any]],
    partitioner: Partitioner,
    n_partitions: int,
    combiner: Optional[ReduceFunction] = None,
    counters: Optional[Counters] = None,
) -> Dict[int, Partition]:
    """Map-side shuffle step: bucket by partition, sort by key, combine.

    Returns only non-empty partitions. Keys must be mutually orderable
    (bytes/str/int in practice).
    """
    buckets: Dict[int, Partition] = {}
    for key, value in pairs:
        p = partitioner(key, n_partitions)
        if not (0 <= p < n_partitions):
            raise ValueError(
                f"partitioner returned {p} for {n_partitions} partitions"
            )
        buckets.setdefault(p, []).append((key, value))
    out: Dict[int, Partition] = {}
    for p, bucket in buckets.items():
        bucket.sort(key=lambda kv: kv[0])
        if combiner is not None:
            bucket = _combine(bucket, combiner, counters)
        out[p] = bucket
    return out


def _combine(
    bucket: Partition,
    combiner: ReduceFunction,
    counters: Optional[Counters],
) -> Partition:
    """Run the combiner over each key group of a sorted bucket."""
    combined: Partition = []
    ctx = Context(counters or Counters())
    ctx._bind(lambda k, v: combined.append((k, v)))
    for key, group in itertools.groupby(bucket, key=lambda kv: kv[0]):
        combiner(key, (v for _k, v in group), ctx)
    combined.sort(key=lambda kv: kv[0])
    return combined


def merge_sorted_partitions(
    partitions: List[Partition],
) -> Iterator[Tuple[Any, List[Any]]]:
    """K-way merge of sorted partitions, grouped by key.

    Yields ``(key, values)`` with values in merge order — the reducer's
    input contract.
    """
    merged = heapq.merge(*partitions, key=lambda kv: kv[0])
    for key, group in itertools.groupby(merged, key=lambda kv: kv[0]):
        yield key, [v for _k, v in group]
