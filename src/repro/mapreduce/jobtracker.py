"""The jobtracker: job state, task bookkeeping, scheduling decisions.

"The framework consists of a single master jobtracker, and multiple
slave tasktrackers, one per node. A Map/Reduce job is split into a set
of tasks, which are executed by the tasktrackers, as assigned by the
jobtracker." Reduce tasks become runnable only "after all the maps have
finished", as in the paper's Hadoop.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple

from ..common.config import MapReduceConfig
from ..common.errors import JobFailedError, TaskFailedError
from ..common.fs import FileSystem
from ..obs import NULL_OBS, Observability
from .io.committers import OutputCommitter, make_committer
from .io.input import FileSplit, compute_splits
from .job import Counters, JobConf
from .scheduler import pick_map_task, pick_reduce_task
from .shuffle import MapOutputStore
from .task import MapTaskInfo, ReduceTaskInfo, TaskState


class JobInProgress:
    """One submitted job's complete runtime state (thread-safe)."""

    def __init__(
        self,
        conf: JobConf,
        fs: FileSystem,
        config: MapReduceConfig,
        obs: Optional[Observability] = None,
    ) -> None:
        conf.validate(fs)
        self.conf = conf
        self.fs = fs
        self.config = config
        self.obs = obs or NULL_OBS
        self._c_maps_local = self.obs.registry.counter("mr.maps_local")
        self._c_maps_remote = self.obs.registry.counter("mr.maps_remote")
        self._c_map_failures = self.obs.registry.counter("mr.map_failures")
        self._c_reduce_failures = self.obs.registry.counter("mr.reduce_failures")
        self.counters = Counters()
        self.map_outputs = MapOutputStore(obs=self.obs)
        self.committer: OutputCommitter = make_committer(
            conf.output_mode, fs, conf.output_dir
        )
        self.committer.setup_job()
        # empty inputs are degenerate but legal: a job with zero map tasks
        splits = compute_splits(fs, conf.input_paths, conf.split_size)
        self.map_tasks: List[MapTaskInfo] = [
            MapTaskInfo(task_id=i, split=s) for i, s in enumerate(splits)
        ]
        self.reduce_tasks: List[ReduceTaskInfo] = [
            ReduceTaskInfo(task_id=r, partition=r)
            for r in range(conf.n_reducers)
        ]
        self._lock = threading.Lock()
        self._failed: Optional[str] = None

    # -- state queries ----------------------------------------------------------

    @property
    def maps_done(self) -> bool:
        with self._lock:
            return all(
                t.state is TaskState.SUCCEEDED for t in self.map_tasks
            )

    @property
    def is_complete(self) -> bool:
        with self._lock:
            return self._failed is not None or (
                all(t.state is TaskState.SUCCEEDED for t in self.map_tasks)
                and all(t.state is TaskState.SUCCEEDED for t in self.reduce_tasks)
            )

    @property
    def failure(self) -> Optional[str]:
        with self._lock:
            return self._failed

    def locality_fraction(self) -> float:
        """Fraction of map tasks that ran data-local (scheduler quality)."""
        with self._lock:
            done = [t for t in self.map_tasks if t.state is TaskState.SUCCEEDED]
            if not done:
                return 0.0
            return sum(1 for t in done if t.data_local) / len(done)

    # -- scheduling -----------------------------------------------------------------

    def next_map_task(self, host: str) -> Optional[MapTaskInfo]:
        """Claim a map task for a tasktracker on *host* (None: nothing now)."""
        with self._lock:
            if self._failed:
                return None
            task = pick_map_task(
                self.map_tasks, host, self.config.locality_aware
            )
            if task is None:
                return None
            task.state = TaskState.RUNNING
            task.assigned_to = host
            task.attempts += 1
            task.data_local = host in task.split.hosts
            (self._c_maps_local if task.data_local else self._c_maps_remote).inc()
            return task

    def next_reduce_task(self, host: str) -> Optional[ReduceTaskInfo]:
        """Claim a reduce task; only once every map has succeeded."""
        with self._lock:
            if self._failed:
                return None
            if not all(t.state is TaskState.SUCCEEDED for t in self.map_tasks):
                return None
            task = pick_reduce_task(self.reduce_tasks)
            if task is None:
                return None
            task.state = TaskState.RUNNING
            task.assigned_to = host
            task.attempts += 1
            return task

    # -- completion reports ------------------------------------------------------------

    def map_succeeded(self, task: MapTaskInfo) -> None:
        with self._lock:
            task.state = TaskState.SUCCEEDED

    def map_failed(self, task: MapTaskInfo, error: Exception) -> None:
        """Re-queue the attempt or fail the job when retries are exhausted."""
        self._c_map_failures.inc()
        with self._lock:
            self.map_outputs.discard_map(task.task_id)
            if task.attempts >= self.config.max_task_attempts:
                task.state = TaskState.FAILED
                self._failed = (
                    f"map task {task.task_id} failed "
                    f"{task.attempts} times: {error!r}"
                )
            else:
                task.state = TaskState.PENDING

    def reduce_succeeded(self, task: ReduceTaskInfo, output_path: str) -> None:
        with self._lock:
            task.state = TaskState.SUCCEEDED
            task.output_path = output_path

    def reduce_failed(self, task: ReduceTaskInfo, error: Exception) -> None:
        self._c_reduce_failures.inc()
        with self._lock:
            if task.attempts >= self.config.max_task_attempts:
                task.state = TaskState.FAILED
                self._failed = (
                    f"reduce task {task.task_id} failed "
                    f"{task.attempts} times: {error!r}"
                )
            else:
                task.state = TaskState.PENDING

    # -- finalization ------------------------------------------------------------------

    def finish(self) -> List[str]:
        """Cleanup and return output files; raises on a failed job."""
        with self._lock:
            if self._failed:
                raise JobFailedError(f"job {self.conf.name!r}: {self._failed}")
            self.committer.cleanup_job()
            return self.committer.output_files()
