"""Task model: the units of work the jobtracker hands to tasktrackers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .io.input import FileSplit


class TaskState(enum.Enum):
    """Lifecycle of a task as the jobtracker sees it."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass(slots=True)
class MapTaskInfo:
    """One map task: process one input split."""

    task_id: int
    split: FileSplit
    state: TaskState = TaskState.PENDING
    attempts: int = 0
    assigned_to: Optional[str] = None
    #: whether the winning attempt ran on a host storing the split (locality)
    data_local: bool = False


@dataclass(slots=True)
class ReduceTaskInfo:
    """One reduce task: merge one partition of every map output."""

    task_id: int
    partition: int
    state: TaskState = TaskState.PENDING
    attempts: int = 0
    assigned_to: Optional[str] = None
    #: the output file this reducer produced (committed path)
    output_path: Optional[str] = None
