"""Ring-buffer time series — the sampled-telemetry instrument.

A :class:`TimeSeries` records ``(timestamp, value)`` observations into a
fixed-capacity ring buffer: periodic samplers (network utilization, disk
queue depth, VM commit-queue length) can run at any cadence without the
registry growing beyond a bound. The exporter renders each series as
Chrome ``trace_event`` ``"C"`` counter rows, so sampled telemetry lines
up under the spans in the trace viewer.

Like every other instrument, a disabled registry hands out the shared
:data:`_NULL_TIMESERIES`, whose ``record`` does nothing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class TimeSeries:
    """Fixed-capacity ring buffer of ``(t, value)`` samples.

    ``count``/``last`` stay exact over the whole stream; only the oldest
    samples are evicted once *capacity* is exceeded.
    """

    __slots__ = ("name", "capacity", "_buf", "_head", "_n", "last")

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._buf: List[Tuple[float, float]] = []
        self._head = 0  # next write position once the buffer is full
        self._n = 0  # exact stream length (>= len(_buf) after wrap)
        self.last = 0.0

    def record(self, t: float, value: float) -> None:
        """Append one sample, evicting the oldest at capacity."""
        self._n += 1
        self.last = value
        if len(self._buf) < self.capacity:
            self._buf.append((t, value))
        else:
            self._buf[self._head] = (t, value)
            self._head = (self._head + 1) % self.capacity

    @property
    def count(self) -> int:
        """Samples observed over the series' lifetime."""
        return self._n

    def __len__(self) -> int:
        """Samples currently retained (<= capacity)."""
        return len(self._buf)

    def points(self) -> List[Tuple[float, float]]:
        """Retained samples in time order (oldest first)."""
        if self._head == 0:
            return list(self._buf)
        return self._buf[self._head :] + self._buf[: self._head]

    def summary(self) -> Dict[str, float]:
        """count/last/min/max/mean over the *retained* samples."""
        pts = self._buf
        if not pts:
            return {"count": 0.0, "last": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        values = [v for _t, v in pts]
        return {
            "count": float(self._n),
            "last": self.last,
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimeSeries {self.name} n={self._n} kept={len(self._buf)}>"


class _NullTimeSeries:
    __slots__ = ()
    name = ""
    capacity = 0
    count = 0
    last = 0.0

    def record(self, t: float, value: float) -> None:
        pass

    def points(self) -> List[Tuple[float, float]]:
        return []

    def summary(self) -> Dict[str, float]:
        return {"count": 0.0, "last": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}

    def __len__(self) -> int:
        return 0


#: shared instance handed out by a disabled registry
_NULL_TIMESERIES = _NullTimeSeries()
