"""The instant-event vocabulary: fault and lease moment markers.

Chaos runs (fig7) perturb the protocol with provider crashes, recoveries
and append-ticket lease expiries; these helpers stamp each such moment
onto the trace as a zero-duration instant (:meth:`Tracer.instant`), so
the trace viewer and the run report can align failures against the spans
they perturb. Every helper is a no-op on a disabled tracer.

The names are the contract consumed by
:func:`repro.experiments.runreport.fault_timeline` — add new moments
here, not ad hoc at the call sites.
"""

from __future__ import annotations

from .tracer import Tracer

#: category shared by every fault/lease moment marker
FAULT_CAT = "fault"

#: a component was crashed by the fault injector
FAULT_CRASH = "fault.crash"
#: a crashed component was brought back
FAULT_RECOVER = "fault.recover"
#: an append-ticket lease ran out and the version was aborted
LEASE_EXPIRED = "vm.lease_expired"


def fault_crash(tracer: Tracer, component: str, target: str) -> None:
    """Stamp a crash injection at the tracer's current time."""
    tracer.instant(
        FAULT_CRASH, cat=FAULT_CAT, track="faults",
        component=component, target=target,
    )


def fault_recover(tracer: Tracer, component: str, target: str) -> None:
    """Stamp a recovery at the tracer's current time."""
    tracer.instant(
        FAULT_RECOVER, cat=FAULT_CAT, track="faults",
        component=component, target=target,
    )


def lease_expired(tracer: Tracer, blob_id: int, version: int) -> None:
    """Stamp an append-ticket lease expiry (the version was aborted)."""
    tracer.instant(
        LEASE_EXPIRED, cat=FAULT_CAT, track="faults",
        blob=blob_id, version=version,
    )
