"""A metrics registry: counters, gauges, and percentile histograms.

Instruments are created (or fetched) by name from a
:class:`MetricsRegistry`; components hold the returned handle, so the
hot-path cost of an increment is one method call on a small object.
A disabled registry hands out shared null instruments whose methods do
nothing, which is what lets every component take a registry
unconditionally.

Histograms keep their raw samples (experiment runs observe thousands,
not millions, of values) and report linearly interpolated percentiles,
matching ``numpy.percentile``'s default so tests can cross-check. Long
perf sweeps can bound histogram memory with a sampling reservoir
(``max_samples``): count/mean/min/max stay exact, percentiles come
from a uniform sample of the stream (Vitter's Algorithm R with a
deterministic per-histogram seed).
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Dict, Iterable, List, Optional, Union

from .timeseries import _NULL_TIMESERIES, TimeSeries


class Counter:
    """A monotonically increasing total.

    Thread-safe: the HTTP server increments request counters from
    concurrent handler tasks and wait-pool threads, and ``+=`` on an
    attribute is a read-modify-write that drops updates under races.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """A point-in-time value (queue depth, imbalance ratio, …).

    A set is a single attribute store (atomic under the GIL), so no
    lock is needed; last-writer-wins is the right semantics anyway.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """A distribution of observed values with percentile readout.

    With ``max_samples`` set, at most that many raw samples are kept in
    a uniform reservoir (Algorithm R, deterministically seeded from the
    histogram name): ``count``/``mean``/``min``/``max`` remain exact
    over the whole stream, while percentiles are estimated from the
    reservoir. Default is unbounded (keep everything).

    Thread-safe: observes and percentile readouts may come from
    concurrent server threads/tasks, and both the reservoir swap and
    the lazy re-sort are multi-step mutations that corrupt under races.
    An *empty* histogram (idle server, zero requests) reads out as
    all-zero, never NaN and never an error: ``percentile``/``mean``
    return ``0.0`` and ``summary()`` is all-zero, so run reports on an
    idle process always render.
    """

    __slots__ = (
        "name", "_samples", "_sorted", "total",
        "_max_samples", "_n", "_min", "_max", "_rng", "_lock",
    )

    def __init__(self, name: str, max_samples: Optional[int] = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.name = name
        self._lock = threading.Lock()
        self._samples: List[float] = []
        self._sorted = True
        self.total = 0.0
        self._max_samples = max_samples
        self._n = 0  # exact stream length (>= len(_samples) when capped)
        self._min = 0.0
        self._max = 0.0
        # seeded per-name so capped percentiles are reproducible
        self._rng = (
            random.Random(zlib.crc32(name.encode()))
            if max_samples is not None
            else None
        )

    def observe(self, value: float) -> None:
        with self._lock:
            n = self._n
            self._n = n + 1
            self.total += value
            if n == 0:
                self._min = self._max = value
            else:
                if value < self._min:
                    self._min = value
                if value > self._max:
                    self._max = value
            cap = self._max_samples
            if cap is None or len(self._samples) < cap:
                self._samples.append(value)
                self._sorted = False
            else:
                # Algorithm R: keep each of the n+1 values with prob cap/(n+1)
                j = self._rng.randrange(n + 1)
                if j < cap:
                    self._samples[j] = value
                    self._sorted = False

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self.total / self._n if self._n else 0.0

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0..100), linearly interpolated between
        order statistics — numpy's default method.

        An empty histogram returns ``0.0`` (documented contract: never
        NaN, never an exception — idle-server reports must render).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        with self._lock:
            if not self._samples:
                return 0.0
            if not self._sorted:
                self._samples.sort()
                self._sorted = True
            rank = (p / 100.0) * (len(self._samples) - 1)
            lo = int(rank)
            frac = rank - lo
            if frac == 0.0 or lo + 1 >= len(self._samples):
                return self._samples[lo]
            return self._samples[lo] + frac * (
                self._samples[lo + 1] - self._samples[lo]
            )

    def summary(self) -> Dict[str, float]:
        """count/mean/min/p50/p95/p99/max in one dict."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    mean = 0.0
    min = 0.0
    max = 0.0
    total = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": 0.0, "mean": 0.0, "min": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()

Instrument = Union[Counter, Gauge, Histogram, TimeSeries]


class MetricsRegistry:
    """Named instruments for one run; get-or-create, thread-safe."""

    def __init__(
        self,
        enabled: bool = True,
        default_hist_max_samples: Optional[int] = None,
    ) -> None:
        self.enabled = enabled
        #: reservoir cap applied to histograms created by this registry
        #: (None = unbounded). The perf harness caps its registries so
        #: long sweeps cannot grow without limit.
        self.default_hist_max_samples = default_hist_max_samples
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                if cls is Histogram:
                    inst = cls(name, self.default_hist_max_samples)
                else:
                    inst = cls(name)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, requested {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        return self._get(name, Histogram)

    def timeseries(self, name: str, capacity: int = 4096) -> TimeSeries:
        """Get-or-create a ring-buffer time series (see its module).

        *capacity* only applies on creation; a later fetch with a
        different capacity returns the existing series unchanged.
        """
        if not self.enabled:
            return _NULL_TIMESERIES  # type: ignore[return-value]
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = TimeSeries(name, capacity)
            elif not isinstance(inst, TimeSeries):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, requested TimeSeries"
                )
            return inst

    # -- readout --------------------------------------------------------------

    def counters(self) -> Dict[str, float]:
        """Name → value of every counter, sorted by name."""
        with self._lock:
            return {
                n: i.value
                for n, i in sorted(self._instruments.items())
                if isinstance(i, Counter)
            }

    def gauges(self) -> Dict[str, float]:
        """Name → value of every gauge, sorted by name."""
        with self._lock:
            return {
                n: i.value
                for n, i in sorted(self._instruments.items())
                if isinstance(i, Gauge)
            }

    def histograms(self) -> Dict[str, Histogram]:
        """Name → histogram, sorted by name."""
        with self._lock:
            return {
                n: i
                for n, i in sorted(self._instruments.items())
                if isinstance(i, Histogram)
            }

    def series(self) -> Dict[str, TimeSeries]:
        """Name → time series, sorted by name."""
        with self._lock:
            return {
                n: i
                for n, i in sorted(self._instruments.items())
                if isinstance(i, TimeSeries)
            }

    def value(self, name: str, default: float = 0.0) -> float:
        """A counter/gauge value by name (*default* when absent)."""
        with self._lock:
            inst = self._instruments.get(name)
        if inst is None or isinstance(inst, (Histogram, TimeSeries)):
            return default
        return inst.value

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: counters, gauges, histogram summaries, and
        time series (retained points plus a summary)."""
        doc: Dict[str, object] = {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                n: h.summary() for n, h in self.histograms().items()
            },
        }
        series = self.series()
        if series:
            doc["timeseries"] = {
                n: {"summary": s.summary(), "points": s.points()}
                for n, s in series.items()
            }
        return doc

    def names(self) -> Iterable[str]:
        with self._lock:
            return sorted(self._instruments)
