"""A metrics registry: counters, gauges, and percentile histograms.

Instruments are created (or fetched) by name from a
:class:`MetricsRegistry`; components hold the returned handle, so the
hot-path cost of an increment is one method call on a small object.
A disabled registry hands out shared null instruments whose methods do
nothing, which is what lets every component take a registry
unconditionally.

Histograms keep their raw samples (experiment runs observe thousands,
not millions, of values) and report linearly interpolated percentiles,
matching ``numpy.percentile``'s default so tests can cross-check.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Union


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """A point-in-time value (queue depth, imbalance ratio, …)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """A distribution of observed values with percentile readout."""

    __slots__ = ("name", "_samples", "_sorted", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted = True
        self.total = 0.0

    def observe(self, value: float) -> None:
        self._samples.append(value)
        self.total += value
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return self.total / len(self._samples) if self._samples else 0.0

    @property
    def min(self) -> float:
        return min(self._samples) if self._samples else 0.0

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0..100), linearly interpolated between
        order statistics — numpy's default method. 0.0 when empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        rank = (p / 100.0) * (len(self._samples) - 1)
        lo = int(rank)
        frac = rank - lo
        if frac == 0.0 or lo + 1 >= len(self._samples):
            return self._samples[lo]
        return self._samples[lo] + frac * (self._samples[lo + 1] - self._samples[lo])

    def summary(self) -> Dict[str, float]:
        """count/mean/min/p50/p95/p99/max in one dict."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    mean = 0.0
    min = 0.0
    max = 0.0
    total = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": 0.0, "mean": 0.0, "min": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()

Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments for one run; get-or-create, thread-safe."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(name)
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, requested {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        return self._get(name, Histogram)

    # -- readout --------------------------------------------------------------

    def counters(self) -> Dict[str, float]:
        """Name → value of every counter, sorted by name."""
        with self._lock:
            return {
                n: i.value
                for n, i in sorted(self._instruments.items())
                if isinstance(i, Counter)
            }

    def gauges(self) -> Dict[str, float]:
        """Name → value of every gauge, sorted by name."""
        with self._lock:
            return {
                n: i.value
                for n, i in sorted(self._instruments.items())
                if isinstance(i, Gauge)
            }

    def histograms(self) -> Dict[str, Histogram]:
        """Name → histogram, sorted by name."""
        with self._lock:
            return {
                n: i
                for n, i in sorted(self._instruments.items())
                if isinstance(i, Histogram)
            }

    def value(self, name: str, default: float = 0.0) -> float:
        """A counter/gauge value by name (*default* when absent)."""
        with self._lock:
            inst = self._instruments.get(name)
        if inst is None or isinstance(inst, Histogram):
            return default
        return inst.value

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: counters, gauges, histogram summaries."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                n: h.summary() for n, h in self.histograms().items()
            },
        }

    def names(self) -> Iterable[str]:
        with self._lock:
            return sorted(self._instruments)
