"""Observability: span tracing and a metrics registry for every layer.

The reproduction's performance claims (Figures 3-6) rest on *why*
concurrent appends stay flat — version-assignment serialization,
metadata commit ordering, the client block cache. This package makes
those paths visible without changing their behavior:

* :mod:`repro.obs.tracer` — a span-based tracer (parent/child contexts,
  pluggable clock so simulated and wall time both work, and a no-op
  mode whose per-call cost is a flag check);
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histograms (p50/p95/p99);
* :mod:`repro.obs.export` — a Chrome ``trace_event`` JSON exporter
  (loadable in ``chrome://tracing`` / Perfetto) and an aligned
  plain-text summary.

Instrumented components take an :class:`Observability` bundle and
default to :data:`NULL_OBS`, the shared disabled instance: every
instrument call then reduces to a method on a null object, so code
never needs ``if obs is not None`` guards and the disabled overhead is
negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .timeseries import TimeSeries
from .tracer import NULL_SPAN, Span, Tracer
from .critical import CriticalPathReport, attribute
from .export import (
    chrome_trace,
    text_summary,
    write_chrome_trace,
    write_text_summary,
)


@dataclass(slots=True)
class Observability:
    """One tracer plus one metrics registry, handed down a whole stack."""

    tracer: Tracer = field(default_factory=Tracer)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.registry.enabled

    @classmethod
    def on(cls, clock: Optional[Callable[[], float]] = None) -> "Observability":
        """A fully enabled bundle (wall clock unless *clock* is given)."""
        return cls(tracer=Tracer(clock=clock), registry=MetricsRegistry())

    @classmethod
    def off(cls) -> "Observability":
        """A fresh disabled bundle (prefer :data:`NULL_OBS` as a default)."""
        return cls(
            tracer=Tracer(enabled=False),
            registry=MetricsRegistry(enabled=False),
        )


#: the shared disabled bundle instrumented components default to
NULL_OBS = Observability.off()

__all__ = [
    "Counter",
    "CriticalPathReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_SPAN",
    "Observability",
    "Span",
    "TimeSeries",
    "Tracer",
    "attribute",
    "chrome_trace",
    "text_summary",
    "write_chrome_trace",
    "write_text_summary",
]
