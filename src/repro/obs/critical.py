"""Critical-path analysis: attribute wall-clock to named layers.

The engine emits one span per operation (``engine.call``, ``engine.wait``,
``engine.store``/``fetch``/``ship_many``, ``engine.charge_md``, retry
sweeps) nested under the protocol spans that issued them. This walker
turns that span forest into a per-track time breakdown: every instant of
a track's busy time (the union of its root spans) is attributed to
exactly one *layer* — the innermost engine span active at that instant —
with the uncovered remainder reported as ``compute``.

Layers, by engine span category:

* ``network``  — data-plane transport (``engine.data``);
* ``turn_wait`` — uncharged metadata-turn waits (``engine.wait``);
* ``metadata`` — charged metadata RPC batches (``engine.md``);
* ``rpc``      — control-plane round trips (``engine.call``);
* ``retry``    — backoff sleeps and failover sweeps (``engine.retry``);
* ``compute``  — busy time not inside any engine op (tree algorithms,
  simulated CPU phases, framework logic).

"Innermost wins" makes the attribution a partition: a replica sweep
(``engine.retry``) containing a fetch (``engine.data``) charges the
fetch's interval to ``network`` and only the backoff gaps to ``retry``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .tracer import Span, Tracer

#: engine span category → report layer
DEFAULT_LAYERS: Mapping[str, str] = {
    "engine.data": "network",
    "engine.wait": "turn_wait",
    "engine.md": "metadata",
    "engine.call": "rpc",
    "engine.retry": "retry",
}

#: the residual layer: busy time not covered by any engine span
COMPUTE = "compute"


@dataclass(slots=True)
class TrackBreakdown:
    """One track's attributed time."""

    track: str
    busy_s: float
    layers: Dict[str, float] = field(default_factory=dict)


@dataclass(slots=True)
class CriticalPathReport:
    """The whole run's layer attribution (sum over tracks)."""

    layers: Dict[str, float]
    busy_s: float
    tracks: List[TrackBreakdown]

    @property
    def attributed_fraction(self) -> float:
        """Fraction of busy time attributed to named layers (with
        ``compute`` as a named residual this is 1.0 up to float noise)."""
        if self.busy_s <= 0.0:
            return 1.0
        return sum(self.layers.values()) / self.busy_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "busy_s": self.busy_s,
            "attributed_fraction": self.attributed_fraction,
            "layers": dict(self.layers),
            "tracks": [
                {"track": t.track, "busy_s": t.busy_s, "layers": dict(t.layers)}
                for t in self.tracks
            ],
        }


def _merged_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of *intervals*."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    lo, hi = intervals[0]
    for s, e in intervals[1:]:
        if s > hi:
            total += hi - lo
            lo, hi = s, e
        elif e > hi:
            hi = e
    return total + (hi - lo)


def _depths(spans: List[Span]) -> Dict[int, int]:
    """Span id → nesting depth (roots at 0; unknown parents are roots)."""
    by_id = {s.span_id: s for s in spans}
    depths: Dict[int, int] = {}

    def depth(sid: int) -> int:
        d = depths.get(sid)
        if d is not None:
            return d
        parent = by_id[sid].parent_id
        d = 0 if parent is None or parent not in by_id else depth(parent) + 1
        depths[sid] = d
        return d

    for s in spans:
        depth(s.span_id)
    return depths


def _attribute_track(
    roots: List[Span],
    layer_spans: List[Tuple[Span, int, str]],
    close_at: float,
) -> TrackBreakdown:
    """Sweep one track: innermost active layer span wins each instant."""

    def end_of(s: Span) -> float:
        return s.end if s.end is not None else max(close_at, s.start)

    track = roots[0].track if roots else layer_spans[0][0].track
    busy = _merged_length([(r.start, end_of(r)) for r in roots])

    # sweep events: (time, order, +1/-1, key) — ends before starts at the
    # same instant so zero-length overlap never double-counts
    events: List[Tuple[float, int, int, Tuple[int, int, str]]] = []
    for order, (span, depth, layer) in enumerate(layer_spans):
        end = end_of(span)
        if end <= span.start:
            continue
        key = (depth, order, layer)
        events.append((span.start, 1, 1, key))
        events.append((end, 0, -1, key))
    busy_events: List[Tuple[float, int, int, None]] = []
    for r in roots:
        end = end_of(r)
        if end > r.start:
            busy_events.append((r.start, 1, 2, None))
            busy_events.append((end, 0, -2, None))

    merged = sorted(
        events + busy_events, key=lambda e: (e[0], e[1])
    )
    layers: Dict[str, float] = {}
    active: List[Tuple[int, int, str]] = []  # (depth, order, layer)
    busy_depth = 0
    prev_t: Optional[float] = None
    for t, _order, kind, key in merged:
        if prev_t is not None and t > prev_t and active and busy_depth > 0:
            innermost = max(active)
            layers[innermost[2]] = layers.get(innermost[2], 0.0) + (t - prev_t)
        prev_t = t
        if kind == 1:
            active.append(key)  # type: ignore[arg-type]
        elif kind == -1:
            active.remove(key)  # type: ignore[arg-type]
        elif kind == 2:
            busy_depth += 1
        else:
            busy_depth -= 1

    covered = sum(layers.values())
    layers[COMPUTE] = max(0.0, busy - covered)
    return TrackBreakdown(track=track, busy_s=busy, layers=layers)


def attribute(
    source: "Tracer | Iterable[Span]",
    layers: Mapping[str, str] = DEFAULT_LAYERS,
) -> CriticalPathReport:
    """Build the critical-path report from a tracer (or span list).

    Open spans are closed at the trace's latest timestamp (matching the
    exporters); instant events carry no duration and are skipped.
    """
    if isinstance(source, Tracer):
        spans = source.snapshot()
        close_at = source.max_ts
    else:
        spans = list(source)
        close_at = max(
            (s.end if s.end is not None else s.start for s in spans),
            default=0.0,
        )
    spans = [s for s in spans if not s.instant]
    if not spans:
        return CriticalPathReport(layers={}, busy_s=0.0, tracks=[])

    by_id = {s.span_id: s for s in spans}
    depths = _depths(spans)

    per_track_roots: Dict[str, List[Span]] = {}
    per_track_layers: Dict[str, List[Tuple[Span, int, str]]] = {}
    for s in spans:
        if s.parent_id is None or s.parent_id not in by_id:
            per_track_roots.setdefault(s.track, []).append(s)
        layer = layers.get(s.cat)
        if layer is not None:
            per_track_layers.setdefault(s.track, []).append(
                (s, depths[s.span_id], layer)
            )

    tracks: List[TrackBreakdown] = []
    for track in sorted(set(per_track_roots) | set(per_track_layers)):
        roots = per_track_roots.get(track, [])
        if not roots:
            continue  # layer spans with no root on their track: unscoped
        tracks.append(
            _attribute_track(roots, per_track_layers.get(track, []), close_at)
        )

    total: Dict[str, float] = {}
    busy = 0.0
    for t in tracks:
        busy += t.busy_s
        for name, secs in t.layers.items():
            total[name] = total.get(name, 0.0) + secs
    return CriticalPathReport(layers=total, busy_s=busy, tracks=tracks)
