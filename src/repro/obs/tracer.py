"""Span-based tracing with parent/child contexts and a pluggable clock.

A :class:`Span` is one timed interval of one named operation on one
*track* (a client, a host, a tasktracker). Spans form trees: a span
created while another is active (either passed explicitly as *parent*
or found on the calling thread's context stack) records that span as
its parent, which is what lets the Chrome trace viewer nest an append's
version-assignment wait inside the append.

Two usage styles, matching the two runtimes:

* **threaded code** uses the context-manager form — ``with
  tracer.span("mr.map_task", cat="mapreduce"):`` — which maintains a
  per-thread stack of active spans, so nested ``with`` blocks parent
  automatically;
* **simulated processes** interleave many logical activities on one
  thread, where an implicit stack would cross-link unrelated processes.
  They create spans explicitly — ``sp = tracer.start(...)`` …
  ``sp.finish()`` — and pass ``parent=`` by hand.

The clock is injectable (:meth:`Tracer.use_clock`) so simulated spans
carry simulated timestamps; rebasing keeps time monotonic when several
deployments (each restarting its simulation clock at zero) share one
tracer.

When the tracer is disabled every ``start``/``span`` call returns the
shared :data:`NULL_SPAN`, whose methods do nothing — the instrumented
hot paths pay one attribute load and one flag check.
"""

from __future__ import annotations

import threading
import time
from types import MappingProxyType
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One timed, named interval; also a context manager."""

    __slots__ = (
        "name",
        "cat",
        "track",
        "start",
        "end",
        "args",
        "span_id",
        "parent_id",
        "instant",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        cat: str,
        track: str,
        start: float,
        args: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.args = args
        #: True for zero-duration moment markers (fault injections,
        #: lease expiries) — exported as Chrome instant events
        self.instant = False

    @property
    def duration(self) -> Optional[float]:
        """Seconds from start to finish (None while still open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def set(self, **args: Any) -> "Span":
        """Attach key/value annotations (shown in the trace viewer)."""
        self.args.update(args)
        return self

    def finish(self, **args: Any) -> "Span":
        """Close the span at the tracer's current time (idempotent)."""
        if self.end is None:
            if args:
                self.args.update(args)
            self._tracer._finish(self)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._pop(self)
        if exc_type is not None:
            self.args.setdefault("error", repr(exc))
        self.finish()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"dur={self.duration:.6f}"
        return f"<Span {self.name!r} cat={self.cat!r} {state}>"


class _NullSpan:
    """The do-nothing span a disabled tracer hands out."""

    __slots__ = ()
    name = ""
    cat = ""
    track = ""
    start = 0.0
    end = 0.0
    duration = 0.0
    span_id = None
    parent_id = None
    instant = False
    # immutable: a write through a disabled span must fail loudly rather
    # than leak shared state across every user of NULL_SPAN
    args: "MappingProxyType[str, Any]" = MappingProxyType({})

    def set(self, **args: Any) -> "_NullSpan":
        # annotations on a disabled span are dropped; the returned span
        # is itself a no-op, so chained calls stay harmless
        return self

    def finish(self, **args: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: shared instance returned by every call on a disabled tracer
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans from one run; thread-safe."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self._clock: Callable[[], float] = clock or time.perf_counter
        self._base = 0.0
        #: every span ever started, in start order
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._next_id = 1
        self._max_ts = 0.0
        self._tls = threading.local()

    # -- time ----------------------------------------------------------------

    def now(self) -> float:
        """The tracer's current timestamp (clock + rebase offset)."""
        return self._base + self._clock()

    def use_clock(
        self, clock: Callable[[], float], rebase: bool = True
    ) -> None:
        """Switch the time source (e.g. to a simulation's ``env.now``).

        With *rebase* (the default) the new clock's zero is aligned just
        past the latest timestamp already recorded, so successive
        deployments — each restarting its simulated clock at zero — lay
        out sequentially instead of on top of each other.
        """
        with self._lock:
            self._base = self._max_ts if rebase else 0.0
            self._clock = clock

    # -- span lifecycle -------------------------------------------------------

    def start(
        self,
        name: str,
        cat: str = "",
        parent: Optional[Span] = None,
        track: Optional[str] = None,
        **args: Any,
    ):
        """Open a span; the caller must :meth:`Span.finish` it.

        *parent* defaults to the calling thread's innermost ``with``
        span (if any). *track* defaults to the parent's track, then to
        the thread name.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = self._current()
        if parent is NULL_SPAN:
            parent = None
        if track is None:
            track = (
                parent.track if parent is not None
                else threading.current_thread().name
            )
        ts = self.now()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                self,
                span_id,
                parent.span_id if parent is not None else None,
                name,
                cat,
                track,
                ts,
                dict(args),
            )
            self.spans.append(span)
            if ts > self._max_ts:
                self._max_ts = ts
        return span

    #: alias emphasizing the ``with tracer.span(...)`` usage
    span = start

    def instant(
        self,
        name: str,
        cat: str = "",
        parent: Optional[Span] = None,
        track: Optional[str] = None,
        **args: Any,
    ):
        """Record a zero-duration moment marker (already finished).

        Instants annotate the timeline — a provider crash, a lease
        expiry — so chaos runs render failures aligned against the spans
        they perturb. Exported as Chrome ``"i"`` instant events.
        """
        span = self.start(name, cat=cat, parent=parent, track=track, **args)
        if span is NULL_SPAN:
            return span
        span.instant = True
        span.end = span.start
        return span

    def _finish(self, span: Span) -> None:
        ts = self.now()
        with self._lock:
            span.end = ts
            if ts > self._max_ts:
                self._max_ts = ts

    # -- the per-thread context stack ----------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def current(self) -> Optional[Span]:
        """The calling thread's innermost active ``with`` span."""
        return self._current()

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit, be safe
            stack.remove(span)

    # -- inspection -----------------------------------------------------------

    def finished(self) -> List[Span]:
        """Spans that have both endpoints, in start order."""
        with self._lock:
            return [s for s in self.spans if s.end is not None]

    def open_spans(self) -> List[Span]:
        """Spans started but never finished, in start order.

        A non-empty result after a run usually marks a protocol path
        that errored between ``start`` and ``finish`` — the exporters
        flag these instead of silently dropping them.
        """
        with self._lock:
            return [s for s in self.spans if s.end is None]

    def snapshot(self) -> List[Span]:
        """Every recorded span (finished, open, instant), in start order."""
        with self._lock:
            return list(self.spans)

    @property
    def max_ts(self) -> float:
        """The latest timestamp recorded so far (start or end)."""
        with self._lock:
            return self._max_ts

    def by_category(self, cat: str) -> List[Span]:
        """Finished spans of one category."""
        return [s for s in self.finished() if s.cat == cat]

    def categories(self) -> List[str]:
        """Sorted distinct categories of recorded spans."""
        with self._lock:
            return sorted({s.cat for s in self.spans})

    def clear(self) -> None:
        """Drop every recorded span (instrument handles stay valid)."""
        with self._lock:
            self.spans.clear()
            self._max_ts = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)
