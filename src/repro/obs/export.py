"""Exporters: Chrome ``trace_event`` JSON and an aligned text summary.

The Chrome format (one ``"X"`` complete event per finished span, with
microsecond timestamps and per-track ``tid``/``thread_name`` metadata)
loads directly into ``chrome://tracing`` or https://ui.perfetto.dev —
drop the file in and every append's version-assignment wait, metadata
turn, and page shipping nest visually per client.

The text summary is the terminal companion: counters, gauges,
histogram percentiles, and a derived section (cache hit-rate, map
locality) aligned for reading next to a figure's numbers.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .metrics import MetricsRegistry
from .tracer import Tracer


def chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """The tracer's finished spans as a Chrome ``trace_event`` document."""
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    tids: Dict[str, int] = {}
    spans = tracer.finished()
    for span in spans:
        tid = tids.get(span.track)
        if tid is None:
            tid = tids[span.track] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": span.track},
                }
            )
    for span in spans:
        event: Dict[str, object] = {
            "name": span.name,
            "cat": span.cat or "default",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": (span.end - span.start) * 1e6,
            "pid": 1,
            "tid": tids[span.track],
        }
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event["args"] = args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Serialize :func:`chrome_trace` to *path*."""
    with open(path, "w") as fp:
        json.dump(chrome_trace(tracer), fp)


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    """Right-align *rows* (first column left) under *header*."""
    if not rows:
        return []
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows))
        for c in range(len(header))
    ]

    def fmt(cells: List[str]) -> str:
        first = cells[0].ljust(widths[0])
        rest = [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
        return "  ".join([first] + rest)

    return [fmt(header), "  ".join("-" * w for w in widths)] + [
        fmt(r) for r in rows
    ]


def _rate(hits: float, misses: float) -> str:
    total = hits + misses
    if total <= 0:
        return "n/a (no cache traffic)"
    return f"{100.0 * hits / total:.1f}% ({hits:g} hits / {misses:g} misses)"


def text_summary(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> str:
    """An aligned plain-text readout of one run's metrics (and spans)."""
    lines: List[str] = ["== observability summary =="]

    counters = registry.counters()
    if counters:
        lines.append("")
        lines.append("counters:")
        lines.extend(
            _table(
                ["name", "value"],
                [[n, f"{v:g}"] for n, v in counters.items()],
            )
        )

    gauges = registry.gauges()
    if gauges:
        lines.append("")
        lines.append("gauges:")
        lines.extend(
            _table(
                ["name", "value"],
                [[n, f"{v:g}"] for n, v in gauges.items()],
            )
        )

    histograms = registry.histograms()
    if histograms:
        lines.append("")
        lines.append("histograms:")
        rows = []
        for name, hist in histograms.items():
            s = hist.summary()
            rows.append(
                [name]
                + [
                    f"{s[k]:g}" if k == "count" else f"{s[k]:.6g}"
                    for k in ("count", "mean", "p50", "p95", "p99", "max")
                ]
            )
        lines.extend(
            _table(
                ["name", "count", "mean", "p50", "p95", "p99", "max"], rows
            )
        )

    # derived readouts the benchmarks care about, always reported
    lines.append("")
    lines.append("derived:")
    lines.append(
        "cache hit-rate: "
        + _rate(
            registry.value("bsfs.cache.hits"),
            registry.value("bsfs.cache.misses"),
        )
    )
    maps_local = registry.value("mr.maps_local")
    maps_total = maps_local + registry.value("mr.maps_remote")
    if maps_total > 0:
        lines.append(
            f"map locality: {100.0 * maps_local / maps_total:.1f}% "
            f"({maps_local:g} of {maps_total:g} map attempts data-local)"
        )

    if tracer is not None and len(tracer):
        lines.append("")
        lines.append("spans:")
        per_cat: Dict[str, List[float]] = {}
        for span in tracer.finished():
            per_cat.setdefault(span.cat or "default", []).append(
                span.end - span.start
            )
        rows = [
            [cat, f"{len(durs)}", f"{sum(durs):.6g}"]
            for cat, durs in sorted(per_cat.items())
        ]
        lines.extend(_table(["category", "count", "total_s"], rows))

    return "\n".join(lines)


def write_text_summary(
    registry: MetricsRegistry, path: str, tracer: Optional[Tracer] = None
) -> None:
    """Serialize :func:`text_summary` to *path*."""
    with open(path, "w") as fp:
        fp.write(text_summary(registry, tracer) + "\n")
