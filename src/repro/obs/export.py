"""Exporters: Chrome ``trace_event`` JSON and an aligned text summary.

The Chrome format (one ``"X"`` complete event per finished span, with
microsecond timestamps and per-track ``tid``/``thread_name`` metadata)
loads directly into ``chrome://tracing`` or https://ui.perfetto.dev —
drop the file in and every append's version-assignment wait, metadata
turn, and page shipping nest visually per client.

Never-finished spans are *not* dropped: they are emitted closed at the
trace's latest timestamp with ``still_open: true`` (and counted), since
an open span after a run usually marks the exact path that failed.
Instant spans (fault injections, lease expiries) become ``"i"`` events;
counters, gauges and sampled time series become ``"C"`` counter rows so
metrics render as staircase plots under the spans.

The text summary is the terminal companion: counters, gauges,
histogram percentiles, and a derived section (cache hit-rate, map
locality) aligned for reading next to a figure's numbers.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .metrics import MetricsRegistry
from .tracer import Tracer


def chrome_trace(
    tracer: Tracer, registry: Optional[MetricsRegistry] = None
) -> Dict[str, object]:
    """The tracer's spans (plus *registry* counters) as a Chrome
    ``trace_event`` document."""
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    tids: Dict[str, int] = {}
    spans = tracer.snapshot()
    max_ts = tracer.max_ts
    unfinished = 0
    for span in spans:
        tid = tids.get(span.track)
        if tid is None:
            tid = tids[span.track] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": span.track},
                }
            )
    for span in spans:
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event: Dict[str, object] = {
            "name": span.name,
            "cat": span.cat or "default",
            "ts": span.start * 1e6,
            "pid": 1,
            "tid": tids[span.track],
        }
        if span.instant:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant marker
        else:
            end = span.end
            if end is None:
                # still open: close at the trace's latest timestamp and
                # flag it rather than silently dropping the span
                end = max(max_ts, span.start)
                args["still_open"] = True
                unfinished += 1
            event["ph"] = "X"
            event["dur"] = (end - span.start) * 1e6
        event["args"] = args
        events.append(event)
    if registry is not None:
        events.extend(_counter_rows(registry, max_ts))
    doc: Dict[str, object] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if unfinished:
        doc["metadata"] = {"spans_unfinished": unfinished}
    return doc


def _counter_rows(
    registry: MetricsRegistry, max_ts: float
) -> List[Dict[str, object]]:
    """Metrics as ``"C"`` counter rows: each time series at its sample
    times, counters/gauges as their final value at the trace end."""
    rows: List[Dict[str, object]] = []
    for name, series in registry.series().items():
        for t, value in series.points():
            rows.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": t * 1e6,
                    "pid": 1,
                    "args": {"value": value},
                }
            )
    finals = dict(registry.counters())
    finals.update(registry.gauges())
    for name, value in finals.items():
        rows.append(
            {
                "name": name,
                "ph": "C",
                "ts": max_ts * 1e6,
                "pid": 1,
                "args": {"value": value},
            }
        )
    return rows


def write_chrome_trace(
    tracer: Tracer, path: str, registry: Optional[MetricsRegistry] = None
) -> None:
    """Serialize :func:`chrome_trace` to *path*."""
    with open(path, "w") as fp:
        json.dump(chrome_trace(tracer, registry), fp)


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    """Right-align *rows* (first column left) under *header*."""
    if not rows:
        return []
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows))
        for c in range(len(header))
    ]

    def fmt(cells: List[str]) -> str:
        first = cells[0].ljust(widths[0])
        rest = [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
        return "  ".join([first] + rest)

    return [fmt(header), "  ".join("-" * w for w in widths)] + [
        fmt(r) for r in rows
    ]


def _rate(hits: float, misses: float) -> str:
    total = hits + misses
    if total <= 0:
        return "n/a (no cache traffic)"
    return f"{100.0 * hits / total:.1f}% ({hits:g} hits / {misses:g} misses)"


def text_summary(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> str:
    """An aligned plain-text readout of one run's metrics (and spans)."""
    lines: List[str] = ["== observability summary =="]

    counters = registry.counters()
    if counters:
        lines.append("")
        lines.append("counters:")
        lines.extend(
            _table(
                ["name", "value"],
                [[n, f"{v:g}"] for n, v in counters.items()],
            )
        )

    gauges = registry.gauges()
    if gauges:
        lines.append("")
        lines.append("gauges:")
        lines.extend(
            _table(
                ["name", "value"],
                [[n, f"{v:g}"] for n, v in gauges.items()],
            )
        )

    histograms = registry.histograms()
    if histograms:
        lines.append("")
        lines.append("histograms:")
        rows = []
        for name, hist in histograms.items():
            s = hist.summary()
            rows.append(
                [name]
                + [
                    f"{s[k]:g}" if k == "count" else f"{s[k]:.6g}"
                    for k in ("count", "mean", "p50", "p95", "p99", "max")
                ]
            )
        lines.extend(
            _table(
                ["name", "count", "mean", "p50", "p95", "p99", "max"], rows
            )
        )

    series = registry.series()
    if series:
        lines.append("")
        lines.append("time series:")
        rows = []
        for name, ts in series.items():
            s = ts.summary()
            rows.append(
                [name, f"{s['count']:g}"]
                + [f"{s[k]:.6g}" for k in ("last", "min", "max", "mean")]
            )
        lines.extend(
            _table(["name", "samples", "last", "min", "max", "mean"], rows)
        )

    # derived readouts the benchmarks care about, always reported
    lines.append("")
    lines.append("derived:")
    lines.append(
        "cache hit-rate: "
        + _rate(
            registry.value("bsfs.cache.hits"),
            registry.value("bsfs.cache.misses"),
        )
    )
    maps_local = registry.value("mr.maps_local")
    maps_total = maps_local + registry.value("mr.maps_remote")
    if maps_total > 0:
        lines.append(
            f"map locality: {100.0 * maps_local / maps_total:.1f}% "
            f"({maps_local:g} of {maps_total:g} map attempts data-local)"
        )

    if tracer is not None and len(tracer):
        lines.append("")
        lines.append("spans:")
        per_cat: Dict[str, List[float]] = {}
        unfinished = 0
        for span in tracer.snapshot():
            if span.instant:
                continue
            if span.end is None:
                unfinished += 1
                continue
            per_cat.setdefault(span.cat or "default", []).append(
                span.end - span.start
            )
        rows = [
            [cat, f"{len(durs)}", f"{sum(durs):.6g}"]
            for cat, durs in sorted(per_cat.items())
        ]
        lines.extend(_table(["category", "count", "total_s"], rows))
        lines.append(f"spans.unfinished: {unfinished}")

    return "\n".join(lines)


def write_text_summary(
    registry: MetricsRegistry, path: str, tracer: Optional[Tracer] = None
) -> None:
    """Serialize :func:`text_summary` to *path*."""
    with open(path, "w") as fp:
        fp.write(text_summary(registry, tracer) + "\n")
