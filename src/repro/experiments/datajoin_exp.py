"""Figure 6: completion time of the data join application vs reducers.

The paper runs the Hadoop-contrib *data join* on 270 nodes with the
input fixed (two 320 MB files → 10 map chunks) and the number of
reducers swept 1…230, in two scenarios: the original framework on HDFS
(one output file per reducer) and the modified framework on BSFS (all
reducers append to one shared file). The measured completion time is
roughly constant in both scenarios "because data join is a
computation-intensive application".

This driver runs the *simulated* job: map and reduce tasks are DES
processes whose I/O flows through the same storage models as the
microbenchmarks and whose CPU time comes from the calibration constants
below. The CPU constants are the one thing we cannot derive from the
paper (it reports no per-phase breakdown); they are chosen so the
absolute completion time sits in the paper's plotted range (y-axis up
to 900 s) with the map phase dominant — which is exactly what the
paper asserts drives the flat shape. The *comparisons* (HDFS vs BSFS,
flatness in R, file counts) do not depend on the constants.

The functional twin of this experiment — the real framework executing
the real join on real bytes, output validated against an oracle — runs
at reduced scale in ``tests/apps/test_datajoin.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Sequence, Tuple

from typing import Optional

from ..common.config import ExperimentConfig
from ..common.units import MiB
from ..obs import NULL_OBS, Observability
from ..sim.core import Event
from .deploy import deploy_bsfs, deploy_hdfs, record_sim_counters


@dataclass(slots=True)
class DataJoinCalibration:
    """CPU-side constants of the simulated job (see module docstring)."""

    #: input volume per map task (the paper: 64 MB chunks, 10 mappers)
    chunk_bytes: int = 64 * MiB
    #: total input volume (two 320 MB files)
    input_bytes: int = 2 * 320 * MiB
    #: join output volume ("generates 6.3 GB of output data")
    output_bytes: int = int(6.3 * 1024 * MiB)
    #: seconds a mapper spends matching keys in one 64 MB chunk
    map_seconds_per_chunk: float = 500.0
    #: seconds of combining work per MiB of produced output (split over
    #: the reducers)
    reduce_seconds_per_output_mib: float = 0.02
    #: fixed per-task startup cost (JVM launch, heartbeat latency)
    task_overhead_seconds: float = 3.0
    #: intermediate (map-output) volume relative to the input
    intermediate_expansion: float = 1.0

    @property
    def n_map_tasks(self) -> int:
        return -(-self.input_bytes // self.chunk_bytes)


@dataclass(slots=True)
class DataJoinPoint:
    """One x-position of Figure 6."""

    n_reducers: int
    completion_seconds: float
    output_files: int
    scenario: str  # "hdfs-separate" | "bsfs-shared"


def _spread(total: int, parts: int) -> List[int]:
    """Split *total* bytes into *parts* near-equal positive chunks."""
    base = total // parts
    rem = total - base * parts
    return [base + (1 if i < rem else 0) for i in range(parts)]


def run_datajoin_hdfs(
    n_reducers: int,
    config: ExperimentConfig,
    calibration: DataJoinCalibration | None = None,
    obs: Optional[Observability] = None,
) -> DataJoinPoint:
    """One Figure 6 point, original framework + HDFS."""
    cal = calibration or DataJoinCalibration()
    obs = obs or NULL_OBS
    tracer = obs.tracer
    dep = deploy_hdfs(config, obs=obs)
    hdfs, cluster = dep.hdfs, dep.cluster
    env = cluster.env
    hdfs.preload("/join/input-a", cal.input_bytes // 2)
    hdfs.preload("/join/input-b", cal.input_bytes - cal.input_bytes // 2)

    # map tasks run data-local: on the datanode holding their chunk
    map_hosts: List[str] = []
    for path in ("/join/input-a", "/join/input-b"):
        for loc in hdfs.namenode.get_block_locations(path, 0, cal.input_bytes):
            map_hosts.append(loc.hosts[0])
    map_hosts = map_hosts[: cal.n_map_tasks]

    def map_task(host: str, path: str, offset: int) -> Generator[Event, None, None]:
        sp = tracer.start(
            "mr.map_task", cat="mapreduce", track=host, scenario="hdfs", path=path
        )
        yield env.timeout(cal.task_overhead_seconds)
        yield env.process(hdfs.read_proc(host, path, offset, cal.chunk_bytes))
        yield env.timeout(cal.map_seconds_per_chunk)
        # spill the map output to the local disk
        yield cluster.node(host).disk.write(
            int(cal.chunk_bytes * cal.intermediate_expansion)
        )
        sp.finish()

    def reduce_task(
        host: str, partition: int, out_bytes: int
    ) -> Generator[Event, None, None]:
        sp = tracer.start(
            "mr.reduce_task",
            cat="mapreduce",
            track=host,
            scenario="hdfs",
            partition=partition,
        )
        yield env.timeout(cal.task_overhead_seconds)
        sp_sh = tracer.start("mr.shuffle", cat="mapreduce", parent=sp)
        yield env.process(
            _shuffle(cluster, env, map_hosts, host, cal, n_reducers, partition)
        )
        sp_sh.finish(n_maps=len(map_hosts))
        yield env.timeout(
            cal.reduce_seconds_per_output_mib * (out_bytes / MiB)
        )
        yield env.process(
            hdfs.write_file_proc(host, f"/join/out/part-{partition:05d}", out_bytes)
        )
        sp.finish()

    completion = _run_job(
        env,
        dep.client_nodes,
        map_hosts,
        map_task,
        reduce_task,
        n_reducers,
        cal,
        input_paths=("/join/input-a", "/join/input-b"),
    )
    files = len(
        [s for s in hdfs.namenode.list_dir("/join/out") if not s.is_directory]
    )
    record_sim_counters(dep.cluster, obs)
    return DataJoinPoint(n_reducers, completion, files, "hdfs-separate")


def run_datajoin_bsfs(
    n_reducers: int,
    config: ExperimentConfig,
    calibration: DataJoinCalibration | None = None,
    obs: Optional[Observability] = None,
) -> DataJoinPoint:
    """One Figure 6 point, modified framework + BSFS (shared output file)."""
    cal = calibration or DataJoinCalibration()
    obs = obs or NULL_OBS
    tracer = obs.tracer
    dep = deploy_bsfs(config, obs=obs)
    bsfs, cluster = dep.bsfs, dep.cluster
    env = cluster.env
    env.run(env.process(bsfs.create_proc(dep.client_nodes[0], "/join/input-a")))
    env.run(env.process(bsfs.create_proc(dep.client_nodes[0], "/join/input-b")))
    bsfs.preload("/join/input-a", cal.input_bytes // 2)
    bsfs.preload("/join/input-b", cal.input_bytes - cal.input_bytes // 2)
    env.run(env.process(bsfs.create_proc(dep.client_nodes[0], "/join/out-shared")))

    map_hosts: List[str] = []
    for path in ("/join/input-a", "/join/input-b"):
        record = bsfs.namespace.get(path)
        for _off, _len, providers in bsfs.blobseer.layout(record.blob_id):
            map_hosts.append(providers[0])
    map_hosts = map_hosts[: cal.n_map_tasks]

    def map_task(host: str, path: str, offset: int) -> Generator[Event, None, None]:
        sp = tracer.start(
            "mr.map_task", cat="mapreduce", track=host, scenario="bsfs", path=path
        )
        yield env.timeout(cal.task_overhead_seconds)
        yield env.process(bsfs.read_proc(host, path, offset, cal.chunk_bytes))
        yield env.timeout(cal.map_seconds_per_chunk)
        yield cluster.node(host).disk.write(
            int(cal.chunk_bytes * cal.intermediate_expansion)
        )
        sp.finish()

    def reduce_task(
        host: str, partition: int, out_bytes: int
    ) -> Generator[Event, None, None]:
        sp = tracer.start(
            "mr.reduce_task",
            cat="mapreduce",
            track=host,
            scenario="bsfs",
            partition=partition,
        )
        yield env.timeout(cal.task_overhead_seconds)
        sp_sh = tracer.start("mr.shuffle", cat="mapreduce", parent=sp)
        yield env.process(
            _shuffle(cluster, env, map_hosts, host, cal, n_reducers, partition)
        )
        sp_sh.finish(n_maps=len(map_hosts))
        yield env.timeout(
            cal.reduce_seconds_per_output_mib * (out_bytes / MiB)
        )
        # the modified framework: append to the single shared file
        yield env.process(bsfs.append_proc(host, "/join/out-shared", out_bytes))
        sp.finish()

    completion = _run_job(
        env,
        dep.client_nodes,
        map_hosts,
        map_task,
        reduce_task,
        n_reducers,
        cal,
        input_paths=("/join/input-a", "/join/input-b"),
    )
    files = len(
        [s for s in bsfs.namespace.list_dir("/join") if not s.is_directory
         and "out" in s.path]
    )
    record_sim_counters(dep.cluster, obs)
    return DataJoinPoint(n_reducers, completion, files, "bsfs-shared")


def _shuffle(
    cluster, env, map_hosts: List[str], reducer_host: str,
    cal: DataJoinCalibration, n_reducers: int, partition: int,
) -> Generator[Event, None, None]:
    """One reducer fetching its partition of every map task's output.

    Each map task's intermediate output is split across the reducers
    with the remainder spread over the first partitions (like
    :func:`_spread`) — truncating to ``total // n_reducers`` for
    everyone used to drop the *entire* shuffle once reducers
    outnumbered intermediate bytes. All ``n_maps`` fetches start through
    the batch transfer API: they begin at the same simulated instant,
    so they cost one coalesced reallocation.
    """
    total = int(cal.chunk_bytes * cal.intermediate_expansion)
    base = total // n_reducers
    per_map = base + (1 if partition < total - base * n_reducers else 0)
    if per_map <= 0:
        return
    transfers = cluster.network.transfer_many(
        (host, reducer_host, per_map) for host in map_hosts
    )
    yield env.all_of(transfers)


def _run_job(
    env,
    tracker_hosts: List[str],
    map_hosts: List[str],
    map_task,
    reduce_task,
    n_reducers: int,
    cal: DataJoinCalibration,
    input_paths: Tuple[str, str],
) -> float:
    """Drive map phase → barrier → reduce phase; returns the makespan."""
    start = env.now
    half = cal.input_bytes // 2

    def job() -> Generator[Event, None, None]:
        # map phase: one task per input chunk, on the chunk's holder
        maps = []
        for i, host in enumerate(map_hosts):
            path = input_paths[0] if i * cal.chunk_bytes < half else input_paths[1]
            offset = (
                i * cal.chunk_bytes
                if i * cal.chunk_bytes < half
                else i * cal.chunk_bytes - half
            )
            maps.append(env.process(map_task(host, path, offset), name=f"map-{i}"))
        yield env.all_of(maps)
        # reduce phase: round-robin over the tasktracker machines, in
        # waves bounded by the cluster's reduce slots
        out_sizes = _spread(cal.output_bytes, n_reducers)
        slots = max(1, 2 * len(tracker_hosts))  # 2 reduce slots per node
        partition = 0
        while partition < n_reducers:
            wave = []
            for _ in range(min(slots, n_reducers - partition)):
                host = tracker_hosts[partition % len(tracker_hosts)]
                wave.append(
                    env.process(
                        reduce_task(host, partition, out_sizes[partition]),
                        name=f"reduce-{partition}",
                    )
                )
                partition += 1
            yield env.all_of(wave)

    env.run(env.process(job(), name="datajoin-job"))
    return env.now - start


def sweep(
    reducer_counts: Sequence[int],
    config: ExperimentConfig,
    calibration: DataJoinCalibration | None = None,
    obs: Optional[Observability] = None,
) -> Tuple[List[DataJoinPoint], List[DataJoinPoint]]:
    """Figure 6's two series: (HDFS-separate, BSFS-shared)."""
    hdfs_pts = [
        run_datajoin_hdfs(r, config, calibration, obs=obs) for r in reducer_counts
    ]
    bsfs_pts = [
        run_datajoin_bsfs(r, config, calibration, obs=obs) for r in reducer_counts
    ]
    return hdfs_pts, bsfs_pts
