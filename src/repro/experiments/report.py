"""Result containers and plain-text rendering for regenerated figures."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(slots=True)
class Series:
    """One line of a figure: (x, y) points plus a label."""

    label: str
    xs: List[float]
    ys: List[float]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must have equal length")

    def flatness(self) -> float:
        """min/max ratio of the y values (1.0 = perfectly flat)."""
        if not self.ys:
            return 1.0
        top = max(self.ys)
        return (min(self.ys) / top) if top > 0 else 1.0


@dataclass(slots=True)
class FigureResult:
    """A regenerated table/figure, ready to print or serialize."""

    fig_id: str
    title: str
    xlabel: str
    ylabel: str
    series: List[Series] = field(default_factory=list)
    #: what the paper reports for this figure, for EXPERIMENTS.md
    paper_claim: str = ""
    notes: str = ""

    def to_text(self) -> str:
        """Aligned plain-text table of every series."""
        lines = [f"== {self.fig_id}: {self.title} =="]
        if self.paper_claim:
            lines.append(f"paper: {self.paper_claim}")
        header = [self.xlabel] + [s.label for s in self.series]
        xs = self.series[0].xs if self.series else []
        rows = []
        for i, x in enumerate(xs):
            row = [f"{x:g}"]
            for s in self.series:
                row.append(f"{s.ys[i]:.1f}")
            rows.append(row)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
            for c in range(len(header))
        ]
        lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_ascii_chart(self, width: int = 60, height: int = 12) -> str:
        """A terminal scatter/line chart of every series.

        Y always starts at zero (throughput/latency charts mislead
        otherwise); series are marked with distinct glyphs.
        """
        if not self.series or not self.series[0].xs:
            return "(no data)"
        glyphs = "*o+x#@"
        xs_all = [x for s in self.series for x in s.xs]
        ys_all = [y for s in self.series for y in s.ys]
        x_lo, x_hi = min(xs_all), max(xs_all)
        y_hi = max(ys_all) or 1.0
        span_x = (x_hi - x_lo) or 1.0
        grid = [[" "] * width for _ in range(height)]
        for si, series in enumerate(self.series):
            glyph = glyphs[si % len(glyphs)]
            for x, y in zip(series.xs, series.ys):
                col = int((x - x_lo) / span_x * (width - 1))
                row = (height - 1) - int(max(y, 0.0) / y_hi * (height - 1))
                grid[row][col] = glyph
        lines = [f"{self.title}  [{self.ylabel}; max={y_hi:g}]"]
        for row in grid:
            lines.append("|" + "".join(row))
        lines.append("+" + "-" * width)
        lines.append(
            f" {self.xlabel}: {x_lo:g} .. {x_hi:g}    "
            + "  ".join(
                f"{glyphs[i % len(glyphs)]}={s.label}"
                for i, s in enumerate(self.series)
            )
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-serializable form."""
        return {
            "fig_id": self.fig_id,
            "title": self.title,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "paper_claim": self.paper_claim,
            "notes": self.notes,
            "series": [
                {"label": s.label, "xs": s.xs, "ys": s.ys} for s in self.series
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)
