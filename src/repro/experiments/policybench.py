"""The policy-matrix benchmark — storage-plane policies under workloads.

The storage plane is now policy-driven along two axes: *where replicas
land* (:mod:`repro.blobseer.placement` — round-robin, least-loaded,
rack-aware) and *how reads pick replicas*
(:mod:`repro.engine.replica` — rotated-sweep failover or R-of-N quorum
reads). This experiment runs the full cross product through three
workload columns and publishes the grid into ``BENCH_sim.json``
(``policy_matrix`` section, schema v6):

* **wordcount** — the paper's Map/Reduce integration on the threaded
  runtime: corpus in, counts out (verified against an oracle), plus the
  locality fraction and placement imbalance the policy produced;
* **append** — a DES open-loop burst of concurrent appenders on a
  multi-rack cluster: makespan, simulated events, and load imbalance;
* **chaos** — crash a replica holder mid-workload with adaptive
  re-replication on: does the daemon restore the replica count, and do
  reads keep working (plus how many quorum reads were issued)?

An ``engines`` section smoke-runs the most adversarial combination
(rack-aware placement + quorum reads) end-to-end on all three runtimes
— DES, threaded, asyncio — as the cross-engine acceptance check.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional

from ..common.config import BlobSeerConfig, ClusterConfig
from ..common.units import KiB, MiB
from ..engine.base import Payload
from ..obs import Observability
from ..workloads import text_corpus

#: the policy grid (placement x read) every workload column runs
PLACEMENT_POLICIES = ("round_robin", "least_loaded", "rack_aware")
READ_POLICIES = ("sweep", "quorum")

PAGE = 64 * KiB


def _obs() -> Observability:
    from .bench import _bench_obs

    return _bench_obs()


def _policy_config(placement: str, read: str, **kw) -> BlobSeerConfig:
    defaults = dict(
        page_size=PAGE,
        metadata_providers=3,
        replication=2,
        placement_policy=placement,
        read_policy=read,
        read_quorum=2,
    )
    defaults.update(kw)
    cfg = BlobSeerConfig(**defaults)
    cfg.validate()
    return cfg


# -- column 1: wordcount on the threaded runtime ------------------------------


def run_wordcount_cell(
    placement: str, read: str, corpus_bytes: int = 20_000
) -> Dict[str, object]:
    """Word count through BSFS under one policy pair (threaded engine)."""
    from collections import Counter

    from ..apps import parse_counts, run_wordcount
    from ..blobseer.client import BlobSeerService
    from ..bsfs import BSFS
    from ..mapreduce import MapReduceCluster

    n_providers = 6
    names = [f"provider-{i:03d}" for i in range(n_providers)]
    # three racks of two: enough for rack-aware to bind with repl=2
    topology = {name: f"rack-{i % 3}" for i, name in enumerate(names)}
    obs = _obs()
    service = BlobSeerService(
        config=_policy_config(placement, read, page_size=4 * KiB),
        n_providers=n_providers,
        seed=11,
        obs=obs,
        topology=topology,
    )
    dep = BSFS(service=service, obs=obs)
    fs = dep.file_system()
    corpus = text_corpus(corpus_bytes, seed=9)
    fs.write_all("/in/doc", corpus)
    mr = MapReduceCluster(fs, hosts=names)
    t0 = time.perf_counter()
    result = run_wordcount(mr, ["/in/doc"], "/out", n_reducers=3)
    wall = time.perf_counter() - t0
    counts = parse_counts(
        b"".join(fs.read_all(p) for p in result.output_files)
    )
    correct = counts == dict(Counter(corpus.split()))
    snapshot = obs.registry.snapshot()["counters"]
    service.close()
    return {
        "ok": bool(correct),
        "wall_s": wall,
        "locality": mr.last_job.locality_fraction(),
        "imbalance": service.provider_manager.imbalance(),
        "quorum_reads": int(snapshot.get("placement.quorum_reads", 0)),
    }


# -- column 2: open-loop append burst on the DES ------------------------------


def _sim_deployment(placement: str, read: str, obs, **cfg_kw):
    from ..blobseer.simulated import BlobSeerRoles, SimBlobSeer
    from ..sim.cluster import SimCluster

    cluster = SimCluster(
        ClusterConfig(
            nodes=18, racks=3, rack_bandwidth=4 * 1150.0 * MiB, seed=5
        ),
        obs=obs,
    )
    names = cluster.names()
    roles = BlobSeerRoles(
        version_manager=names[0],
        provider_manager=names[1],
        metadata_providers=tuple(names[2:5]),
        data_providers=tuple(names[5:14]),
    )
    sb = SimBlobSeer(
        cluster, roles, _policy_config(placement, read, **cfg_kw), obs=obs
    )
    clients = list(names[14:18])
    return cluster, sb, clients


def run_append_cell(
    placement: str, read: str, appends_per_client: int = 6
) -> Dict[str, object]:
    """Concurrent appenders + read-back on the DES under one policy pair."""
    obs = _obs()
    cluster, sb, clients = _sim_deployment(placement, read, obs)
    env = cluster.env
    blob = sb.create_blob()
    nbytes = 4 * PAGE
    t0 = time.perf_counter()
    for client in clients:
        def burst(client=client):
            for _ in range(appends_per_client):
                yield from sb.append_proc(client, blob, nbytes)

        env.process(burst())
    env.run()
    total = len(clients) * appends_per_client * nbytes
    for client in clients:
        env.process(sb.read_proc(client, blob, 0, total))
    env.run()
    wall = time.perf_counter() - t0
    from .deploy import record_sim_counters

    record_sim_counters(cluster, obs)
    counters = obs.registry.snapshot()["counters"]
    sim_events = int(counters.get("sim.kernel.events", 0))
    # every policy must spread replicas across racks' worth of providers
    loads = sb.provider_manager.load_snapshot()
    return {
        "ok": all(v > 0 for v in loads.values()),
        "makespan_s": env.now,
        "wall_s": wall,
        "sim_events": sim_events,
        "events_per_s": sim_events / wall if wall > 0 else 0.0,
        "imbalance": sb.provider_manager.imbalance(),
        "quorum_reads": int(counters.get("placement.quorum_reads", 0)),
    }


# -- column 3: crash + adaptive re-replication --------------------------------


def run_chaos_cell(placement: str, read: str) -> Dict[str, object]:
    """Crash a replica holder under re-replication; the daemon must
    restore the live replica count and reads must keep succeeding."""
    from ..blobseer.client import BlobSeerService

    n_providers = 6
    names = [f"provider-{i:03d}" for i in range(n_providers)]
    topology = {name: f"rack-{i % 3}" for i, name in enumerate(names)}
    obs = _obs()
    service = BlobSeerService(
        config=_policy_config(
            placement,
            read,
            rereplication=True,
            hot_page_threshold=3,
            rereplication_max=3,
        ),
        n_providers=n_providers,
        seed=13,
        obs=obs,
        topology=topology,
    )
    client = service.client("chaos-client")
    blob = client.create_blob()
    payload = b"c" * (3 * PAGE)
    client.append(blob, payload)
    directory = service.protocol.directory
    page_ids = list(directory._pages)

    def live_counts() -> List[int]:
        return [
            sum(
                1
                for p in directory.providers_for(pid, ())
                if not service.engine.is_down(p)
            )
            for pid in page_ids
        ]

    before = min(live_counts())
    victim = directory.providers_for(page_ids[0], ())[0]
    service.fail_provider(victim)
    after_crash = min(live_counts())
    copies = service.rereplicate_once()
    after_repair = min(live_counts())
    read_ok = client.read(blob, 0, len(payload)) == payload
    counters = obs.registry.snapshot()["counters"]
    service.close()
    return {
        "ok": bool(read_ok and after_repair >= before),
        "replicas_before": before,
        "replicas_after_crash": after_crash,
        "replicas_after_repair": after_repair,
        "rereplications": copies,
        "quorum_reads": int(counters.get("placement.quorum_reads", 0)),
    }


# -- cross-engine smoke -------------------------------------------------------


def run_engine_smoke(
    placement: str = "rack_aware", read: str = "quorum"
) -> Dict[str, Dict[str, object]]:
    """The hardest policy pair end-to-end on DES, threaded, and asyncio."""
    import asyncio

    from ..blobseer.client import BlobSeerService
    from ..engine.aio import AsyncioEngine

    results: Dict[str, Dict[str, object]] = {}
    payload = b"e" * (2 * PAGE + 123)

    obs = _obs()
    cluster, sb, clients = _sim_deployment(placement, read, obs)
    env = cluster.env
    blob = sb.create_blob()
    env.run(env.process(sb.append_proc(clients[0], blob, len(payload))))
    version = env.run(
        env.process(sb.read_proc(clients[1], blob, 0, len(payload)))
    )
    results["des"] = {"ok": version == 1, "makespan_s": env.now}

    names = [f"provider-{i:03d}" for i in range(6)]
    topology = {name: f"rack-{i % 3}" for i, name in enumerate(names)}
    for engine_name in ("threaded", "asyncio"):
        engine = (
            AsyncioEngine(seed=3) if engine_name == "asyncio" else None
        )
        service = BlobSeerService(
            config=_policy_config(placement, read),
            n_providers=6,
            seed=3,
            engine=engine,
            topology=topology,
        )
        blob = service.version_manager.create_blob(PAGE)
        gen = service.protocol.append("client", blob, Payload(payload))
        if engine_name == "asyncio":
            version, _off = asyncio.run(service.engine.run(gen))
            _v, data = asyncio.run(
                service.engine.run(
                    service.protocol.read("client", blob, 0, len(payload))
                )
            )
        else:
            version, _off = service.engine.run(gen)
            _v, data = service.engine.run(
                service.protocol.read("client", blob, 0, len(payload))
            )
        results[engine_name] = {
            "ok": version == 1 and data == payload,
        }
        service.close()
        if engine_name == "asyncio":
            service.engine.close()
    return results


# -- the matrix ---------------------------------------------------------------


def run_policy_matrix(scale: str = "quick") -> Dict[str, object]:
    """The full {placement} x {read} x {workload} grid, JSON-ready."""
    corpus_bytes = 20_000 if scale == "quick" else 120_000
    appends = 6 if scale == "quick" else 24
    cells: List[Dict[str, object]] = []
    for placement in PLACEMENT_POLICIES:
        for read in READ_POLICIES:
            cells.append(
                {
                    "placement": placement,
                    "read": read,
                    "wordcount": run_wordcount_cell(
                        placement, read, corpus_bytes=corpus_bytes
                    ),
                    "append": run_append_cell(
                        placement, read, appends_per_client=appends
                    ),
                    "chaos": run_chaos_cell(placement, read),
                }
            )
    return {
        "placement_policies": list(PLACEMENT_POLICIES),
        "read_policies": list(READ_POLICIES),
        "cells": cells,
        "engines": run_engine_smoke(),
    }


def matrix_text(doc: Dict[str, object]) -> str:
    """Human-readable grid summary for the CLI."""
    lines = ["placement      read    wc-ok locality  append-ok imbalance "
             "chaos-ok repaired"]
    for cell in doc["cells"]:
        wc, ap, ch = cell["wordcount"], cell["append"], cell["chaos"]
        lines.append(
            f"{cell['placement']:<14} {cell['read']:<7} "
            f"{str(wc['ok']):<5} {wc['locality']:<9.2f} "
            f"{str(ap['ok']):<9} {ap['imbalance']:<9.3f} "
            f"{str(ch['ok']):<8} "
            f"{ch['replicas_after_crash']}->{ch['replicas_after_repair']}"
        )
    engines = doc["engines"]
    lines.append(
        "engines (rack_aware+quorum): "
        + ", ".join(f"{k}={v['ok']}" for k, v in engines.items())
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: run the matrix, print the grid, optionally write JSON.

    Exits non-zero when any cell (or engine smoke) reports ``ok:
    false`` — the CI named gate."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="quick", choices=("quick", "paper"))
    parser.add_argument("--json", metavar="PATH", default=None)
    args = parser.parse_args(argv)
    doc = run_policy_matrix(scale=args.scale)
    print(matrix_text(doc))
    if args.json:
        with open(args.json, "w") as fp:
            json.dump(doc, fp, indent=2)
            fp.write("\n")
        print(f"wrote {args.json}")
    ok = all(
        cell[col]["ok"]
        for cell in doc["cells"]
        for col in ("wordcount", "append", "chaos")
    ) and all(e["ok"] for e in doc["engines"].values())
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
