"""Open-loop concurrent-append scale experiment — Figure 8 (beyond the
paper).

The paper's evaluation is *closed-loop*: N clients in lock-step, each
issuing its next append only after the previous one returned. Closed
loops cannot overload a system — the offered rate implicitly throttles
to the service rate — so they cannot locate the capacity knee. Figure 8
instead offers load on an **open loop**: a Poisson arrival schedule
(:func:`~repro.workloads.generators.poisson_arrivals`) fixed up front,
swept across offered rates, with tens of thousands of *flyweight*
clients — integer ids on a shared schedule, one protocol generator
spawned per in-flight op, never one long-lived process per client. The
deployment runs on a multi-rack topology (two-level fabric; see
:meth:`~repro.sim.network.Network.add_rack`).

The reported curve is goodput and p99 append latency versus offered
load. The knee sits where the metadata plane's serialized sections
saturate: below it goodput tracks the offered load and p99 stays near
the lone-append latency; beyond it goodput flattens at capacity and p99
grows with the backlog. The sweep deploys the metadata fast path (group
commit, node/record caches — see ``_rack_config``), which amortizes the
per-append version-manager and namespace-manager round trips over
publish batches and lifts the knee well past the classic serialized
bound of ``1 / (2 * namespace_rpc_time)`` appends/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Generator, List, Optional, Sequence

import numpy as np

from ..common.config import ExperimentConfig
from ..common.units import MiB
from ..obs import Observability
from ..sim.core import Event
from ..workloads.generators import (
    ArrivalProcess,
    lastfm_arrivals,
    poisson_arrivals,
)
from .deploy import deploy_bsfs, record_sim_counters

#: bytes appended per open-loop op — small enough that the version
#: manager's critical section, not the data path, is the capacity knee
#: (the regime the shared-output-file design must survive)
OP_BYTES = 1 * MiB

#: shared output files the flyweight clients append to (the modified
#: framework's pattern: many writers, few files). 32 keeps per-file
#: version chains short enough that the metadata overlay walk does not
#: dominate the overloaded points, while the knee itself — set by the
#: version manager's serialized assignment — is independent of it.
N_SHARD_FILES = 32

#: default multi-rack shape when the caller's config is flat: racks of
#: 30 nodes on 4x-NIC uplinks (a 7.5:1 oversubscribed two-level tree)
DEFAULT_RACKS = 9
RACK_UPLINK_NICS = 4.0


@dataclass(slots=True)
class OpenLoopPoint:
    """One offered-load position of the sweep."""

    offered_ops_s: float
    #: ops in the arrival schedule / distinct flyweight clients touched
    ops: int
    clients: int
    #: completed ops over the full drain span (arrival start -> last
    #: completion), ops/s
    goodput_ops_s: float
    p50_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    makespan_s: float
    latencies_s: List[float] = field(default_factory=list, repr=False)


#: node-cache entries per client stack in the open-loop deployment: a
#: few thousand nodes hold every hot root-reachable prefix of the 32
#: shard files without approaching the DHT's full contents
MD_CACHE_NODES = 4096


def _rack_config(config: ExperimentConfig) -> ExperimentConfig:
    """The sweep's deployment config: the caller's, lifted onto a
    multi-rack topology when it is still flat, with the metadata-plane
    fast path switched on (group commit + node/record caches) — the
    regime this experiment exists to measure."""
    cluster = config.cluster
    if cluster.racks == 0:
        cluster = replace(
            cluster,
            racks=DEFAULT_RACKS,
            rack_bandwidth=RACK_UPLINK_NICS * cluster.nic_bandwidth,
        )
    blobseer = config.blobseer
    if not blobseer.group_commit:
        blobseer = replace(
            blobseer,
            group_commit=True,
            md_cache_nodes=max(blobseer.md_cache_nodes, MD_CACHE_NODES),
            ns_record_cache=True,
        )
    return ExperimentConfig(
        cluster=cluster,
        blobseer=blobseer,
        hdfs=config.hdfs,
        mapreduce=config.mapreduce,
        repetitions=config.repetitions,
    )


def run_open_loop(
    config: ExperimentConfig,
    schedule: ArrivalProcess,
    append_bytes: int = OP_BYTES,
    n_files: int = N_SHARD_FILES,
    obs: Optional[Observability] = None,
) -> OpenLoopPoint:
    """Offer *schedule* to a fresh BSFS deployment; drain; measure.

    One driver process walks the schedule and spawns a fresh
    (short-lived) append generator per arrival — the flyweight-client
    pattern — mapping client ids round-robin onto the provider machines
    and onto *n_files* shared shard files. Latency is arrival-to-commit
    per op; goodput is completions over the full span including the
    post-arrival backlog drain, so an overloaded point reports service
    capacity rather than the offered rate.
    """
    dep = deploy_bsfs(config, obs=obs)
    bsfs = dep.bsfs
    env = dep.cluster.env
    nodes = dep.client_nodes
    n_nodes = len(nodes)
    files = [f"/openloop/shard-{i:02d}" for i in range(n_files)]
    for path in files:
        env.run(env.process(bsfs.create_proc(nodes[0], path)))
    latencies: List[float] = []
    record = latencies.append
    n_ops = len(schedule)
    all_done = Event(env)

    def op_done(_ev: Event, start: float) -> None:
        record(env.now - start)
        if len(latencies) == n_ops:
            all_done.succeed(None)

    def driver() -> Generator[Event, None, None]:
        timeout = env.timeout
        process = env.process
        append_proc = bsfs.append_proc
        for t, cid in schedule:
            dt = t - env.now
            if dt > 0.0:
                yield timeout(dt)
            start = env.now
            op = process(
                append_proc(
                    nodes[cid % n_nodes], files[cid % n_files], append_bytes
                )
            )
            op.callbacks.append(lambda ev, s=start: op_done(ev, s))

    t0 = env.now
    env.run(env.process(driver(), name="openloop-driver"))
    # arrivals done; wait out the backlog of in-flight ops. The stop
    # condition is the last op's commit, NOT a full queue drain — the
    # deployment keeps e.g. 30 s append-lease timers armed past the last
    # completion, and idling up to them would dilute the goodput.
    if n_ops and len(latencies) < n_ops:
        env.run(all_done)
    record_sim_counters(dep.cluster, obs)
    makespan = env.now - t0
    lat = np.asarray(latencies, dtype=np.float64)
    ops = len(schedule)
    return OpenLoopPoint(
        offered_ops_s=schedule.offered_load(),
        ops=ops,
        clients=schedule.distinct_clients,
        goodput_ops_s=len(lat) / makespan if makespan > 0 else 0.0,
        p50_latency_s=float(np.percentile(lat, 50)) if len(lat) else 0.0,
        p99_latency_s=float(np.percentile(lat, 99)) if len(lat) else 0.0,
        mean_latency_s=float(lat.mean()) if len(lat) else 0.0,
        makespan_s=makespan,
        latencies_s=[float(x) for x in lat],
    )


def open_loop_sweep(
    offered_loads: Sequence[float],
    config: ExperimentConfig,
    duration: float,
    n_clients: int,
    append_bytes: int = OP_BYTES,
    n_files: int = N_SHARD_FILES,
    arrivals: str = "poisson",
    obs: Optional[Observability] = None,
) -> List[OpenLoopPoint]:
    """Sweep offered load (ops/s) over fresh multi-rack deployments.

    *arrivals* selects the schedule family: ``"poisson"`` (memoryless
    open loop, the default) or ``"lastfm"`` (synthetic trace replay with
    Zipf-skewed client activity).
    """
    if arrivals not in ("poisson", "lastfm"):
        raise ValueError(f"unknown arrival process {arrivals!r}")
    cfg = _rack_config(config)
    cfg.validate()
    points: List[OpenLoopPoint] = []
    for rate in offered_loads:
        if rate <= 0:
            raise ValueError("offered loads must be positive")
        if arrivals == "poisson":
            schedule = poisson_arrivals(
                rate, duration, n_clients, seed=cfg.cluster.seed
            )
        else:
            schedule = lastfm_arrivals(
                int(round(rate * duration)),
                n_clients,
                duration,
                seed=cfg.cluster.seed,
            )
        points.append(
            run_open_loop(
                cfg,
                schedule,
                append_bytes=append_bytes,
                n_files=n_files,
                obs=obs,
            )
        )
    return points


def find_knee(points: Sequence[OpenLoopPoint]) -> Optional[OpenLoopPoint]:
    """The first sweep point past *sustained* saturation (None while the
    system keeps up).

    A point is short when its goodput is under 90% of the offered load,
    but one noisy mid-sweep dip on an otherwise-keeping-up sweep is not
    a knee: the shortfall must persist — either for the remainder of the
    sweep or for at least two consecutive points. A lone short *final*
    point still qualifies (the remainder-of-sweep condition is trivially
    met at the highest offered load, which is where real saturation
    shows up first).
    """
    short = [p.goodput_ops_s < 0.9 * p.offered_ops_s for p in points]
    n = len(short)
    for i, is_short in enumerate(short):
        if not is_short:
            continue
        if all(short[i:]) or (i + 1 < n and short[i + 1]):
            return points[i]
    return None
