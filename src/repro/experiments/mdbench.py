"""Metadata-plane microbenchmarks — tree algebra throughput, no cluster.

The figure benches measure whole-stack wall time; the fig8 knee measures
simulated capacity. This module isolates the *in-process* cost of the
metadata tree algebra itself — the code every append and read runs
between engine ops — by driving
:mod:`repro.blobseer.metadata.segment_tree` against a bare
:class:`~repro.blobseer.metadata.dht.MetadataDHT`. Three scenarios:

* ``build`` — a long append history published one version at a time
  (the classic path): per-version tree builds over a growing capacity.
* ``query`` — random range reads against the history's final version:
  the read path's ``query_pages`` walk.
* ``batch`` — the same append history published in group-commit batches
  through :func:`~repro.blobseer.metadata.segment_tree.build_versions_batch`:
  the fast path's merged builds (fewer node writes for the same
  history; the ``node_ops`` field makes the saving visible).

Results ride along in ``BENCH_sim.json`` (schema v4) under
``metadata_microbench`` and are gated by the perf-smoke baseline.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..blobseer.metadata.dht import MetadataDHT
from ..blobseer.metadata.segment_tree import (
    NodeKey,
    build_version,
    build_versions_batch,
    capacity_for,
    query_pages,
)
from ..blobseer.pages import Fragment, fresh_page_id

#: appends in the benchmark history (final tree: ~8k pages, depth 13)
DEFAULT_VERSIONS = 2000

#: pages written per append — a few-page contiguous run, the shape the
#: open-loop experiment produces (1 MiB ops over sub-MiB pages)
PAGES_PER_APPEND = 4

#: range queries timed in the ``query`` scenario
DEFAULT_QUERIES = 4000

#: pages per timed range query
QUERY_SPAN = 64

#: versions per publish batch in the ``batch`` scenario
BATCH_SIZE = 8

#: metadata providers backing the benchmark DHT
N_PROVIDERS = 16

SCENARIOS = ("build", "query", "batch")


@dataclass(slots=True)
class MdBenchResult:
    """One scenario's best-of-repeats measurement."""

    scenario: str
    #: operations timed: versions published (build/batch) or queries run
    ops: int
    wall_s: float
    ops_per_s: float
    #: DHT node accesses (gets + puts) the scenario performed
    node_ops: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "ops": self.ops,
            "wall_s": self.wall_s,
            "ops_per_s": self.ops_per_s,
            "node_ops": self.node_ops,
        }


def _changes(version: int, pages: range) -> Dict[int, Tuple[Fragment, ...]]:
    page_id = fresh_page_id(1, f"v{version}")
    return {
        p: (Fragment(0, 4096, page_id, 0, ("p0",)),) for p in pages
    }


def _history(n_versions: int) -> List[Tuple[int, Dict[int, tuple]]]:
    """The benchmark's append history: version v writes the contiguous
    run of ``PAGES_PER_APPEND`` pages starting where v-1 stopped."""
    out = []
    for v in range(1, n_versions + 1):
        start = (v - 1) * PAGES_PER_APPEND
        out.append((v, _changes(v, range(start, start + PAGES_PER_APPEND))))
    return out


def _node_ops(dht: MetadataDHT) -> int:
    return sum(dht.gets) + sum(dht.puts)


def _build_sequential(
    dht: MetadataDHT, history: Sequence[Tuple[int, Dict[int, tuple]]]
) -> NodeKey:
    root, cap = None, 0
    for v, changes in history:
        new_cap = capacity_for(v * PAGES_PER_APPEND)
        root = build_version(dht, 1, v, root, cap, changes, new_cap)
        cap = new_cap
    assert root is not None
    return root


def _run_scenario(scenario: str, n_versions: int) -> MdBenchResult:
    history = _history(n_versions)
    dht = MetadataDHT(N_PROVIDERS)
    if scenario == "build":
        t0 = time.perf_counter()
        _build_sequential(dht, history)
        wall = time.perf_counter() - t0
        ops = n_versions
    elif scenario == "query":
        root = _build_sequential(dht, history)
        ops_before = _node_ops(dht)
        n_pages = n_versions * PAGES_PER_APPEND
        rng = random.Random(20100621)
        starts = [
            rng.randrange(0, max(1, n_pages - QUERY_SPAN))
            for _ in range(DEFAULT_QUERIES)
        ]
        t0 = time.perf_counter()
        for lo in starts:
            query_pages(dht, root, lo, lo + QUERY_SPAN)
        wall = time.perf_counter() - t0
        ops = DEFAULT_QUERIES
        return MdBenchResult(
            scenario=scenario,
            ops=ops,
            wall_s=wall,
            ops_per_s=ops / wall if wall > 0 else 0.0,
            node_ops=_node_ops(dht) - ops_before,
        )
    elif scenario == "batch":
        t0 = time.perf_counter()
        root, cap = None, 0
        for i in range(0, len(history), BATCH_SIZE):
            batch = history[i : i + BATCH_SIZE]
            last_v = batch[-1][0]
            new_cap = capacity_for(last_v * PAGES_PER_APPEND)
            root = build_versions_batch(dht, 1, batch, root, cap, new_cap)
            cap = new_cap
        wall = time.perf_counter() - t0
        ops = n_versions
    else:
        raise ValueError(f"unknown metadata scenario {scenario!r}")
    return MdBenchResult(
        scenario=scenario,
        ops=ops,
        wall_s=wall,
        ops_per_s=ops / wall if wall > 0 else 0.0,
        node_ops=_node_ops(dht),
    )


def bench_metadata(
    scenario: str, n_versions: int = DEFAULT_VERSIONS, repeats: int = 3
) -> MdBenchResult:
    """Best-of-*repeats* throughput of one scenario (fresh DHT each)."""
    if n_versions < 1:
        raise ValueError("n_versions must be positive")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best: MdBenchResult | None = None
    for _ in range(repeats):
        res = _run_scenario(scenario, n_versions)
        if best is None or res.wall_s < best.wall_s:
            best = res
    assert best is not None
    return best


def run_metadata_bench(
    scenarios: Sequence[str] = SCENARIOS,
    n_versions: int = DEFAULT_VERSIONS,
    repeats: int = 3,
) -> List[MdBenchResult]:
    """Measure every scenario; returns them in the given order."""
    return [
        bench_metadata(s, n_versions=n_versions, repeats=repeats)
        for s in scenarios
    ]
