"""``repro-fig`` — regenerate the paper's figures from the command line.

Examples::

    repro-fig fig3                  # quick sweep of Figure 3
    repro-fig fig6 --scale paper    # full-scale Figure 6 (minutes)
    repro-fig all --json out.json   # everything, also saved as JSON
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..obs import (
    Observability,
    text_summary,
    write_chrome_trace,
    write_text_summary,
)
from .figures import ALL_FIGURES, fig3, fig4, fig5, fig6, filecount_table


def _suffixed(path: str, name: str, multi: bool) -> str:
    """``out.json`` -> ``out-fig3.json`` when several figures run."""
    if not multi:
        return path
    root, ext = os.path.splitext(path)
    return f"{root}-{name}{ext}"


def main(argv: List[str] | None = None) -> int:
    """Entry point: argument errors (bad figure names) exit 2 through
    argparse's usage message, and Ctrl-C exits 130 with a one-line
    notice — a long figure run interrupted at the terminal must never
    splash a raw ``KeyboardInterrupt`` traceback."""
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


def _main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fig",
        description=(
            "Regenerate the evaluation figures of 'Improving the Hadoop "
            "Map/Reduce Framework to Support Concurrent Appends through "
            "the BlobSeer BLOB management system' (HPDC'10)."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "paper"],
        default="quick",
        help="sweep density and repetitions (default: quick)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as JSON to PATH",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        metavar="N",
        help="repetitions per data point (default: 1 quick / 5 paper)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each figure as an ASCII chart",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "capture spans while the figure runs and write a Chrome "
            "trace_event JSON to PATH (load it in chrome://tracing or "
            "ui.perfetto.dev); with multiple figures the figure name is "
            "appended to the file name"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "write the plain-text metrics summary (counters, histogram "
            "percentiles, cache hit-rate) to PATH; implies collection "
            "even without --trace"
        ),
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help=(
            "write a JSON run report to PATH (critical-path layer "
            "breakdown, latency percentiles, counters, fault timeline) "
            "and print its text rendering; implies collection even "
            "without --trace"
        ),
    )
    parser.add_argument(
        "--allocator",
        choices=["incremental", "reference"],
        default=None,
        help=(
            "override the network rate allocator (default: the config's, "
            "i.e. incremental); 'reference' is the O(flows) full-recompute "
            "oracle kept for differential testing"
        ),
    )
    parser.add_argument(
        "--bench-out",
        metavar="PATH",
        default=None,
        help=(
            "benchmark mode: instead of printing figures, time the "
            "selected DES figures under BOTH allocators and write "
            "BENCH_sim.json (wall time, simulated events/sec, realloc "
            "counts, speedups) to PATH"
        ),
    )
    parser.add_argument(
        "--bench-repeats",
        type=int,
        default=3,
        metavar="N",
        help="benchmark mode: wall time is the best of N runs (default: 3)",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help=(
            "run each figure under cProfile, dump pstats data to "
            "PATH (figure name appended when several figures run) and "
            "print the top functions by cumulative time"
        ),
    )
    args = parser.parse_args(argv)

    config = None
    if args.reps is not None or args.allocator is not None:
        from dataclasses import replace

        from ..common.config import ExperimentConfig

        config = ExperimentConfig()
        if args.reps is not None:
            config.repetitions = args.reps
        elif args.scale == "quick":
            config.repetitions = 1
        if args.allocator is not None:
            config.cluster = replace(config.cluster, allocator=args.allocator)

    if args.bench_out is not None:
        if args.profile is not None:
            print(
                "--profile distorts wall times; run it without "
                "--bench-out",
                file=sys.stderr,
            )
            return 2
        return _bench_main(args, config)

    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    observe = (
        args.trace is not None
        or args.metrics_out is not None
        or args.report is not None
    )
    multi = len(names) > 1
    results = []
    for name in names:
        fn = ALL_FIGURES[name]
        # one fresh Observability per figure: each figure binds the
        # tracer clock to its own runtime (sim time vs wall clock)
        obs: Optional[Observability] = Observability.on() if observe else None
        if args.profile is not None:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
        if name == "filecount":
            result = fn(obs=obs)
        else:
            result = fn(scale=args.scale, config=config, obs=obs)
        if args.profile is not None:
            profiler.disable()
            profile_path = _suffixed(args.profile, name, multi)
            profiler.dump_stats(profile_path)
            stats = pstats.Stats(profiler)
            stats.sort_stats("cumulative").print_stats(15)
            print(f"wrote {profile_path} (load with pstats or snakeviz)")
        results.append(result)
        print(result.to_text())
        if args.chart:
            print()
            print(result.to_ascii_chart())
        if obs is not None:
            print()
            print(text_summary(obs.registry, obs.tracer))
            if args.trace:
                trace_path = _suffixed(args.trace, name, multi)
                write_chrome_trace(obs.tracer, trace_path, obs.registry)
                print(f"wrote {trace_path} ({len(obs.tracer)} spans)")
            if args.metrics_out:
                metrics_path = _suffixed(args.metrics_out, name, multi)
                write_text_summary(obs.registry, metrics_path, obs.tracer)
                print(f"wrote {metrics_path}")
            if args.report:
                from .runreport import build_report, report_text, write_report

                report_path = _suffixed(args.report, name, multi)
                report = build_report(obs, figure=name)
                print()
                print(report_text(report))
                write_report(report, report_path)
                print(f"wrote {report_path}")
        print()
    if args.json:
        with open(args.json, "w") as fp:
            json.dump([r.to_dict() for r in results], fp, indent=2)
        print(f"wrote {args.json}")
    return 0


def _bench_main(args, config) -> int:
    """``--bench-out``: time figures under both allocators, write JSON."""
    from .bench import DEFAULT_FIGURES, run_bench, to_json_dict
    from .kernelbench import run_kernel_bench
    from .mdbench import run_metadata_bench

    if args.figure == "all":
        figures = list(DEFAULT_FIGURES)
    elif args.figure == "filecount":
        print("filecount exercises the threaded runtime, not the DES; "
              "nothing to benchmark", file=sys.stderr)
        return 2
    else:
        figures = [args.figure]
    runs = run_bench(
        figures,
        scale=args.scale,
        repeats=args.bench_repeats,
        config=config,
    )
    kernel = run_kernel_bench(repeats=args.bench_repeats)
    metadata = run_metadata_bench(repeats=args.bench_repeats)
    from .loadtest import run_loadtest

    http_loadtest = run_loadtest(
        clients=50 if args.scale == "quick" else 200,
        duration_s=3.0 if args.scale == "quick" else 10.0,
    )
    from .policybench import matrix_text, run_policy_matrix

    policy_matrix = run_policy_matrix(scale=args.scale)
    doc = to_json_dict(
        runs,
        scale=args.scale,
        repeats=args.bench_repeats,
        kernel=kernel,
        metadata=metadata,
        http_loadtest=http_loadtest,
        policy_matrix=policy_matrix,
    )
    with open(args.bench_out, "w") as fp:
        json.dump(doc, fp, indent=2)
        fp.write("\n")
    print("[kernel microbench]")
    for kb in kernel:
        print(
            f"  {kb.scenario}: {kb.events} events in {kb.wall_s:.3f}s "
            f"({kb.events_per_s:,.0f}/s)"
        )
    print("[metadata microbench]")
    for mb in metadata:
        print(
            f"  {mb.scenario}: {mb.ops} ops in {mb.wall_s:.3f}s "
            f"({mb.ops_per_s:,.0f}/s, {mb.node_ops} node ops)"
        )
    print("[http loadtest]")
    print("  " + http_loadtest.to_text().replace("\n", "\n  "))
    print("[policy matrix]")
    print("  " + matrix_text(policy_matrix).replace("\n", "\n  "))
    for run in runs:
        print(f"[{run.allocator}]")
        for name, fb in run.figures.items():
            print(
                f"  {name}: {fb.wall_s:.3f}s wall, {fb.sim_events} sim "
                f"events ({fb.events_per_s:,.0f}/s), {fb.reallocs} reallocs"
            )
        print(
            f"  total: {run.total_wall_s:.3f}s, "
            f"{run.total_events_per_s:,.0f} events/s"
        )
    speedup = doc.get("speedup", {})
    if "total" in speedup:
        print(f"speedup (reference/incremental wall): {speedup['total']:.2f}x")
    print(f"wrote {args.bench_out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
