"""``repro-fig`` — regenerate the paper's figures from the command line.

Examples::

    repro-fig fig3                  # quick sweep of Figure 3
    repro-fig fig6 --scale paper    # full-scale Figure 6 (minutes)
    repro-fig all --json out.json   # everything, also saved as JSON
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .figures import ALL_FIGURES, fig3, fig4, fig5, fig6, filecount_table


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fig",
        description=(
            "Regenerate the evaluation figures of 'Improving the Hadoop "
            "Map/Reduce Framework to Support Concurrent Appends through "
            "the BlobSeer BLOB management system' (HPDC'10)."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(ALL_FIGURES) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=["quick", "paper"],
        default="quick",
        help="sweep density and repetitions (default: quick)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as JSON to PATH",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        metavar="N",
        help="repetitions per data point (default: 1 quick / 5 paper)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each figure as an ASCII chart",
    )
    args = parser.parse_args(argv)

    config = None
    if args.reps is not None:
        from ..common.config import ExperimentConfig

        config = ExperimentConfig(repetitions=args.reps)

    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    results = []
    for name in names:
        fn = ALL_FIGURES[name]
        if name == "filecount":
            result = fn()
        else:
            result = fn(scale=args.scale, config=config)
        results.append(result)
        print(result.to_text())
        if args.chart:
            print()
            print(result.to_ascii_chart())
        print()
    if args.json:
        with open(args.json, "w") as fp:
            json.dump([r.to_dict() for r in results], fp, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
