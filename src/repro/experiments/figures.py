"""One function per paper figure/table: regenerate it end-to-end.

Two scales are provided:

* ``"paper"`` — the full 270-node deployment with the paper's sweep
  ranges and 5 repetitions per point (minutes of wall time);
* ``"quick"`` — the same deployment with sparser sweeps and one
  repetition (seconds; what the pytest benchmarks run).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..common.config import ExperimentConfig
from ..obs import Observability
from . import microbench
from .datajoin_exp import DataJoinCalibration, sweep as datajoin_sweep
from .report import FigureResult, Series


def _config(scale: str, config: Optional[ExperimentConfig]) -> ExperimentConfig:
    if config is not None:
        config.validate()
        return config
    cfg = ExperimentConfig()
    if scale == "quick":
        cfg.repetitions = 1
    elif scale != "paper":
        raise ValueError(f"unknown scale {scale!r} (use 'paper' or 'quick')")
    return cfg


def _sweep(scale: str, paper: Sequence[int], quick: Sequence[int]) -> List[int]:
    return list(paper if scale == "paper" else quick)


def fig3(
    scale: str = "quick",
    config: Optional[ExperimentConfig] = None,
    obs: Optional[Observability] = None,
) -> FigureResult:
    """Figure 3: performance of BSFS when concurrent clients append data
    to the same file."""
    cfg = _config(scale, config)
    counts = _sweep(
        scale,
        paper=[1, 30, 60, 90, 120, 150, 180, 210, 246],
        quick=[1, 60, 120, 180, 246],
    )
    points = microbench.concurrent_appends(counts, cfg, obs=obs)
    return FigureResult(
        fig_id="fig3",
        title="Concurrent appends to the same file (BSFS)",
        xlabel="clients",
        ylabel="avg append throughput (MiB/s)",
        series=[
            Series("BSFS", [p.x for p in points], [p.mean_mbps for p in points])
        ],
        paper_claim=(
            "BSFS maintains a good throughput as the number of appenders "
            "increases (1..246 clients, 64 MB appends)"
        ),
    )


def fig4(
    scale: str = "quick",
    config: Optional[ExperimentConfig] = None,
    obs: Optional[Observability] = None,
) -> FigureResult:
    """Figure 4: impact of concurrent appends on concurrent reads from
    the same file (100 readers fixed)."""
    cfg = _config(scale, config)
    counts = _sweep(
        scale,
        paper=[0, 20, 40, 60, 80, 100, 120, 140],
        quick=[0, 60, 140],
    )
    points = microbench.reads_under_appends(counts, cfg, obs=obs)
    return FigureResult(
        fig_id="fig4",
        title="Impact of concurrent appends on reads (100 readers)",
        xlabel="appenders",
        ylabel="avg read throughput (MiB/s)",
        series=[
            Series("BSFS", [p.x for p in points], [p.mean_mbps for p in points])
        ],
        paper_claim=(
            "the average throughput of BSFS reads is sustained even when "
            "the same file is accessed by multiple concurrent appenders"
        ),
    )


def fig5(
    scale: str = "quick",
    config: Optional[ExperimentConfig] = None,
    obs: Optional[Observability] = None,
) -> FigureResult:
    """Figure 5: impact of concurrent reads on concurrent appends to the
    same file (100 appenders fixed)."""
    cfg = _config(scale, config)
    counts = _sweep(
        scale,
        paper=[0, 20, 40, 60, 80, 100, 120, 140],
        quick=[0, 60, 140],
    )
    points = microbench.appends_under_reads(counts, cfg, obs=obs)
    return FigureResult(
        fig_id="fig5",
        title="Impact of concurrent reads on appends (100 appenders)",
        xlabel="readers",
        ylabel="avg append throughput (MiB/s)",
        series=[
            Series("BSFS", [p.x for p in points], [p.mean_mbps for p in points])
        ],
        paper_claim=(
            "concurrent appenders maintain their throughput as well, when "
            "the number of concurrent readers from a shared file increases"
        ),
    )


def fig6(
    scale: str = "quick",
    config: Optional[ExperimentConfig] = None,
    calibration: Optional[DataJoinCalibration] = None,
    obs: Optional[Observability] = None,
) -> FigureResult:
    """Figure 6: completion time of the data join application when
    varying the number of reducers, HDFS-separate vs BSFS-shared."""
    cfg = _config(scale, config)
    counts = _sweep(
        scale,
        paper=[1, 10, 30, 60, 90, 130, 170, 200, 230],
        quick=[1, 10, 130, 230],
    )
    hdfs_pts, bsfs_pts = datajoin_sweep(counts, cfg, calibration, obs=obs)
    return FigureResult(
        fig_id="fig6",
        title="Data join completion time vs number of reducers",
        xlabel="reducers",
        ylabel="completion time (s)",
        series=[
            Series(
                "HDFS - multiple output files",
                [p.n_reducers for p in hdfs_pts],
                [p.completion_seconds for p in hdfs_pts],
            ),
            Series(
                "BSFS - single output file",
                [p.n_reducers for p in bsfs_pts],
                [p.completion_seconds for p in bsfs_pts],
            ),
        ],
        paper_claim=(
            "BSFS finishes the job in approximately the same amount of time "
            "as HDFS, and moreover, it produces a single output file; "
            "completion time in both scenarios remains constant as reducers "
            "increase"
        ),
        notes=(
            f"BSFS output files per run: "
            f"{sorted(set(p.output_files for p in bsfs_pts))}; HDFS output "
            f"files == reducers"
        ),
    )


def fig7(
    scale: str = "quick",
    config: Optional[ExperimentConfig] = None,
    obs: Optional[Observability] = None,
) -> FigureResult:
    """Figure 7 (supplementary, beyond the paper): append throughput of
    N concurrent clients while two data providers crash mid-run and one
    appender dies holding an uncommitted append ticket."""
    from .chaos import chaos_appends

    cfg = _config(scale, config)
    counts = _sweep(
        scale,
        paper=[4, 30, 60, 90, 120, 150, 180, 210, 246],
        quick=[4, 60, 120, 246],
    )
    points = chaos_appends(
        counts, cfg, provider_crashes=2, appender_crashes=1, obs=obs
    )
    return FigureResult(
        fig_id="fig7",
        title="Concurrent appends under failures (chaos, BSFS)",
        xlabel="clients",
        ylabel="avg append throughput of survivors (MiB/s)",
        series=[
            Series("BSFS", [p.x for p in points], [p.mean_mbps for p in points])
        ],
        paper_claim=(
            "beyond the paper: appends keep completing when providers and "
            "an appender crash mid-run — replica failover routes around "
            "dead providers and the append-ticket lease aborts the dead "
            "appender's version so the publish frontier advances"
        ),
        notes=(
            "replication forced to 2 and the append lease shortened to "
            "2 s for the run; survivors' throughput includes the stall "
            "waiting for the dead appender's lease to expire"
        ),
    )


def fig8(
    scale: str = "quick",
    config: Optional[ExperimentConfig] = None,
    obs: Optional[Observability] = None,
) -> FigureResult:
    """Figure 8 (beyond the paper): open-loop concurrent-append scale.

    Tens of thousands of flyweight clients offer Poisson append load to
    a few shared files on a multi-rack deployment; the sweep reports
    goodput and p99 append latency versus offered load. Closed-loop
    sweeps (fig3) cannot overload the system, so this is the figure that
    locates the capacity knee of the shared-output-file design.
    """
    from .openloop import find_knee, open_loop_sweep

    cfg = _config(scale, config)
    if scale == "paper":
        loads = [125.0, 250.0, 500.0, 750.0, 1000.0, 1500.0, 2500.0,
                 5000.0, 12500.0]
        duration = 4.0
        n_clients = 50_000
    else:
        loads = [250.0, 500.0, 1000.0, 2000.0, 12500.0]
        duration = 2.0
        n_clients = 20_000
    points = open_loop_sweep(
        loads, cfg, duration=duration, n_clients=n_clients, obs=obs
    )
    knee = find_knee(points)
    knee_note = (
        f"knee at ~{knee.offered_ops_s:,.0f} ops/s offered "
        f"(goodput {knee.goodput_ops_s:,.0f} ops/s, "
        f"p99 {knee.p99_latency_s * 1000:,.0f} ms)"
        if knee is not None
        else "no knee within the swept loads"
    )
    max_clients = max((p.clients for p in points), default=0)
    return FigureResult(
        fig_id="fig8",
        title="Open-loop concurrent appends: goodput/p99 vs offered load",
        xlabel="offered load (ops/s)",
        ylabel="goodput (ops/s) / p99 latency (ms)",
        series=[
            Series(
                "goodput (ops/s)",
                [p.offered_ops_s for p in points],
                [p.goodput_ops_s for p in points],
            ),
            Series(
                "p99 append latency (ms)",
                [p.offered_ops_s for p in points],
                [p.p99_latency_s * 1000.0 for p in points],
            ),
        ],
        paper_claim=(
            "beyond the paper: under open-loop load the shared-file "
            "append path sustains offered load up to the version "
            "manager's serialization capacity, then degrades gracefully "
            "— goodput plateaus at capacity instead of collapsing"
        ),
        notes=(
            f"{knee_note}; up to {max_clients:,} distinct flyweight "
            f"clients per point on a multi-rack (two-level) topology"
        ),
    )


def supplementary_separate_writes(
    scale: str = "quick",
    config: Optional[ExperimentConfig] = None,
    obs: Optional[Observability] = None,
) -> FigureResult:
    """Supplementary (not a paper figure): N clients each write one
    64 MB chunk to a private file, HDFS vs BSFS — the file-system-level
    'no extra cost' check behind Figure 6's conclusion."""
    cfg = _config(scale, config)
    counts = _sweep(
        scale,
        paper=[1, 30, 60, 120, 180, 246],
        quick=[1, 60, 180],
    )
    hdfs_pts, bsfs_pts = microbench.separate_writes_comparison(counts, cfg, obs=obs)
    return FigureResult(
        fig_id="sup-writes",
        title="Separate-file writes: HDFS vs BSFS (supplementary)",
        xlabel="clients",
        ylabel="avg write throughput (MiB/s)",
        series=[
            Series("HDFS", [p.x for p in hdfs_pts], [p.mean_mbps for p in hdfs_pts]),
            Series("BSFS", [p.x for p in bsfs_pts], [p.mean_mbps for p in bsfs_pts]),
        ],
        paper_claim=(
            "support for concurrent appends to shared files is introduced "
            "with no extra cost (paper conclusion; this check isolates the "
            "storage layer)"
        ),
        notes=(
            "BSFS pulls ahead under concurrency because HDFS 'picks random "
            "servers to store the data, which will often lead to a layout "
            "that is not load balanced' (paper §2.2), while the provider "
            "manager places least-loaded-first"
        ),
    )


def filecount_table(
    reducer_counts: Sequence[int] = (1, 2, 4, 8, 16),
    obs: Optional[Observability] = None,
) -> FigureResult:
    """The file-count problem (implicit table): output files and
    namespace entries after the data join, original vs modified
    framework — functional runtimes, real bytes."""
    import time as _time

    from ..bsfs import BSFS
    from ..common.config import BlobSeerConfig, HDFSConfig
    from ..hdfs import HDFSCluster
    from ..mapreduce import MapReduceCluster
    from ..apps import run_datajoin
    from ..workloads import kv_corpus

    if obs is not None and obs.tracer.enabled:
        # this table runs the threaded runtime: wall-clock timestamps
        obs.tracer.use_clock(_time.perf_counter)
    left = kv_corpus(300, key_space=40, seed=11)
    right = kv_corpus(300, key_space=40, seed=12)
    hdfs_files: List[float] = []
    bsfs_files: List[float] = []
    hdfs_entries: List[float] = []
    bsfs_entries: List[float] = []
    for r in reducer_counts:
        hd = HDFSCluster(n_datanodes=4, config=HDFSConfig(chunk_size=16 * 1024))
        fs = hd.file_system()
        fs.write_all("/in/left", left)
        fs.write_all("/in/right", right)
        mr = MapReduceCluster(fs, hosts=list(hd.datanodes), obs=obs)
        res = run_datajoin(mr, "/in/left", "/in/right", "/out", n_reducers=r)
        hdfs_files.append(res.output_file_count)
        _dirs, files = hd.namenode.tree.count_entries()
        hdfs_entries.append(files)

        dep = BSFS(
            config=BlobSeerConfig(page_size=16 * 1024, metadata_providers=4),
            n_providers=4,
            obs=obs,
        )
        bfs = dep.file_system()
        bfs.write_all("/in/left", left)
        bfs.write_all("/in/right", right)
        mr2 = MapReduceCluster(
            bfs, hosts=[f"provider-{i:03d}" for i in range(4)], obs=obs
        )
        res2 = run_datajoin(
            mr2, "/in/left", "/in/right", "/out", n_reducers=r, output_mode="shared"
        )
        bsfs_files.append(res2.output_file_count)
        bsfs_entries.append(dep.namespace.file_count())

    xs = [float(r) for r in reducer_counts]
    return FigureResult(
        fig_id="tab-filecount",
        title="The file-count problem: output files after the data join",
        xlabel="reducers",
        ylabel="files",
        series=[
            Series("HDFS output files", xs, hdfs_files),
            Series("BSFS output files", xs, bsfs_files),
            Series("HDFS namespace files", xs, hdfs_entries),
            Series("BSFS namespace files", xs, bsfs_entries),
        ],
        paper_claim=(
            "the number of files managed by the Map/Reduce framework is "
            "substantially reduced: one shared file instead of one per "
            "reducer"
        ),
    )


#: registry used by the CLI and the benchmarks
ALL_FIGURES: Dict[str, object] = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "filecount": filecount_table,
    "sup-writes": supplementary_separate_writes,
}
