"""Chaos experiment — Figure 7 (supplementary): appends under failures.

The paper's evaluation assumes a failure-free run. This driver measures
what the failure-recovery machinery costs when that assumption breaks:
N clients append 64 MB chunks to one shared file while *k* data
providers crash mid-run and a few appenders die *between* taking their
append ticket and committing it. Survivors must route around the dead
providers (replica failover with timeouts and backoff) and wait for the
version manager's append-ticket lease to abort the dead appenders'
versions before their own can publish.

Notes on the model:

* replication is forced to >= 2 — with the paper's default of 1, every
  page on a crashed provider is simply lost and the figure would
  measure data loss, not recovery;
* the lease is shortened to :data:`CHAOS_LEASE_S` so the frontier stall
  caused by a dead appender is visible but bounded within the run;
* crashing a provider machine does *not* kill the client process
  co-located on it — clients are independent of the storage role, as in
  the paper's deployment.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Generator, List, Optional, Sequence

import numpy as np

from ..common.config import ExperimentConfig
from ..common.units import MiB
from ..faults import FaultPlan, schedule_plan, sim_blobseer_injector
from ..obs import Observability
from ..sim.core import Event
from .deploy import deploy_bsfs
from .microbench import CHUNK, DataPoint, _client_nodes, _rep_config, _run

#: when the first provider crashes (sim seconds into the measured run)
CRASH_START = 0.05
#: stagger between successive provider crashes (sim seconds)
CRASH_SPACING = 0.1
#: shortened append-ticket lease for chaos runs (sim seconds): long
#: enough that live appenders never trip it, short enough that a dead
#: appender's hole publishes within the run
CHAOS_LEASE_S = 2.0


def _chaos_config(config: ExperimentConfig, rep: int) -> ExperimentConfig:
    """Per-repetition config hardened for failures (see module notes)."""
    base = _rep_config(config, rep)
    return ExperimentConfig(
        cluster=base.cluster,
        blobseer=replace(
            base.blobseer,
            replication=max(2, base.blobseer.replication),
            append_lease_s=CHAOS_LEASE_S,
        ),
        hdfs=base.hdfs,
        mapreduce=base.mapreduce,
        repetitions=base.repetitions,
    )


def chaos_appends(
    appender_counts: Sequence[int],
    config: ExperimentConfig,
    provider_crashes: int = 2,
    appender_crashes: int = 1,
    obs: Optional[Observability] = None,
) -> List[DataPoint]:
    """Figure 7: N appenders each append one 64 MB chunk to the shared
    file while *provider_crashes* data providers crash mid-run and
    *appender_crashes* clients die holding an uncommitted append ticket.

    Reports the surviving appenders' average throughput — the failure
    tax shows up as the gap to Figure 3 at the same x.
    """
    points: List[DataPoint] = []
    for n in appender_counts:
        if n <= appender_crashes:
            raise ValueError(
                f"{n} appenders with {appender_crashes} crashes leaves "
                "no survivors to measure"
            )
        samples: List[float] = []
        for rep in range(config.repetitions):
            dep = deploy_bsfs(_chaos_config(config, rep), obs=obs)
            bsfs = dep.bsfs
            blobseer = bsfs.blobseer
            env = dep.cluster.env
            path = "/bench/shared"
            env.run(env.process(bsfs.create_proc(dep.client_nodes[0], path)))
            blob_id = bsfs.namespace.get(path).blob_id

            providers = blobseer.roles.data_providers
            k = min(provider_crashes, len(providers) - 2)
            plan = FaultPlan()
            for i in range(k):
                plan.crash(
                    "provider", providers[i], at=CRASH_START + CRASH_SPACING * i
                )
            schedule_plan(env, plan, sim_blobseer_injector(blobseer, obs))

            clients = _client_nodes(dep, n)
            # the doomed appenders sit mid-pack so live appenders queue
            # both before and behind their wedged versions
            doomed_idx = set(
                range(n // 2, n // 2 + appender_crashes)
            )

            def survivor(client: str) -> Generator[Event, None, None]:
                yield from bsfs.append_proc(client, path, CHUNK)

            def doomed(client: str) -> Generator[Event, None, None]:
                # take the append ticket, then die: no pages, no commit.
                # The lease must abort this version or everyone behind
                # it deadlocks.
                yield blobseer._vm_call(
                    client,
                    lambda: blobseer.core.assign_append(blob_id, CHUNK),
                    op="assign_append",
                )

            procs = [
                env.process(
                    doomed(c) if i in doomed_idx else survivor(c),
                    name=f"{'doomed' if i in doomed_idx else 'app'}-{i}",
                )
                for i, c in enumerate(clients)
            ]
            _run(dep, procs, obs=obs)
            samples.append(
                bsfs.metrics.average_client_throughput("append") / MiB
            )
        points.append(
            DataPoint(
                x=n,
                mean_mbps=float(np.mean(samples)),
                std_mbps=float(np.std(samples)),
                samples=samples,
            )
        )
    return points
