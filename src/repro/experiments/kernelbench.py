"""Kernel microbenchmarks — raw DES event throughput, no workload.

The figure benches (:mod:`.bench`) measure *workload* events/sec: every
dispatch also runs protocol generators, metadata-tree walks and rate
reallocation, so their numbers track the whole stack. This module
isolates the kernel itself — the two-tier calendar queue, the pooled
process resumes and the bare-callable timer path of
:class:`~repro.sim.core.Environment` — by dispatching millions of
no-op entries. Four scenarios cover the queue's tiers:

* ``ring`` — a same-instant callback chain: every dispatch costs one
  deque popleft plus the callback (the near tier's fast path).
* ``timer`` — many concurrent self-rescheduling ``call_in`` timers with
  staggered periods, keeping a populated far-tier heap churning.
* ``process`` — generator processes looping over ``yield timeout(dt)``:
  the pooled ``_Resume`` path plus Timeout event dispatch.
* ``mixed`` — all three running concurrently in one environment; the
  headline kernel number.

Results ride along in ``BENCH_sim.json`` (schema v3) under
``kernel_microbench`` and are gated by the perf-smoke baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..sim.core import Environment, Event

#: queue entries dispatched per scenario run (wall ~0.1-0.5 s each)
DEFAULT_EVENTS = 300_000

#: concurrent timer lanes in the ``timer`` scenario — deep enough that
#: every reschedule is a real heap sift, not a near-empty push/pop
TIMER_LANES = 512

#: concurrent generator processes in the ``process`` scenario
PROCESS_LANES = 256

SCENARIOS = ("ring", "timer", "process", "mixed")


@dataclass(slots=True)
class KernelBenchResult:
    """One scenario's best-of-repeats measurement."""

    scenario: str
    #: queue entries actually dispatched (``env.events_processed``)
    events: int
    wall_s: float
    events_per_s: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "wall_s": self.wall_s,
            "events_per_s": self.events_per_s,
        }


def _arm_ring(env: Environment, n: int) -> Event:
    """A self-perpetuating zero-delay callback chain of *n* ticks."""
    done = Event(env)
    call_in = env.call_in
    remaining = n

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            call_in(0.0, tick)
        else:
            done.succeed(None)

    call_in(0.0, tick)
    return done


def _arm_timer(env: Environment, n: int, lanes: int = TIMER_LANES) -> Event:
    """*lanes* concurrent timers, each rescheduling itself ``call_in``
    with a lane-specific period, until *n* ticks fired in total."""
    done = Event(env)
    call_in = env.call_in
    remaining = n

    def make(period: float):
        def tick() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining > 0:
                call_in(period, tick)
            elif not done.triggered:
                done.succeed(None)

        return tick

    for i in range(lanes):
        # staggered phases and co-prime-ish periods keep the heap mixed
        call_in(1e-6 * (i + 1), make(1e-3 + i * 1.7e-6))
    return done


def _arm_process(env: Environment, n: int, lanes: int = PROCESS_LANES) -> Event:
    """*lanes* generator processes looping ``yield timeout(dt)`` until
    *n* timeouts were issued in total."""
    done = Event(env)
    remaining = n

    def proc(period: float):
        nonlocal remaining
        timeout = env.timeout
        while remaining > 0:
            remaining -= 1
            yield timeout(period)
        if not done.triggered:
            done.succeed(None)

    for i in range(lanes):
        env.process(proc(1e-4 + i * 1.3e-7))
    return done


def _run_scenario(scenario: str, n_events: int) -> KernelBenchResult:
    """One timed run: arm the scenario on a fresh env, drain to done."""
    env = Environment()
    if scenario == "ring":
        done = _arm_ring(env, n_events)
    elif scenario == "timer":
        done = _arm_timer(env, n_events)
    elif scenario == "process":
        done = _arm_process(env, n_events)
    elif scenario == "mixed":
        # weighted like the figure workloads: same-instant churn (flow
        # starts/finishes, RPC fan-outs) dominates, with timers and
        # process resumes making up the rest
        half = n_events // 2
        quarter = n_events // 4
        done = env.all_of(
            [
                _arm_ring(env, half),
                _arm_timer(env, quarter),
                _arm_process(env, n_events - half - quarter),
            ]
        )
    else:
        raise ValueError(f"unknown kernel scenario {scenario!r}")
    t0 = time.perf_counter()
    env.run(done)
    wall = time.perf_counter() - t0
    events = env.events_processed
    return KernelBenchResult(
        scenario=scenario,
        events=events,
        wall_s=wall,
        events_per_s=events / wall if wall > 0 else 0.0,
    )


def bench_kernel(
    scenario: str, n_events: int = DEFAULT_EVENTS, repeats: int = 3
) -> KernelBenchResult:
    """Best-of-*repeats* throughput of one scenario (fresh env each)."""
    if n_events < 1:
        raise ValueError("n_events must be positive")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best: KernelBenchResult | None = None
    for _ in range(repeats):
        res = _run_scenario(scenario, n_events)
        if best is None or res.wall_s < best.wall_s:
            best = res
    assert best is not None
    return best


def run_kernel_bench(
    scenarios: Sequence[str] = SCENARIOS,
    n_events: int = DEFAULT_EVENTS,
    repeats: int = 3,
) -> List[KernelBenchResult]:
    """Measure every scenario; returns them in the given order."""
    return [bench_kernel(s, n_events=n_events, repeats=repeats) for s in scenarios]
