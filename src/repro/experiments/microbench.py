"""Microbenchmark drivers — Figures 3, 4 and 5 of the paper (§4.2).

Each driver rebuilds a fresh deployment per data point and repetition
(the paper: "Each test is executed 5 times, for each set of clients"),
runs the client processes on machines co-located with the data
providers, and reports the *average throughput* over clients — each
client's total bytes over its own busy span, averaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Generator, List, Sequence

import numpy as np

from typing import Optional

from ..common.config import ExperimentConfig
from ..common.units import MiB
from ..obs import Observability
from ..sim.core import Event
from .deploy import BSFSDeployment, deploy_bsfs, record_sim_counters

#: the microbenchmarks' unit of I/O: one 64 MB chunk
CHUNK = 64 * MiB


@dataclass(slots=True)
class DataPoint:
    """One x-position of a figure, aggregated over repetitions."""

    x: int
    mean_mbps: float
    std_mbps: float
    samples: List[float] = field(default_factory=list)


def _rep_config(config: ExperimentConfig, rep: int) -> ExperimentConfig:
    """A per-repetition copy with an independent seed."""
    cluster = replace(config.cluster, seed=config.cluster.seed + 1000 * rep + 1)
    return ExperimentConfig(
        cluster=cluster,
        blobseer=config.blobseer,
        hdfs=config.hdfs,
        mapreduce=config.mapreduce,
        repetitions=config.repetitions,
    )


def _run(
    deployment: BSFSDeployment, procs, obs: Optional[Observability] = None
) -> None:
    env = deployment.cluster.env

    def main() -> Generator[Event, None, None]:
        yield env.all_of(procs)

    env.run(env.process(main(), name="main"))
    record_sim_counters(deployment.cluster, obs)


def _client_nodes(deployment: BSFSDeployment, count: int, phase: int = 0) -> List[str]:
    """*count* client machines, round-robin over the provider nodes.

    *phase* offsets the assignment so reader and appender populations
    spread over different machines first (as when launching two separate
    client groups on the reservation).
    """
    nodes = deployment.client_nodes
    return [nodes[(phase + i) % len(nodes)] for i in range(count)]


def concurrent_appends(
    client_counts: Sequence[int],
    config: ExperimentConfig,
    chunks_per_client: int = 1,
    obs: Optional[Observability] = None,
) -> List[DataPoint]:
    """Figure 3: N concurrent clients each append a 64 MB chunk to the
    same file; report the average append throughput per client."""
    points: List[DataPoint] = []
    for n in client_counts:
        if n < 1:
            raise ValueError("client counts must be >= 1")
        samples: List[float] = []
        for rep in range(config.repetitions):
            dep = deploy_bsfs(_rep_config(config, rep), obs=obs)
            bsfs = dep.bsfs
            env = dep.cluster.env
            env.run(env.process(bsfs.create_proc(dep.client_nodes[0], "/bench/shared")))
            clients = _client_nodes(dep, n)

            def appender(client: str) -> Generator[Event, None, None]:
                for _ in range(chunks_per_client):
                    yield from bsfs.append_proc(client, "/bench/shared", CHUNK)

            _run(dep, [env.process(appender(c), name=f"app-{i}")
                       for i, c in enumerate(clients)], obs=obs)
            samples.append(bsfs.metrics.average_client_throughput("append") / MiB)
        points.append(
            DataPoint(
                x=n,
                mean_mbps=float(np.mean(samples)),
                std_mbps=float(np.std(samples)),
                samples=samples,
            )
        )
    return points


def _mixed_workload(
    config: ExperimentConfig,
    n_readers: int,
    chunks_per_reader: int,
    n_appenders: int,
    chunks_per_appender: int,
    rep: int,
    obs: Optional[Observability] = None,
) -> BSFSDeployment:
    """Shared setup of Figures 4 and 5: *n_readers* clients each read
    *chunks_per_reader* 64 MB chunks from disjoint regions of a shared
    file while *n_appenders* clients each append *chunks_per_appender*
    chunks to it."""
    dep = deploy_bsfs(_rep_config(config, rep), obs=obs)
    bsfs = dep.bsfs
    env = dep.cluster.env
    path = "/bench/shared"
    # preload the region the readers will consume (disjoint per reader)
    env.run(env.process(bsfs.create_proc(dep.client_nodes[0], path)))
    if n_readers:
        bsfs.preload(path, n_readers * chunks_per_reader * CHUNK)
    readers = _client_nodes(dep, n_readers)
    appenders = _client_nodes(dep, n_appenders, phase=n_readers)

    def reader(idx: int, client: str) -> Generator[Event, None, None]:
        base = idx * chunks_per_reader * CHUNK
        for c in range(chunks_per_reader):
            yield from bsfs.read_proc(client, path, base + c * CHUNK, CHUNK)

    def appender(client: str) -> Generator[Event, None, None]:
        for _ in range(chunks_per_appender):
            yield from bsfs.append_proc(client, path, CHUNK)

    procs = [
        env.process(reader(i, c), name=f"reader-{i}")
        for i, c in enumerate(readers)
    ] + [
        env.process(appender(c), name=f"appender-{i}")
        for i, c in enumerate(appenders)
    ]
    _run(dep, procs, obs=obs)
    return dep


def separate_writes_comparison(
    client_counts: Sequence[int],
    config: ExperimentConfig,
    obs: Optional[Observability] = None,
) -> "tuple[List[DataPoint], List[DataPoint]]":
    """Supplementary head-to-head: N clients each write one 64 MB chunk
    to their *own* file — the only write pattern both systems support
    (the paper compares the systems end-to-end in Figure 6 instead,
    because HDFS cannot run the append microbenchmarks at all).

    Returns (HDFS points, BSFS points); matching curves support the
    paper's 'no extra cost' conclusion at the file-system level.
    """
    from .deploy import deploy_hdfs

    hdfs_points: List[DataPoint] = []
    bsfs_points: List[DataPoint] = []
    for n in client_counts:
        if n < 1:
            raise ValueError("client counts must be >= 1")
        hdfs_samples: List[float] = []
        bsfs_samples: List[float] = []
        for rep in range(config.repetitions):
            # HDFS: one file per client (Figure 1's pattern)
            dep_h = deploy_hdfs(_rep_config(config, rep), obs=obs)
            env = dep_h.cluster.env
            procs = [
                env.process(
                    dep_h.hdfs.write_file_proc(
                        dep_h.client_nodes[i % len(dep_h.client_nodes)],
                        f"/bench/part-{i:05d}",
                        CHUNK,
                    )
                )
                for i in range(n)
            ]
            _run(dep_h, procs, obs=obs)  # type: ignore[arg-type]
            hdfs_samples.append(
                dep_h.hdfs.metrics.average_client_throughput("write") / MiB
            )

            # BSFS: one file per client, written via append
            dep_b = deploy_bsfs(_rep_config(config, rep), obs=obs)
            env = dep_b.cluster.env
            clients = _client_nodes(dep_b, n)
            for i, c in enumerate(clients):
                env.run(env.process(dep_b.bsfs.create_proc(c, f"/bench/part-{i:05d}")))

            procs = [
                env.process(dep_b.bsfs.append_proc(c, f"/bench/part-{i:05d}", CHUNK))
                for i, c in enumerate(clients)
            ]
            _run(dep_b, procs, obs=obs)
            bsfs_samples.append(
                dep_b.bsfs.metrics.average_client_throughput("append") / MiB
            )
        hdfs_points.append(
            DataPoint(n, float(np.mean(hdfs_samples)), float(np.std(hdfs_samples)),
                      hdfs_samples)
        )
        bsfs_points.append(
            DataPoint(n, float(np.mean(bsfs_samples)), float(np.std(bsfs_samples)),
                      bsfs_samples)
        )
    return hdfs_points, bsfs_points


def reads_under_appends(
    appender_counts: Sequence[int],
    config: ExperimentConfig,
    n_readers: int = 100,
    chunks_per_reader: int = 10,
    chunks_per_appender: int = 16,
    obs: Optional[Observability] = None,
) -> List[DataPoint]:
    """Figure 4: fixed 100 readers (10 chunks each); sweep the number of
    concurrent appenders (16 chunks each); report read throughput."""
    points: List[DataPoint] = []
    for n_app in appender_counts:
        samples: List[float] = []
        for rep in range(config.repetitions):
            dep = _mixed_workload(
                config, n_readers, chunks_per_reader, n_app, chunks_per_appender,
                rep, obs=obs,
            )
            samples.append(
                dep.bsfs.metrics.average_client_throughput("read") / MiB
            )
        points.append(
            DataPoint(
                x=n_app,
                mean_mbps=float(np.mean(samples)),
                std_mbps=float(np.std(samples)),
                samples=samples,
            )
        )
    return points


def appends_under_reads(
    reader_counts: Sequence[int],
    config: ExperimentConfig,
    n_appenders: int = 100,
    chunks_per_reader: int = 10,
    chunks_per_appender: int = 10,
    obs: Optional[Observability] = None,
) -> List[DataPoint]:
    """Figure 5: fixed 100 appenders; sweep the number of concurrent
    readers; both access 10 chunks of 64 MB; report append throughput."""
    points: List[DataPoint] = []
    for n_read in reader_counts:
        samples: List[float] = []
        for rep in range(config.repetitions):
            dep = _mixed_workload(
                config, n_read, chunks_per_reader, n_appenders, chunks_per_appender,
                rep, obs=obs,
            )
            samples.append(
                dep.bsfs.metrics.average_client_throughput("append") / MiB
            )
        points.append(
            DataPoint(
                x=n_read,
                mean_mbps=float(np.mean(samples)),
                std_mbps=float(np.std(samples)),
                samples=samples,
            )
        )
    return points
