"""Simulated Grid'5000 deployments, following the paper's §4.1 setup.

"Both the microbenchmarks and the Map/Reduce applications were performed
using 270 nodes … For HDFS we deployed the namenode on a dedicated
machine and the datanodes on the remaining nodes (one entity per
machine). For BSFS, we deployed one version manager, one provider
manager, one node for the namespace manager and 20 metadata providers.
The remaining nodes are used as data providers." Clients are launched
on the same machines as the datanodes / data providers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..blobseer.simulated import BlobSeerRoles
from ..bsfs.simulated import BSFSRoles, SimBSFS
from ..common.config import ExperimentConfig
from ..hdfs.simulated import HDFSRoles, SimHDFS
from ..obs import Observability
from ..sim.cluster import SimCluster


@dataclass(slots=True)
class BSFSDeployment:
    """A ready BSFS testbed: the cluster, the service, and the machines
    client processes run on (co-located with the data providers)."""

    cluster: SimCluster
    bsfs: SimBSFS
    client_nodes: List[str]


@dataclass(slots=True)
class HDFSDeployment:
    """A ready HDFS testbed."""

    cluster: SimCluster
    hdfs: SimHDFS
    client_nodes: List[str]


def deploy_bsfs(
    config: ExperimentConfig, obs: Optional[Observability] = None
) -> BSFSDeployment:
    """Materialize the paper's BSFS deployment on a fresh simulation."""
    config.validate()
    cluster = SimCluster(config.cluster, obs=obs)
    names = cluster.names()
    n_meta = config.blobseer.metadata_providers
    needed = 3 + n_meta + 1
    if len(names) < needed:
        raise ValueError(
            f"cluster of {len(names)} nodes too small for BSFS deployment "
            f"(need >= {needed})"
        )
    roles = BSFSRoles(
        blobseer=BlobSeerRoles(
            version_manager=names[0],
            provider_manager=names[1],
            metadata_providers=tuple(names[3 : 3 + n_meta]),
            data_providers=tuple(names[3 + n_meta :]),
        ),
        namespace_manager=names[2],
    )
    bsfs = SimBSFS(cluster, roles, config.blobseer, obs=obs)
    attach_sim_samplers(
        cluster, obs, engine=bsfs.engine, vm_core=bsfs.blobseer.core
    )
    return BSFSDeployment(
        cluster=cluster,
        bsfs=bsfs,
        client_nodes=list(roles.blobseer.data_providers),
    )


#: default telemetry sampling period, in simulated seconds — fine
#: enough that even sub-second benchmark runs collect a few points;
#: the ring buffer caps retention so long runs stay bounded
SAMPLE_PERIOD_S = 0.02

#: sampler decimation: the period doubles after every this many ticks,
#: so a run lasting T sim-seconds pays O(log T) sampler events rather
#: than T / SAMPLE_PERIOD_S — a long Map/Reduce join must not spend its
#: event budget on telemetry
SAMPLE_DOUBLE_AFTER = 256


def attach_sim_samplers(
    cluster: SimCluster,
    obs: Optional[Observability],
    engine=None,
    vm_core=None,
    period: float = SAMPLE_PERIOD_S,
) -> None:
    """Attach periodic telemetry samplers to a fresh deployment.

    Every *period* simulated seconds the samplers record, as
    :class:`~repro.obs.timeseries.TimeSeries` points:

    * ``sim.net.aggregate_rate_bps`` / ``sim.net.active_flows`` — fabric
      utilization (summed allocated flow rates) and in-flight flow count;
    * ``sim.disk.queue_max`` — the deepest spindle queue across nodes;
    * ``vm.commit_queue_len`` — versions queued for their metadata turn
      (when *vm_core* is given);
    * ``rpc.inflight.<endpoint>`` — RPCs queued per control endpoint
      (when *engine* is a :class:`~repro.engine.des.DesEngine`).

    The ticking stops with the workload (see
    :meth:`~repro.sim.core.Environment.every`), so a sampled run drains
    its queue exactly like an unsampled one, and the sampling period
    doubles every :data:`SAMPLE_DOUBLE_AFTER` ticks so telemetry costs
    ``O(log T)`` events over a ``T``-second simulation. No-op when
    *obs* is disabled.
    """
    if obs is None or not obs.registry.enabled:
        return
    env = cluster.env
    reg = obs.registry
    net = cluster.network
    # hoist the spindle waiting deques once: the per-tick max is then
    # len() over N deques instead of N×2 Python property hops — over a
    # 270-node cluster this sampler used to dominate fig6's wall time
    disk_queues = [
        cluster.node(name).disk._spindle._waiting for name in cluster.names()
    ]
    ts_rate = reg.timeseries("sim.net.aggregate_rate_bps")
    ts_flows = reg.timeseries("sim.net.active_flows")
    ts_disk = reg.timeseries("sim.disk.queue_max")
    ts_vm = reg.timeseries("vm.commit_queue_len") if vm_core is not None else None
    # iterate the engine's control-endpoint table directly rather than
    # building a fresh {name: depth} dict per tick
    control = (
        engine._control
        if engine is not None and hasattr(engine, "endpoint_inflight")
        else None
    )
    ts_rpc = (
        {name: reg.timeseries(f"rpc.inflight.{name}") for name in control}
        if control is not None
        else None
    )

    def sample() -> None:
        now = env.now
        ts_rate.record(now, net.aggregate_rate())
        ts_flows.record(now, net.active_flows)
        ts_disk.record(now, max(map(len, disk_queues)))
        if ts_vm is not None:
            ts_vm.record(now, vm_core.commit_queue_length)
        if control is not None:
            for name, ctl in control.items():
                series = ts_rpc.get(name)
                if series is None:
                    series = ts_rpc[name] = reg.timeseries(
                        f"rpc.inflight.{name}"
                    )
                series.record(now, len(ctl.slot._waiting))

    env.every(period, sample, double_after=SAMPLE_DOUBLE_AFTER)


def record_sim_counters(cluster: SimCluster, obs: Optional[Observability]) -> None:
    """Flush the kernel's lifetime event tally into ``sim.kernel.events``.

    Call once per deployment after its simulation has run; together with
    the network's ``sim.net.realloc*`` instruments this makes kernel
    cost visible in ``--metrics-out`` and the perf harness.
    """
    if obs is None:
        return
    processed = cluster.env.events_processed
    if processed:
        obs.registry.counter("sim.kernel.events").inc(float(processed))


def deploy_hdfs(
    config: ExperimentConfig, obs: Optional[Observability] = None
) -> HDFSDeployment:
    """Materialize the paper's HDFS deployment on a fresh simulation."""
    config.validate()
    cluster = SimCluster(config.cluster, obs=obs)
    if obs is not None and obs.tracer.enabled:
        # HDFS internals are not traced, but experiment-level spans over
        # this deployment should carry simulated timestamps
        obs.tracer.use_clock(lambda: cluster.env.now)
    names = cluster.names()
    roles = HDFSRoles(namenode=names[0], datanodes=tuple(names[1:]))
    hdfs = SimHDFS(cluster, roles, config.hdfs, obs=obs)
    attach_sim_samplers(cluster, obs, engine=hdfs.engine)
    return HDFSDeployment(
        cluster=cluster, hdfs=hdfs, client_nodes=list(roles.datanodes)
    )
