"""Simulated Grid'5000 deployments, following the paper's §4.1 setup.

"Both the microbenchmarks and the Map/Reduce applications were performed
using 270 nodes … For HDFS we deployed the namenode on a dedicated
machine and the datanodes on the remaining nodes (one entity per
machine). For BSFS, we deployed one version manager, one provider
manager, one node for the namespace manager and 20 metadata providers.
The remaining nodes are used as data providers." Clients are launched
on the same machines as the datanodes / data providers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..blobseer.simulated import BlobSeerRoles
from ..bsfs.simulated import BSFSRoles, SimBSFS
from ..common.config import ExperimentConfig
from ..hdfs.simulated import HDFSRoles, SimHDFS
from ..obs import Observability
from ..sim.cluster import SimCluster


@dataclass(slots=True)
class BSFSDeployment:
    """A ready BSFS testbed: the cluster, the service, and the machines
    client processes run on (co-located with the data providers)."""

    cluster: SimCluster
    bsfs: SimBSFS
    client_nodes: List[str]


@dataclass(slots=True)
class HDFSDeployment:
    """A ready HDFS testbed."""

    cluster: SimCluster
    hdfs: SimHDFS
    client_nodes: List[str]


def deploy_bsfs(
    config: ExperimentConfig, obs: Optional[Observability] = None
) -> BSFSDeployment:
    """Materialize the paper's BSFS deployment on a fresh simulation."""
    config.validate()
    cluster = SimCluster(config.cluster, obs=obs)
    names = cluster.names()
    n_meta = config.blobseer.metadata_providers
    needed = 3 + n_meta + 1
    if len(names) < needed:
        raise ValueError(
            f"cluster of {len(names)} nodes too small for BSFS deployment "
            f"(need >= {needed})"
        )
    roles = BSFSRoles(
        blobseer=BlobSeerRoles(
            version_manager=names[0],
            provider_manager=names[1],
            metadata_providers=tuple(names[3 : 3 + n_meta]),
            data_providers=tuple(names[3 + n_meta :]),
        ),
        namespace_manager=names[2],
    )
    bsfs = SimBSFS(cluster, roles, config.blobseer, obs=obs)
    return BSFSDeployment(
        cluster=cluster,
        bsfs=bsfs,
        client_nodes=list(roles.blobseer.data_providers),
    )


def record_sim_counters(cluster: SimCluster, obs: Optional[Observability]) -> None:
    """Flush the kernel's lifetime event tally into ``sim.kernel.events``.

    Call once per deployment after its simulation has run; together with
    the network's ``sim.net.realloc*`` instruments this makes kernel
    cost visible in ``--metrics-out`` and the perf harness.
    """
    if obs is None:
        return
    processed = cluster.env.events_processed
    if processed:
        obs.registry.counter("sim.kernel.events").inc(float(processed))


def deploy_hdfs(
    config: ExperimentConfig, obs: Optional[Observability] = None
) -> HDFSDeployment:
    """Materialize the paper's HDFS deployment on a fresh simulation."""
    config.validate()
    cluster = SimCluster(config.cluster, obs=obs)
    if obs is not None and obs.tracer.enabled:
        # HDFS internals are not traced, but experiment-level spans over
        # this deployment should carry simulated timestamps
        obs.tracer.use_clock(lambda: cluster.env.now)
    names = cluster.names()
    roles = HDFSRoles(namenode=names[0], datanodes=tuple(names[1:]))
    hdfs = SimHDFS(cluster, roles, config.hdfs, obs=obs)
    return HDFSDeployment(
        cluster=cluster, hdfs=hdfs, client_nodes=list(roles.datanodes)
    )
