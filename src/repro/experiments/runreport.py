"""The run report: one figure run distilled into a text/JSON readout.

``repro-fig --report`` turns a traced run's raw observability into the
questions an experimenter actually asks:

* **where did the time go** — the critical-path layer breakdown
  (:func:`repro.obs.critical.attribute`): network transfer, metadata
  turn wait, charged metadata RPCs, control RPCs, retry backoff, and
  the compute residual, per client track and summed;
* **how were waits distributed** — p50/p95/p99 tables for every
  histogram the run recorded (ticket waits, turn waits, ...);
* **what happened** — counter and gauge finals, time-series summaries;
* **what went wrong, and when** — the fault timeline (crash/recover
  injections, lease expiries, from :mod:`repro.obs.events` instants)
  and the count of spans that never finished.

The JSON document is the machine-readable contract; the text rendering
is the terminal companion, aligned like the metrics summary.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..obs import Observability, attribute
from ..obs.events import FAULT_CAT
from ..obs.export import _table
from ..obs.tracer import Tracer


def fault_timeline(tracer: Tracer) -> List[Dict[str, object]]:
    """Every fault/lease instant of the run, in time order.

    Each entry carries the instant's timestamp, its event name (the
    :mod:`repro.obs.events` vocabulary) and the marker's arguments
    (component/target for injections, blob/version for lease expiries).
    """
    out: List[Dict[str, object]] = []
    for span in tracer.snapshot():
        if span.instant and span.cat == FAULT_CAT:
            entry: Dict[str, object] = {"t": span.start, "event": span.name}
            entry.update(span.args)
            out.append(entry)
    out.sort(key=lambda e: e["t"])  # type: ignore[arg-type, return-value]
    return out


def build_report(
    obs: Observability, figure: Optional[str] = None
) -> Dict[str, object]:
    """Distill one run's observability bundle into the report document."""
    tracer, registry = obs.tracer, obs.registry
    critical = attribute(tracer)
    return {
        "figure": figure,
        "critical_path": critical.to_dict(),
        "histograms": {
            name: hist.summary()
            for name, hist in registry.histograms().items()
        },
        "counters": registry.counters(),
        "gauges": registry.gauges(),
        "timeseries": {
            name: series.summary()
            for name, series in registry.series().items()
        },
        "faults": fault_timeline(tracer),
        "spans": {
            "total": len(tracer),
            "unfinished": len(tracer.open_spans()),
        },
    }


def report_text(doc: Dict[str, object]) -> str:
    """The report document rendered for the terminal."""
    figure = doc.get("figure")
    title = f"== run report: {figure} ==" if figure else "== run report =="
    lines: List[str] = [title]

    cp = doc["critical_path"]
    busy = cp["busy_s"]
    lines.append("")
    lines.append(
        f"critical path ({busy:.6g}s busy across {len(cp['tracks'])} "
        f"tracks, {100.0 * cp['attributed_fraction']:.1f}% attributed):"
    )
    layer_rows = [
        [name, f"{secs:.6g}", f"{100.0 * secs / busy:.1f}%" if busy else "-"]
        for name, secs in sorted(
            cp["layers"].items(), key=lambda kv: -kv[1]
        )
    ]
    lines.extend(_table(["layer", "seconds", "share"], layer_rows))

    histograms = doc["histograms"]
    if histograms:
        lines.append("")
        lines.append("latency percentiles:")
        rows = [
            [name]
            + [
                f"{s[k]:g}" if k == "count" else f"{s[k]:.6g}"
                for k in ("count", "mean", "p50", "p95", "p99", "max")
            ]
            for name, s in histograms.items()
        ]
        lines.extend(
            _table(
                ["name", "count", "mean", "p50", "p95", "p99", "max"], rows
            )
        )

    counters = doc["counters"]
    if counters:
        lines.append("")
        lines.append("counters:")
        lines.extend(
            _table(
                ["name", "value"],
                [[n, f"{v:g}"] for n, v in counters.items()],
            )
        )

    series = doc["timeseries"]
    if series:
        lines.append("")
        lines.append("time series:")
        rows = [
            [name, f"{s['count']:g}"]
            + [f"{s[k]:.6g}" for k in ("last", "min", "max", "mean")]
            for name, s in series.items()
        ]
        lines.extend(
            _table(["name", "samples", "last", "min", "max", "mean"], rows)
        )

    faults = doc["faults"]
    if faults:
        lines.append("")
        lines.append("fault timeline:")
        for entry in faults:
            detail = " ".join(
                f"{k}={v}"
                for k, v in entry.items()
                if k not in ("t", "event")
            )
            lines.append(f"  t={entry['t']:.6g}s {entry['event']} {detail}")

    spans = doc["spans"]
    lines.append("")
    lines.append(
        f"spans: {spans['total']} total, {spans['unfinished']} unfinished"
    )
    return "\n".join(lines)


def write_report(doc: Dict[str, object], path: str) -> None:
    """Serialize the report document as JSON to *path*."""
    with open(path, "w") as fp:
        json.dump(doc, fp, indent=2)
        fp.write("\n")
