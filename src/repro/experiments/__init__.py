"""Experiment harness: simulated Grid'5000 deployments and drivers that
regenerate every figure of the paper's evaluation section."""

from .deploy import BSFSDeployment, HDFSDeployment, deploy_bsfs, deploy_hdfs
from .microbench import (
    DataPoint,
    appends_under_reads,
    concurrent_appends,
    reads_under_appends,
)
from .datajoin_exp import (
    DataJoinCalibration,
    DataJoinPoint,
    run_datajoin_bsfs,
    run_datajoin_hdfs,
)
from .report import FigureResult, Series
from .figures import ALL_FIGURES, fig3, fig4, fig5, fig6, filecount_table

__all__ = [
    "BSFSDeployment",
    "HDFSDeployment",
    "deploy_bsfs",
    "deploy_hdfs",
    "DataPoint",
    "appends_under_reads",
    "concurrent_appends",
    "reads_under_appends",
    "DataJoinCalibration",
    "DataJoinPoint",
    "run_datajoin_bsfs",
    "run_datajoin_hdfs",
    "FigureResult",
    "Series",
    "ALL_FIGURES",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "filecount_table",
]
