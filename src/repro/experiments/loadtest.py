"""HTTP load test — closed-loop concurrent appenders against
:mod:`repro.server`.

Where :mod:`repro.experiments.openloop` sweeps *simulated* offered load
to locate the metadata-plane capacity knee, this harness measures the
*real* serving path: N concurrent HTTP clients (one keep-alive socket
each, raw asyncio streams — no new dependencies) hammer the append
endpoint of a live :class:`~repro.server.app.BlobServer` for a fixed
duration, and the report is goodput plus the append-latency
distribution (p50/p95/p99). Each client appends to one of a small set
of shared files — the paper's many-writers-few-files pattern — so the
version manager's serialized assignment is on the measured path.

Run it against an external server (``repro-loadtest --url``) or
self-served (the default: boots a server on an ephemeral port in this
process, which is what the CI gate and the benchmark harness use).
Latencies also land in the registry histogram ``loadtest.append_s``, so
a shared :class:`~repro.obs.Observability` sees client-side and
server-side (``http.fs_append_s``) views of the same traffic.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import NULL_OBS, Observability

#: bytes per append op — small, to keep the version manager's serialized
#: section (not socket throughput) the bottleneck under test
DEFAULT_OP_BYTES = 4 * 1024

#: shared target files (many writers, few files)
DEFAULT_N_FILES = 8


@dataclass(slots=True)
class LoadTestResult:
    """One load-test run, ready for BENCH_sim.json."""

    clients: int
    duration_s: float
    op_bytes: int
    n_files: int
    #: requests that returned 2xx
    completed: int
    #: non-2xx responses plus transport errors
    failed: int
    goodput_ops_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    mean_s: float
    max_s: float
    bytes_appended: int
    #: per-status response counts (e.g. {"200": 5123})
    statuses: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "clients": self.clients,
            "duration_s": self.duration_s,
            "op_bytes": self.op_bytes,
            "n_files": self.n_files,
            "completed": self.completed,
            "failed": self.failed,
            "goodput_ops_s": self.goodput_ops_s,
            "latency_s": {
                "p50": self.p50_s,
                "p95": self.p95_s,
                "p99": self.p99_s,
                "mean": self.mean_s,
                "max": self.max_s,
            },
            "bytes_appended": self.bytes_appended,
            "statuses": self.statuses,
        }

    def to_text(self) -> str:
        lines = [
            f"http loadtest: {self.clients} clients x {self.duration_s:g}s, "
            f"{self.op_bytes}B appends over {self.n_files} files",
            f"  completed {self.completed} ops "
            f"({self.goodput_ops_s:,.0f} ops/s), {self.failed} failed",
            f"  latency p50 {self.p50_s * 1e3:.2f}ms  "
            f"p95 {self.p95_s * 1e3:.2f}ms  p99 {self.p99_s * 1e3:.2f}ms  "
            f"max {self.max_s * 1e3:.2f}ms",
        ]
        return "\n".join(lines)


async def _http_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    body: bytes,
) -> Tuple[int, bytes]:
    """One request/response on a kept-alive connection. The server
    always answers with ``Content-Length``, so the read is exact."""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: loadtest\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed connection")
    status = int(status_line.split(b" ", 2)[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"", b"\n"):
            break
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    payload = await reader.readexactly(length) if length else b""
    return status, payload


async def _client_loop(
    cid: int,
    host: str,
    port: int,
    path: str,
    op_bytes: int,
    deadline_box: List[float],
    start_gate: asyncio.Event,
    latencies: List[float],
    statuses: Dict[str, int],
    failures: List[str],
    loop: asyncio.AbstractEventLoop,
) -> int:
    """One closed-loop client on one keep-alive connection; returns the
    number of completed (2xx) appends. The deadline is read from
    *deadline_box* after the gate opens — it is set by the driver at
    gate time so the measured window excludes connection setup."""
    body = bytes([(cid + i) & 0xFF for i in range(op_bytes)])
    completed = 0
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as exc:
        failures.append(f"connect: {exc}")
        return 0
    try:
        await start_gate.wait()
        deadline = deadline_box[0]
        while loop.time() < deadline:
            t0 = loop.time()
            try:
                status, _ = await _http_request(
                    reader, writer, "POST", path, body
                )
            except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
                failures.append(f"transport: {type(exc).__name__}")
                break
            dt = loop.time() - t0
            key = str(status)
            statuses[key] = statuses.get(key, 0) + 1
            if 200 <= status < 300:
                latencies.append(dt)
                completed += 1
            else:
                failures.append(f"status {status}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return completed


async def run_loadtest_async(
    host: str,
    port: int,
    clients: int = 50,
    duration_s: float = 5.0,
    op_bytes: int = DEFAULT_OP_BYTES,
    n_files: int = DEFAULT_N_FILES,
    obs: Optional[Observability] = None,
) -> LoadTestResult:
    """Drive *clients* concurrent appenders against a live server."""
    if clients < 1:
        raise ValueError("need at least one client")
    obs = obs or NULL_OBS
    hist = obs.registry.histogram("loadtest.append_s")
    loop = asyncio.get_running_loop()

    # precreate the shared shard files (idempotent via overwrite)
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for i in range(n_files):
            status, payload = await _http_request(
                reader,
                writer,
                "POST",
                f"/fs/files/loadtest/shard-{i:02d}?overwrite=true",
                b"",
            )
            if status >= 300:
                raise RuntimeError(
                    f"shard setup failed: {status} {payload!r}"
                )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    latencies: List[float] = []
    statuses: Dict[str, int] = {}
    failures: List[str] = []
    # connections are established before the gate opens, so the measured
    # window contains appends only, not connection setup
    start_gate = asyncio.Event()
    deadline_box = [0.0]
    tasks = [
        asyncio.ensure_future(
            _client_loop(
                cid,
                host,
                port,
                f"/fs/append/loadtest/shard-{cid % n_files:02d}",
                op_bytes,
                deadline_box,
                start_gate,
                latencies,
                statuses,
                failures,
                loop,
            )
        )
        for cid in range(clients)
    ]
    await asyncio.sleep(0.05)  # let the clients connect and park at the gate
    t_start = loop.time()
    deadline_box[0] = t_start + duration_s
    start_gate.set()
    per_client = await asyncio.gather(*tasks)
    elapsed = loop.time() - t_start

    for dt in latencies:
        hist.observe(dt)
    completed = int(sum(per_client))
    lat = np.asarray(latencies, dtype=np.float64)
    return LoadTestResult(
        clients=clients,
        duration_s=duration_s,
        op_bytes=op_bytes,
        n_files=n_files,
        completed=completed,
        failed=len(failures),
        goodput_ops_s=completed / elapsed if elapsed > 0 else 0.0,
        p50_s=float(np.percentile(lat, 50)) if len(lat) else 0.0,
        p95_s=float(np.percentile(lat, 95)) if len(lat) else 0.0,
        p99_s=float(np.percentile(lat, 99)) if len(lat) else 0.0,
        mean_s=float(lat.mean()) if len(lat) else 0.0,
        max_s=float(lat.max()) if len(lat) else 0.0,
        bytes_appended=completed * op_bytes,
        statuses=statuses,
    )


def run_loadtest(
    host: Optional[str] = None,
    port: Optional[int] = None,
    clients: int = 50,
    duration_s: float = 5.0,
    op_bytes: int = DEFAULT_OP_BYTES,
    n_files: int = DEFAULT_N_FILES,
    n_providers: int = 8,
    obs: Optional[Observability] = None,
) -> LoadTestResult:
    """Synchronous entry point. With *host*/*port* unset, self-serves: a
    :class:`~repro.server.app.BlobServer` boots on an ephemeral port in
    a background thread, takes the traffic, and is gracefully stopped
    (lease-timer drain asserted) before the result is returned."""
    if (host is None) != (port is None):
        raise ValueError("pass both host and port, or neither")
    if host is not None:
        return asyncio.run(
            run_loadtest_async(
                host, port, clients, duration_s, op_bytes, n_files, obs=obs
            )
        )

    from ..server.app import BlobServer, ServerThread

    server = BlobServer(port=0, n_providers=n_providers, obs=obs)
    with ServerThread(server) as st:
        result = asyncio.run(
            run_loadtest_async(
                server.host,
                server.port,
                clients,
                duration_s,
                op_bytes,
                n_files,
                obs=obs,
            )
        )
    if server.live_lease_timers:
        raise RuntimeError(
            f"{server.live_lease_timers} lease timers leaked past stop"
        )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """``repro-loadtest`` — goodput and latency percentiles for the HTTP
    append path. Exits non-zero when any request failed (the CI gate),
    130 with a one-line notice on Ctrl-C."""
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        prog="repro-loadtest",
        description=(
            "Closed-loop HTTP append load test against repro-serve "
            "(or a self-served in-process server by default)."
        ),
    )
    parser.add_argument(
        "--url",
        default=None,
        metavar="HOST:PORT",
        help="target an external server (default: self-serve in-process)",
    )
    parser.add_argument("--clients", type=int, default=50, metavar="N")
    parser.add_argument(
        "--duration", type=float, default=5.0, metavar="SECONDS"
    )
    parser.add_argument(
        "--op-bytes", type=int, default=DEFAULT_OP_BYTES, metavar="BYTES"
    )
    parser.add_argument(
        "--files", type=int, default=DEFAULT_N_FILES, metavar="N",
        help="shared target files (many writers, few files)",
    )
    parser.add_argument(
        "--providers", type=int, default=8, metavar="N",
        help="providers for the self-served backend (ignored with --url)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the result document to PATH",
    )
    args = parser.parse_args(argv)
    host = port = None
    if args.url is not None:
        host, _, port_s = args.url.rpartition(":")
        host = host or "127.0.0.1"
        try:
            port = int(port_s)
        except ValueError:
            parser.error(f"bad --url {args.url!r}, expected HOST:PORT")
    try:
        result = run_loadtest(
            host=host,
            port=port,
            clients=args.clients,
            duration_s=args.duration,
            op_bytes=args.op_bytes,
            n_files=args.files,
            n_providers=args.providers,
        )
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (ConnectionError, OSError, RuntimeError) as exc:
        print(f"loadtest failed: {exc}", file=sys.stderr)
        return 1
    print(result.to_text())
    if args.json:
        with open(args.json, "w") as fp:
            json.dump(result.to_dict(), fp, indent=2)
            fp.write("\n")
        print(f"wrote {args.json}")
    return 1 if result.failed else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
