"""Declarative fault plans and client retry policy.

A :class:`FaultPlan` is runtime-agnostic data: *what* crashes (a
component kind plus a target name), *when* (seconds after the plan is
started), for *how long* (``duration`` — ``None`` means forever), and
with what *probability*. The drivers in :mod:`repro.faults.inject` turn
a plan into DES events or wall-clock timer firings.

:class:`RetryPolicy` bundles the knobs the simulated clients use when a
fault plan is active: per-RPC timeout, capped exponential backoff
between retry sweeps, and a total attempt budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

#: component kinds a plan may target
COMPONENTS = ("provider", "datanode", "metadata", "tasktracker")


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scheduled fault: crash *target* at *at*, optionally recover."""

    component: str
    target: str
    #: crash time, seconds after the plan starts
    at: float
    #: recover after this many seconds; ``None`` = crashed forever
    duration: Optional[float] = None
    #: chance this fault actually fires (materialized with a seeded rng)
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.component not in COMPONENTS:
            raise ValueError(
                f"unknown component {self.component!r} (one of {COMPONENTS})"
            )
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive (or None)")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")


class FaultPlan:
    """An ordered collection of :class:`FaultSpec`, with builder sugar."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)

    def crash(
        self,
        component: str,
        target: str,
        at: float,
        duration: Optional[float] = None,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Append a fault; returns self for chaining."""
        self.specs.append(
            FaultSpec(component, target, at, duration, probability)
        )
        return self

    def materialize(self, rng=None) -> List[FaultSpec]:
        """The faults that actually fire, probabilistic ones resolved.

        *rng* (a ``numpy.random.Generator``, e.g. from
        :func:`repro.common.rng.substream`) is required as soon as any
        spec has ``probability < 1`` — determinism is the caller's job.
        """
        out: List[FaultSpec] = []
        for spec in self.specs:
            if spec.probability >= 1.0:
                out.append(spec)
                continue
            if rng is None:
                raise ValueError(
                    "plan has probabilistic faults; pass a seeded rng"
                )
            if float(rng.random()) < spec.probability:
                out.append(spec)
        return out

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Timeout/backoff/attempt budget for clients under fault plans."""

    #: what one RPC to a crashed node costs before the client gives up on it
    rpc_timeout: float = 0.5
    #: first backoff delay between retry sweeps
    base_delay: float = 0.05
    #: backoff ceiling
    max_delay: float = 2.0
    #: total attempts (across replicas and sweeps) before the op fails
    max_attempts: int = 6

    def __post_init__(self) -> None:
        if self.rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be positive")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff(self, sweep: int) -> float:
        """Capped exponential delay before retry sweep *sweep* (0-based)."""
        return min(self.max_delay, self.base_delay * (2.0 ** sweep))

    @classmethod
    def from_cluster(cls, config) -> "RetryPolicy":
        """Build from a :class:`~repro.common.config.ClusterConfig`."""
        return cls(
            rpc_timeout=config.rpc_timeout,
            base_delay=config.rpc_retry_base,
            max_delay=config.rpc_retry_cap,
            max_attempts=config.rpc_max_attempts,
        )
