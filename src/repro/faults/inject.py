"""Fault drivers: turn a :class:`~repro.faults.plan.FaultPlan` into
actual crash/recover calls on a running deployment.

The :class:`FaultInjector` is the registry both runtimes share — each
deployment registers a ``(fail, recover)`` handler pair per component
kind. :func:`schedule_plan` schedules the plan on a DES
:class:`~repro.sim.core.Environment` as bare-callback events;
:class:`ThreadedFaultDriver` replays it on the threaded runtime from a
daemon thread using wall-clock sleeps.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import NULL_OBS, Observability
from ..obs.events import fault_crash, fault_recover
from .plan import FaultPlan, FaultSpec


class FaultInjector:
    """Component-kind registry of fail/recover handlers, with counters.

    Every injection and recovery is also marked as an instant trace
    event (:mod:`repro.obs.events`), so chaos runs show their fault
    timeline inline with the client spans they perturb.
    """

    def __init__(self, obs: Optional[Observability] = None) -> None:
        obs = obs or NULL_OBS
        self._tracer = obs.tracer
        self._handlers: Dict[
            str, Tuple[Callable[[str], None], Optional[Callable[[str], None]]]
        ] = {}
        self._c_injected = obs.registry.counter("faults.injected")
        self._c_recovered = obs.registry.counter("faults.recovered")

    def register(
        self,
        component: str,
        fail: Callable[[str], None],
        recover: Optional[Callable[[str], None]] = None,
    ) -> "FaultInjector":
        """Install handlers for one component kind; returns self."""
        self._handlers[component] = (fail, recover)
        return self

    def components(self) -> List[str]:
        return sorted(self._handlers)

    def crash(self, component: str, target: str) -> None:
        try:
            fail, _recover = self._handlers[component]
        except KeyError:
            raise ValueError(
                f"no handler registered for component {component!r} "
                f"(have {self.components()})"
            ) from None
        fail(target)
        self._c_injected.inc()
        fault_crash(self._tracer, component, target)

    def recover(self, component: str, target: str) -> None:
        try:
            _fail, recover = self._handlers[component]
        except KeyError:
            raise ValueError(
                f"no handler registered for component {component!r} "
                f"(have {self.components()})"
            ) from None
        if recover is None:
            raise ValueError(f"component {component!r} cannot recover")
        recover(target)
        self._c_recovered.inc()
        fault_recover(self._tracer, component, target)


def schedule_plan(env, plan: FaultPlan, injector: FaultInjector, rng=None) -> int:
    """Schedule *plan* on a DES environment, relative to ``env.now``.

    Returns the number of faults scheduled (after materializing
    probabilistic specs with *rng*).
    """
    specs = plan.materialize(rng)
    for spec in specs:
        env.call_at(
            env.now + spec.at,
            lambda s=spec: injector.crash(s.component, s.target),
        )
        if spec.duration is not None:
            env.call_at(
                env.now + spec.at + spec.duration,
                lambda s=spec: injector.recover(s.component, s.target),
            )
    return len(specs)


class ThreadedFaultDriver:
    """Replay a plan against the threaded runtime on wall-clock time.

    ``time_scale`` compresses the plan (0.1 = ten times faster), so
    tests can express plans in natural seconds and run them in
    milliseconds.
    """

    def __init__(
        self,
        plan: FaultPlan,
        injector: FaultInjector,
        rng=None,
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        events: List[Tuple[float, str, FaultSpec]] = []
        for spec in plan.materialize(rng):
            events.append((spec.at, "crash", spec))
            if spec.duration is not None:
                events.append((spec.at + spec.duration, "recover", spec))
        events.sort(key=lambda e: e[0])
        self._events = events
        self._injector = injector
        self._scale = time_scale
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="fault-driver", daemon=True
        )

    def start(self) -> "ThreadedFaultDriver":
        self._thread.start()
        return self

    def _run(self) -> None:
        t0 = time.monotonic()
        for at, action, spec in self._events:
            delay = t0 + at * self._scale - time.monotonic()
            if delay > 0 and self._stop.wait(delay):
                return
            if self._stop.is_set():
                return
            if action == "crash":
                self._injector.crash(spec.component, spec.target)
            else:
                self._injector.recover(spec.component, spec.target)

    def stop(self) -> None:
        """Cancel faults not yet fired."""
        self._stop.set()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)


# -- deployment adapters -------------------------------------------------------


def sim_blobseer_injector(
    blobseer, obs: Optional[Observability] = None
) -> FaultInjector:
    """Injector wired to a :class:`~repro.blobseer.simulated.SimBlobSeer`
    (``provider`` and ``metadata`` components; metadata targets are the
    provider index as a string)."""
    return (
        FaultInjector(obs)
        .register(
            "provider", blobseer.fail_provider, blobseer.recover_provider
        )
        .register(
            "metadata",
            lambda t: blobseer.fail_metadata_provider(int(t)),
            lambda t: blobseer.recover_metadata_provider(int(t)),
        )
    )


def sim_hdfs_injector(hdfs, obs: Optional[Observability] = None) -> FaultInjector:
    """Injector wired to a :class:`~repro.hdfs.simulated.SimHDFS`."""
    return FaultInjector(obs).register(
        "datanode", hdfs.fail_datanode, hdfs.recover_datanode
    )


def threaded_storage_injector(
    service=None,
    hdfs_cluster=None,
    tasktrackers=None,
    obs: Optional[Observability] = None,
) -> FaultInjector:
    """Injector for the threaded runtime: any of a
    :class:`~repro.blobseer.client.BlobSeerService`, an
    :class:`~repro.hdfs.client.HDFSCluster`, and a list of
    :class:`~repro.mapreduce.tasktracker.TaskTracker` (addressed by
    host name)."""
    injector = FaultInjector(obs)
    if service is not None:
        injector.register(
            "provider", service.fail_provider, service.recover_provider
        )
    if hdfs_cluster is not None:
        injector.register(
            "datanode",
            hdfs_cluster.fail_datanode,
            hdfs_cluster.recover_datanode,
        )
    if tasktrackers is not None:
        by_host = {t.host: t for t in tasktrackers}

        def _fail(host: str) -> None:
            by_host[host].fail()

        def _recover(host: str) -> None:
            by_host[host].recover()

        injector.register("tasktracker", _fail, _recover)
    return injector
