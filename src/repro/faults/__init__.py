"""Fault injection: declarative crash/recover plans for both runtimes.

The paper's evaluation assumes zero failures; this package is the
testbed for the failure-recovery mechanisms layered on top of it
(append-ticket leases at the version manager, replica failover with
retry/backoff in the clients, task re-execution in Map/Reduce). See
DESIGN.md's failure-model section.
"""

from .inject import (
    FaultInjector,
    ThreadedFaultDriver,
    schedule_plan,
    sim_blobseer_injector,
    sim_hdfs_injector,
    threaded_storage_injector,
)
from .plan import COMPONENTS, FaultPlan, FaultSpec, RetryPolicy

__all__ = [
    "COMPONENTS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "ThreadedFaultDriver",
    "schedule_plan",
    "sim_blobseer_injector",
    "sim_hdfs_injector",
    "threaded_storage_injector",
]
