"""Flow-level network model with max-min fair bandwidth sharing.

Each node owns an egress ("up") and ingress ("down") NIC capacity; an
optional backbone capacity models a blocking fabric. A *transfer* is a
fluid flow from one node to another: concurrent flows share the NICs
according to the classic progressive-filling (max-min fair) allocation,
which is the standard fluid approximation of many TCP streams over a
switched Ethernet — the regime of the paper's Grid'5000 Orsay cluster.

A run is a sequence of fluid intervals with piecewise-constant rates.
Two allocators implement the same max-min semantics:

* ``allocator="incremental"`` (default) — flow arrivals and completions
  mark the resources they cross *dirty* and defer the refill to the
  kernel's end-of-timestep flush (:meth:`Environment.add_flush_hook`):
  all same-instant churn — a reducer wave starting ``n_maps`` fetches,
  a barrier of symmetric flows finishing together — costs **one**
  reallocation instead of one per flow. The deferral is exact, not an
  approximation: rates are only observable across time advancement, and
  the flush runs after every same-instant event but before the clock
  moves. At the flush, only the *connected component* of flows that
  (transitively) share a NIC/backbone resource with a dirty resource is
  refilled; a per-resource membership index keeps disjoint traffic
  untouched. The refill itself is a water-filling max-min solve — a
  saturation-level heap finds successive bottleneck resources in
  O((F+R) log R) rather than iterating uniform increments over the
  whole component — with fast paths for the two common shapes: every
  flow capped by the per-flow rate ceiling, and a single bottleneck
  resource spanning the whole component (e.g. the backbone). Progress
  is accounted lazily per flow — ``(last_update, rate)`` — and
  completions live in a heap, so an event never sweeps the whole flow
  table. This is what lets the kernel scale to thousands of concurrent
  flows (the regime of the paper's 246-client sweeps and the data
  join's ``n_reducers × n_maps`` shuffle).
* ``allocator="reference"`` — the original full recompute: every event
  settles every active flow and refills the entire flow set from
  scratch. O(flows²·rounds) over a fluid sequence, but trivially
  correct; the incremental allocator is differentially tested against
  it (see ``check_reference``).

Max-min fairness decomposes exactly over connected components of the
flow/resource sharing graph, so the scoped refill is not an
approximation. With a backbone configured every non-local flow shares
one resource and the component always spans all flows — the scoped path
then degenerates to (and is counted as) a full recompute.

Transfers within one node (client co-located with a provider) bypass
the NICs at a fixed loopback bandwidth.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..common.units import GiB
from ..obs import NULL_OBS, Observability
from .core import Environment, Event

#: flows whose remaining volume drops below this many bytes are complete
_EPSILON_BYTES = 1e-3

#: allocator mode names accepted by :class:`Network`
ALLOCATORS = ("incremental", "reference")


class _NicResource:
    """One shareable capacity (a NIC direction or the backbone) plus the
    set of flow ids currently crossing it — the membership index that
    scopes incremental reallocation."""

    __slots__ = ("key", "capacity", "members")

    def __init__(self, key: Hashable, capacity: float) -> None:
        self.key = key
        self.capacity = capacity
        self.members: Set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_NicResource {self.key} cap={self.capacity:g} n={len(self.members)}>"


@dataclass(slots=True)
class NetNode:
    """One machine's attachment point: egress/ingress NIC capacities."""

    name: str
    up_capacity: float
    down_capacity: float
    #: rack this node is attached to (None on a flat topology)
    rack: Optional[str] = None
    #: lifetime counters, for metrics/debugging
    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    #: lifetime round trips initiated/served via :meth:`Network.rpc`
    rpcs_sent: int = 0
    rpcs_received: int = 0
    #: the node's shareable NIC directions (set by :meth:`Network.add_node`)
    _up_res: object = field(default=None, repr=False)
    _down_res: object = field(default=None, repr=False)
    #: the rack's uplink/downlink resources (None on a flat topology)
    _rack_up: object = field(default=None, repr=False)
    _rack_down: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.up_capacity <= 0 or self.down_capacity <= 0:
            raise ValueError(f"capacities must be positive on {self.name!r}")


@dataclass(slots=True, eq=False)  # identity hash: flows live in sets
class _Flow:
    fid: int
    src: NetNode
    dst: NetNode
    remaining: float
    event: Event
    local: bool
    #: the shareable capacities this flow crosses, computed once at flow
    #: start (src up-NIC, rack hops when the endpoints sit in different
    #: racks, backbone, dst down-NIC); empty for local flows
    resources: Tuple[_NicResource, ...] = ()
    rate: float = 0.0
    #: last instant this flow's progress was settled into ``remaining``
    last_update: float = 0.0
    #: bumped whenever the rate changes; stale completion-heap entries
    #: carry an older epoch and are discarded when popped
    epoch: int = 0


class Network:
    """The set of nodes plus the active-flow scheduler."""

    #: bandwidth of a src==dst transfer (memory copy), bytes/s
    LOOPBACK_BANDWIDTH = 4.0 * GiB

    def __init__(
        self,
        env: Environment,
        latency: float = 0.0,
        backbone_bandwidth: float = 0.0,
        flow_rate_cap: float = 0.0,
        allocator: str = "incremental",
        obs: Optional[Observability] = None,
    ) -> None:
        """*backbone_bandwidth* of 0 means a non-blocking fabric;
        *flow_rate_cap* of 0 means flows are limited only by the NICs
        (a positive value models the per-connection ceiling of the
        endpoints' I/O stacks)."""
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if backbone_bandwidth < 0:
            raise ValueError("backbone_bandwidth must be non-negative")
        if flow_rate_cap < 0:
            raise ValueError("flow_rate_cap must be non-negative")
        if allocator not in ALLOCATORS:
            raise ValueError(f"unknown allocator {allocator!r} (use {ALLOCATORS})")
        self.env = env
        self.latency = latency
        self.backbone_bandwidth = backbone_bandwidth
        self.flow_rate_cap = flow_rate_cap
        self.allocator = allocator
        self._incremental = allocator == "incremental"
        self.obs = obs or NULL_OBS
        self.nodes: Dict[str, NetNode] = {}
        self._flows: Dict[int, _Flow] = {}
        self._fid = itertools.count()
        #: flows indexed by (src name, dst name), for current_rate()
        self._pair_flows: Dict[Tuple[str, str], Set[_Flow]] = {}
        self._backbone: Optional[_NicResource] = (
            _NicResource(("__backbone__", None), backbone_bandwidth)
            if backbone_bandwidth > 0
            else None
        )
        #: rack name -> (uplink resource, downlink resource); empty on a
        #: flat (single-switch) topology
        self._racks: Dict[str, Tuple[_NicResource, _NicResource]] = {}
        #: completion heap: (absolute completion time, fid, epoch)
        self._completions: List[Tuple[float, int, int]] = []
        self._armed_at: Optional[float] = None
        self._timer_generation = 0
        #: reference-mode global settle point
        self._last_update = 0.0
        #: lifetime counter of completed transfers
        self.completed_transfers = 0
        #: resources touched by same-instant flow churn, awaiting the
        #: end-of-timestep coalesced reallocation
        self._dirty: Set[_NicResource] = set()
        #: flow-change events absorbed since the last flush (the
        #: numerator of the coalescing ratio)
        self._pending_changes = 0
        #: a local-flow start or stale-heap cleanup needs a re-arm even
        #: when no shared resource went dirty
        self._dirty_arm = False
        #: when True, every coalesced flush point re-runs the reference
        #: allocator over the full flow set and asserts the rates agree
        #: (slow; differential tests only)
        self.check_reference = False
        reg = self.obs.registry
        self._c_realloc = reg.counter("sim.net.reallocs")
        self._c_full = reg.counter("sim.net.realloc_full")
        self._h_scope = reg.histogram("sim.net.realloc_scope")
        self._c_flushes = reg.counter("sim.net.flushes")
        self._c_coalesced = reg.counter("sim.net.coalesced_changes")
        if self._incremental:
            env.add_flush_hook(self._flush)

    # -- topology -----------------------------------------------------------

    def add_rack(
        self,
        name: str,
        bandwidth: float | None = None,
        up: float | None = None,
        down: float | None = None,
    ) -> None:
        """Register a rack switch with an uplink/downlink to the core.

        Racks turn the flat single-switch fabric into a two-level tree
        (the standard cluster shape the paper's Grid'5000 Orsay site
        approximates, and the regime where a multi-rack scale experiment
        becomes meaningful): traffic between two nodes of the *same*
        rack crosses only the endpoint NICs, while inter-rack traffic
        additionally shares the source rack's uplink, the optional
        backbone, and the destination rack's downlink. Give either a
        symmetric *bandwidth* or explicit *up*/*down* capacities.
        """
        if name in self._racks:
            raise ValueError(f"duplicate rack {name!r}")
        if bandwidth is not None:
            up = down = bandwidth
        if up is None or down is None:
            raise ValueError("specify bandwidth= or both up= and down=")
        if up <= 0 or down <= 0:
            raise ValueError(f"rack capacities must be positive on {name!r}")
        self._racks[name] = (
            _NicResource((name, "rack-up"), up),
            _NicResource((name, "rack-down"), down),
        )

    def add_node(
        self,
        name: str,
        bandwidth: float | None = None,
        up: float | None = None,
        down: float | None = None,
        rack: Optional[str] = None,
    ) -> NetNode:
        """Register a node. Give either a symmetric *bandwidth* or
        explicit *up*/*down* capacities; *rack* attaches the node to a
        rack previously created with :meth:`add_rack`."""
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        if bandwidth is not None:
            up = down = bandwidth
        if up is None or down is None:
            raise ValueError("specify bandwidth= or both up= and down=")
        node = NetNode(name, up, down, rack=rack)
        node._up_res = _NicResource((name, "up"), up)
        node._down_res = _NicResource((name, "down"), down)
        if rack is not None:
            try:
                node._rack_up, node._rack_down = self._racks[rack]
            except KeyError:
                raise ValueError(
                    f"unknown rack {rack!r} (add_rack it first)"
                ) from None
        self.nodes[name] = node
        return node

    def node(self, name: str) -> NetNode:
        """Look up a node by name."""
        return self.nodes[name]

    # -- transfers ----------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Move *nbytes* from *src* to *dst*; the event fires on completion.

        Zero-byte transfers still pay one network latency (they model an
        RPC with an empty payload).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        src_node = self.nodes[src]
        dst_node = self.nodes[dst]
        done = Event(self.env)
        if nbytes == 0:
            # latency-only RPC
            self.env.call_in(self.latency, lambda: done.succeed(0.0))
            return done
        if self.latency > 0:
            self.env.call_in(
                self.latency,
                lambda: self._start_flow(src_node, dst_node, nbytes, done),
            )
        else:
            self._start_flow(src_node, dst_node, nbytes, done)
        return done

    def transfer_many(
        self, requests: "Iterable[Tuple[str, str, float]]"
    ) -> List[Event]:
        """Start one transfer per ``(src, dst, nbytes)`` request, batched.

        Semantically identical to calling :meth:`transfer` once per
        request, but the whole fan-out pays a single latency leg and —
        under the incremental allocator — lands in one coalesced
        reallocation instead of one per flow. This is the API for the
        data plane's fan-out patterns: a reducer fetching every map's
        partition, a client shipping a page to its replicas, an HDFS
        write pipeline. Returns the per-transfer completion events in
        request order.
        """
        events: List[Event] = []
        batch: List[Tuple[NetNode, NetNode, float, Event]] = []
        for src, dst, nbytes in requests:
            if nbytes < 0:
                raise ValueError("nbytes must be non-negative")
            src_node = self.nodes[src]
            dst_node = self.nodes[dst]
            done = Event(self.env)
            events.append(done)
            if nbytes == 0:
                # latency-only RPC, same as transfer()
                self.env.call_in(self.latency, lambda d=done: d.succeed(0.0))
            else:
                batch.append((src_node, dst_node, float(nbytes), done))
        if batch:
            if self.latency > 0:
                self.env.call_in(self.latency, lambda: self._start_flows(batch))
            else:
                self._start_flows(batch)
        return events

    def _start_flows(
        self, batch: List[Tuple[NetNode, NetNode, float, Event]]
    ) -> None:
        for src_node, dst_node, nbytes, done in batch:
            self._start_flow(src_node, dst_node, nbytes, done)

    def rpc(self, src: str, dst: str) -> Event:
        """A latency-only round trip (request + reply), no payload.

        Both endpoints must exist — a typo'd node name raises instead of
        silently simulating a zero-cost RPC — and the round trip is
        counted on each node's RPC counters.
        """
        try:
            src_node = self.nodes[src]
        except KeyError:
            raise ValueError(f"rpc from unknown node {src!r}") from None
        try:
            dst_node = self.nodes[dst]
        except KeyError:
            raise ValueError(f"rpc to unknown node {dst!r}") from None
        src_node.rpcs_sent += 1
        dst_node.rpcs_received += 1
        done = Event(self.env)
        self.env.call_in(2 * self.latency, lambda: done.succeed(None))
        return done

    # -- shared internals ----------------------------------------------------

    def _resources_for(
        self, src: NetNode, dst: NetNode
    ) -> Tuple[_NicResource, ...]:
        """The shareable capacities a src→dst flow crosses, in path
        order. On a flat topology: the two endpoint NICs plus the
        optional backbone (byte-identical to the pre-rack model). With
        racks: intra-rack flows stay within the rack switch (endpoint
        NICs only), inter-rack flows add the source rack's uplink, the
        backbone, and the destination rack's downlink."""
        src_rack = src.rack
        dst_rack = dst.rack
        if src_rack == dst_rack:
            # same rack, or a flat topology (both None). Intra-rack
            # traffic turns around at the rack switch and never touches
            # the core; on a flat topology the backbone (when modeled)
            # is the single switch every flow crosses.
            if src_rack is None and self._backbone is not None:
                return (src._up_res, self._backbone, dst._down_res)
            return (src._up_res, dst._down_res)
        # inter-rack (or rack <-> rackless core node): whichever rack
        # hops exist join the path
        res = [src._up_res]
        if src._rack_up is not None:
            res.append(src._rack_up)
        if self._backbone is not None:
            res.append(self._backbone)
        if dst._rack_down is not None:
            res.append(dst._rack_down)
        res.append(dst._down_res)
        return tuple(res)

    def _register_flow(self, flow: _Flow) -> None:
        self._flows[flow.fid] = flow
        pair = (flow.src.name, flow.dst.name)
        bucket = self._pair_flows.get(pair)
        if bucket is None:
            bucket = self._pair_flows[pair] = set()
        bucket.add(flow)

    def _unregister_flow(self, flow: _Flow) -> None:
        del self._flows[flow.fid]
        pair = (flow.src.name, flow.dst.name)
        bucket = self._pair_flows.get(pair)
        if bucket is not None:
            bucket.discard(flow)
            if not bucket:
                del self._pair_flows[pair]
        if not flow.local and self._incremental:
            for res in flow.resources:
                res.members.discard(flow.fid)

    def _start_flow(
        self, src: NetNode, dst: NetNode, nbytes: float, done: Event
    ) -> None:
        if self._incremental:
            self._start_flow_incremental(src, dst, nbytes, done)
            return
        self._advance()
        local = src is dst
        flow = _Flow(
            fid=next(self._fid),
            src=src,
            dst=dst,
            remaining=float(nbytes),
            event=done,
            local=local,
            resources=() if local else self._resources_for(src, dst),
            last_update=self.env.now,
        )
        self._register_flow(flow)
        self._reallocate_and_arm()

    def _local_rate(self) -> float:
        rate = self.LOOPBACK_BANDWIDTH
        if self.flow_rate_cap > 0:
            rate = min(rate, self.flow_rate_cap)
        return rate

    # -- telemetry accessors -------------------------------------------------

    @property
    def active_flows(self) -> int:
        """How many flows are currently in flight."""
        return len(self._flows)

    def aggregate_rate(self) -> float:
        """The summed allocated rate of every in-flight flow (bytes/s) —
        the fabric's instantaneous utilization, sampled by the
        telemetry time series."""
        return sum(flow.rate for flow in self._flows.values())

    # -- incremental allocator ----------------------------------------------

    def _start_flow_incremental(
        self, src: NetNode, dst: NetNode, nbytes: float, done: Event
    ) -> None:
        now = self.env.now
        local = src is dst
        flow = _Flow(
            fid=next(self._fid),
            src=src,
            dst=dst,
            remaining=float(nbytes),
            event=done,
            local=local,
            resources=() if local else self._resources_for(src, dst),
            last_update=now,
        )
        self._register_flow(flow)
        if local:
            flow.rate = self._local_rate()
            self._push_completion(flow, now)
            self._dirty_arm = True
        else:
            fid = flow.fid
            for res in flow.resources:
                res.members.add(fid)
            self._dirty.update(flow.resources)
            self._pending_changes += 1
        self.env.request_flush()

    def _flush(self) -> None:
        """End-of-timestep hook: one coalesced reallocation for all the
        flow churn of the current instant (exact — rates are only
        observable across time advancement)."""
        if self._dirty:
            seeds = list(self._dirty)
            self._dirty.clear()
            self._c_flushes.inc()
            self._c_coalesced.inc(float(self._pending_changes))
            self._pending_changes = 0
            self._dirty_arm = False
            self._realloc(seeds)
            if self.check_reference:
                self._assert_matches_reference()
        elif self._dirty_arm:
            self._dirty_arm = False
            self._arm()

    def _settle(self, flow: _Flow, now: float) -> None:
        """Fold the fluid progress since the flow's last rate change into
        its ``remaining`` and the endpoints' byte counters."""
        dt = now - flow.last_update
        if dt > 0.0 and flow.rate > 0.0:
            moved = flow.rate * dt
            flow.remaining -= moved
            flow.src.bytes_sent += moved
            flow.dst.bytes_received += moved
        flow.last_update = now

    def _push_completion(self, flow: _Flow, now: float) -> None:
        if flow.rate > 0.0:
            heapq.heappush(
                self._completions,
                (now + flow.remaining / flow.rate, flow.fid, flow.epoch),
            )

    def _component(self, seeds: List[_NicResource]) -> List[_Flow]:
        """All flows transitively sharing a resource with *seeds*."""
        comp: List[_Flow] = []
        seen_res: Set[_NicResource] = set(seeds)
        seen_fids: Set[int] = set()
        stack = list(seeds)
        flows = self._flows
        while stack:
            res = stack.pop()
            for fid in res.members:
                if fid in seen_fids:
                    continue
                seen_fids.add(fid)
                flow = flows[fid]
                comp.append(flow)
                for other in flow.resources:
                    if other not in seen_res:
                        seen_res.add(other)
                        stack.append(other)
        return comp

    def _realloc(self, seeds: List[_NicResource]) -> None:
        """Refill the component reachable from *seeds* and re-arm."""
        comp = self._component(seeds)
        self._c_realloc.inc()
        self._h_scope.observe(float(len(comp)))
        if len(comp) == len(self._flows):
            self._c_full.inc()
        if comp:
            rates = self._fill(comp)
            now = self.env.now
            flows = self._flows
            for fid, rate in rates.items():
                flow = flows[fid]
                if rate != flow.rate:
                    self._settle(flow, now)
                    flow.rate = rate
                    flow.epoch += 1
                    self._push_completion(flow, now)
        self._arm()

    def _fill(self, comp: List[_Flow]) -> Dict[int, float]:
        """Water-filling max-min fair allocation restricted to one
        connected component; returns fid → rate.

        Progressive filling raises every unfrozen flow uniformly, so at
        any moment all unfrozen flows share one common rate *level*.
        Resource ``r`` with residual capacity ``c_r`` and ``n_r``
        unfrozen members therefore saturates at ``level + c_r / n_r``
        — its position in the sorted residual demand. A lazy heap of
        these projected saturation levels visits bottleneck resources in
        order, freezing each bottleneck's members at its level: O((F +
        R) log R) per component instead of the iterative uniform
        refill's O(F · bottlenecks). Same max-min semantics as
        :meth:`_compute_rates_reference` (differentially tested to 1e-6
        by ``check_reference``).
        """
        cap_limit = self.flow_rate_cap
        # fast path 0: a single-flow component — the degenerate
        # one-flow-per-resource shape that dominates open-loop traffic
        # (a lone append touching otherwise-idle NICs). No solver state,
        # just the path's narrowest capacity.
        if len(comp) == 1:
            flow = comp[0]
            rate = min(res.capacity for res in flow.resources)
            if cap_limit > 0 and cap_limit < rate:
                rate = cap_limit
            return {flow.fid: rate}

        # per-resource solver state, settled lazily at `res_level[i]`:
        # residual capacity, unfrozen member count, member flows, epoch
        # (bumped on every count change to invalidate older heap entries)
        res_index: Dict[_NicResource, int] = {}
        res_cap: List[float] = []
        res_count: List[int] = []
        res_level: List[float] = []
        res_members: List[List[_Flow]] = []
        res_epoch: List[int] = []

        for flow in comp:
            for res in flow.resources:
                i = res_index.get(res)
                if i is None:
                    i = res_index[res] = len(res_cap)
                    res_cap.append(res.capacity)
                    res_count.append(0)
                    res_level.append(0.0)
                    res_members.append([])
                    res_epoch.append(0)
                res_count[i] += 1
                res_members[i].append(flow)

        n_res = len(res_cap)
        n_total = len(comp)
        first_share = min(res_cap[i] / res_count[i] for i in range(n_res))
        # fast path 1: the per-flow cap binds before any resource
        # saturates — every flow runs at the cap (the microbenchmarks'
        # common shape: small components on a fat fabric)
        if cap_limit > 0 and cap_limit <= first_share:
            return {flow.fid: cap_limit for flow in comp}
        # fast path 2: the first bottleneck spans the whole component
        # (e.g. every flow crosses the backbone) — everything freezes at
        # one level, no heap needed
        for i in range(n_res):
            if (
                res_count[i] == n_total
                and res_cap[i] / res_count[i] <= first_share
            ):
                return {flow.fid: first_share for flow in comp}

        rates: Dict[int, float] = {}
        heap: List[Tuple[float, int, int]] = [
            (res_cap[i] / res_count[i], i, 0) for i in range(n_res)
        ]
        heapq.heapify(heap)
        n_frozen = 0
        while n_frozen < n_total and heap:
            level, i, epoch = heapq.heappop(heap)
            if epoch != res_epoch[i] or res_count[i] == 0:
                continue
            if cap_limit > 0 and cap_limit <= level:
                # no further resource saturates before the per-flow cap:
                # every still-unfrozen flow freezes at the cap, done
                for flow in comp:
                    if flow.fid not in rates:
                        rates[flow.fid] = cap_limit
                return rates
            # resource i saturates: freeze its unfrozen members at `level`
            touched: List[int] = []
            for flow in res_members[i]:
                if flow.fid in rates:
                    continue
                rates[flow.fid] = level
                n_frozen += 1
                for res in flow.resources:
                    j = res_index[res]
                    if res_level[j] < level:
                        # settle consumption up to the new common level
                        res_cap[j] -= res_count[j] * (level - res_level[j])
                        res_level[j] = level
                    res_count[j] -= 1
                    res_epoch[j] += 1
                    touched.append(j)
            for j in touched:
                if j != i and res_count[j] > 0:
                    proj = level + max(res_cap[j], 0.0) / res_count[j]
                    heapq.heappush(heap, (proj, j, res_epoch[j]))
        if n_frozen < n_total:  # pragma: no cover - defensive against fp drift
            fallback = cap_limit if cap_limit > 0 else 0.0
            for flow in comp:
                rates.setdefault(flow.fid, fallback)
        return rates

    def _arm(self) -> None:
        """Point the single pending timer at the earliest live completion."""
        heap = self._completions
        flows = self._flows
        while heap:
            _t, fid, epoch = heap[0]
            flow = flows.get(fid)
            if flow is None or flow.epoch != epoch:
                heapq.heappop(heap)
                continue
            break
        if not heap:
            self._armed_at = None
            return
        t = heap[0][0]
        if self._armed_at is not None and self._armed_at <= t:
            return  # the pending timer fires first anyway
        self._timer_generation += 1
        generation = self._timer_generation
        self._armed_at = t
        self.env.call_at(t, lambda: self._on_completion_timer(generation))

    def _on_completion_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a newer arm
        self._armed_at = None
        now = self.env.now
        heap = self._completions
        flows = self._flows
        finished: List[_Flow] = []
        seeds: List[_NicResource] = []
        while heap:
            t, fid, epoch = heap[0]
            flow = flows.get(fid)
            if flow is None or flow.epoch != epoch:
                heapq.heappop(heap)
                continue
            if t > now:
                break
            heapq.heappop(heap)
            self._settle(flow, now)
            if (
                flow.remaining <= _EPSILON_BYTES
                # sub-resolution residue: the clock cannot advance by the
                # time the residue needs, so the flow is done now
                or now + flow.remaining / flow.rate <= now
            ):
                self._unregister_flow(flow)
                finished.append(flow)
                if not flow.local:
                    seeds.extend(flow.resources)
                    self._pending_changes += 1
            else:  # pragma: no cover - fp drift between heap entry and settle
                flow.epoch += 1
                self._push_completion(flow, now)
        # defer the refill to the end-of-timestep flush: completions that
        # land at the same instant (wave barriers, symmetric fan-outs)
        # coalesce into one reallocation, and flows started by processes
        # the finished events resume join the same flush
        if seeds:
            self._dirty.update(seeds)
        else:
            self._dirty_arm = True
        self.env.request_flush()
        for flow in finished:
            self.completed_transfers += 1
            flow.event.succeed(now)

    def _assert_matches_reference(self) -> None:
        """Differential oracle: global reference refill must agree with
        the incrementally maintained rates (slow; tests only)."""
        actual = {fid: f.rate for fid, f in self._flows.items()}
        self._compute_rates_reference()
        mismatches = []
        for fid, flow in self._flows.items():
            expect = flow.rate
            got = actual[fid]
            flow.rate = got  # restore the incremental state
            tol = 1e-6 * max(1.0, abs(expect))
            if abs(got - expect) > tol:
                mismatches.append(
                    f"flow {fid} {flow.src.name}->{flow.dst.name}: "
                    f"incremental {got!r} vs reference {expect!r}"
                )
        if mismatches:
            raise AssertionError(
                "incremental allocator diverged from reference:\n"
                + "\n".join(mismatches)
            )

    # -- reference allocator (original full recompute) ------------------------

    def _advance(self) -> None:
        """Account fluid progress since the last rate change."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        finished: List[_Flow] = []
        for flow in self._flows.values():
            moved = flow.rate * dt
            flow.remaining -= moved
            flow.src.bytes_sent += moved
            flow.dst.bytes_received += moved
            flow.last_update = now
            if flow.remaining <= _EPSILON_BYTES:
                finished.append(flow)
        for flow in finished:
            self._unregister_flow(flow)
            self.completed_transfers += 1
            flow.event.succeed(self.env.now)

    def _reallocate_and_arm(self) -> None:
        """Recompute max-min fair rates and arm the next-completion timer."""
        self._compute_rates_reference()
        self._c_realloc.inc()
        self._c_full.inc()
        self._h_scope.observe(float(len(self._flows)))
        self._timer_generation += 1
        generation = self._timer_generation
        horizon = min(
            (f.remaining / f.rate for f in self._flows.values() if f.rate > 0),
            default=None,
        )
        if horizon is None:
            return
        timer = self.env.timeout(horizon)
        timer.callbacks.append(lambda _ev: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a newer rate change
        self._advance()
        self._reallocate_and_arm()

    def _compute_rates_reference(self) -> None:
        """Progressive-filling max-min fair allocation over NIC capacities,
        with an optional per-flow rate cap — the original full recompute.

        Every non-local flow consumes each shareable capacity on its
        path — ``flow.resources``: endpoint NICs, rack uplinks/downlinks
        when the endpoints sit in different racks, and (when configured)
        the shared backbone; a flow additionally freezes once it reaches
        the per-flow cap. Local flows run at the loopback bandwidth.

        Sets ``flow.rate`` on every active flow. The incremental
        allocator is the scoped equivalent and is differentially tested
        against this implementation.
        """
        unfrozen: Set[int] = set()
        for flow in self._flows.values():
            if flow.local:
                flow.rate = self.LOOPBACK_BANDWIDTH
                if self.flow_rate_cap > 0:
                    flow.rate = min(flow.rate, self.flow_rate_cap)
            else:
                flow.rate = 0.0
                unfrozen.add(flow.fid)
        if not unfrozen:
            return

        # path resources keyed by their stable (name, direction) keys so
        # this recompute shares no mutable solver state with the
        # incremental allocator it checks
        cap: Dict[Hashable, float] = {}
        members: Dict[Hashable, Set[int]] = {}

        for fid in unfrozen:
            flow = self._flows[fid]
            for res in flow.resources:
                key = res.key
                if key not in cap:
                    cap[key] = res.capacity
                    members[key] = set()
                members[key].add(fid)

        def flow_keys(flow: _Flow):
            for res in flow.resources:
                yield res.key

        while unfrozen:
            # fair-share increment is set by the most contended resource …
            share = min(cap[key] / len(m) for key, m in members.items() if m)
            # … unless some flow hits its cap first
            headroom = share
            if self.flow_rate_cap > 0:
                headroom = min(
                    self.flow_rate_cap - self._flows[fid].rate for fid in unfrozen
                )
                headroom = min(share, max(headroom, 0.0))
            for fid in unfrozen:
                flow = self._flows[fid]
                flow.rate += headroom
                for key in flow_keys(flow):
                    cap[key] -= headroom
            frozen_now: Set[int] = set()
            if headroom >= share * (1 - 1e-12):
                # a resource saturated: freeze every flow through it
                for key, m in members.items():
                    if m and cap[key] / len(m) <= share * 1e-9:
                        frozen_now |= m
            if self.flow_rate_cap > 0:
                frozen_now |= {
                    fid
                    for fid in unfrozen
                    if self._flows[fid].rate >= self.flow_rate_cap * (1 - 1e-12)
                }
            if not frozen_now:  # pragma: no cover - defensive against fp drift
                frozen_now = set(unfrozen)
            for fid in frozen_now:
                flow = self._flows.get(fid)
                if flow is None:
                    continue
                for key in flow_keys(flow):
                    m = members.get(key)
                    if m is not None:
                        m.discard(fid)
            unfrozen -= frozen_now

    # -- introspection -------------------------------------------------------

    def active_flows_between(self, src: str, dst: str) -> int:
        """Number of in-flight transfers from *src* to *dst*."""
        return len(self._pair_flows.get((src, dst), ()))

    def current_rate(self, src: str, dst: str) -> float:
        """Aggregate current rate of all flows from *src* to *dst* (B/s)."""
        if self._incremental and (self._dirty or self._dirty_arm):
            # same-instant churn awaiting the end-of-timestep flush:
            # force it so observed rates are current (the kernel's later
            # flush then finds nothing dirty and is a no-op)
            self._flush()
        bucket = self._pair_flows.get((src, dst))
        if not bucket:
            return 0.0
        return sum(f.rate for f in bucket)
