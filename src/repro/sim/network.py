"""Flow-level network model with max-min fair bandwidth sharing.

Each node owns an egress ("up") and ingress ("down") NIC capacity; an
optional backbone capacity models a blocking fabric. A *transfer* is a
fluid flow from one node to another: concurrent flows share the NICs
according to the classic progressive-filling (max-min fair) allocation,
which is the standard fluid approximation of many TCP streams over a
switched Ethernet — the regime of the paper's Grid'5000 Orsay cluster.

Rates are recomputed whenever a flow starts or finishes, so a run is a
sequence of fluid intervals with piecewise-constant rates. Transfers
within one node (client co-located with a provider) bypass the NICs at a
fixed loopback bandwidth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set

from ..common.units import GiB
from .core import Environment, Event

#: flows whose remaining volume drops below this many bytes are complete
_EPSILON_BYTES = 1e-3


@dataclass(slots=True)
class NetNode:
    """One machine's attachment point: egress/ingress NIC capacities."""

    name: str
    up_capacity: float
    down_capacity: float
    #: lifetime counters, for metrics/debugging
    bytes_sent: float = 0.0
    bytes_received: float = 0.0

    def __post_init__(self) -> None:
        if self.up_capacity <= 0 or self.down_capacity <= 0:
            raise ValueError(f"capacities must be positive on {self.name!r}")


@dataclass(slots=True)
class _Flow:
    fid: int
    src: NetNode
    dst: NetNode
    remaining: float
    event: Event
    local: bool
    rate: float = 0.0


class Network:
    """The set of nodes plus the active-flow scheduler."""

    #: bandwidth of a src==dst transfer (memory copy), bytes/s
    LOOPBACK_BANDWIDTH = 4.0 * GiB

    def __init__(
        self,
        env: Environment,
        latency: float = 0.0,
        backbone_bandwidth: float = 0.0,
        flow_rate_cap: float = 0.0,
    ) -> None:
        """*backbone_bandwidth* of 0 means a non-blocking fabric;
        *flow_rate_cap* of 0 means flows are limited only by the NICs
        (a positive value models the per-connection ceiling of the
        endpoints' I/O stacks)."""
        if latency < 0:
            raise ValueError("latency must be non-negative")
        if backbone_bandwidth < 0:
            raise ValueError("backbone_bandwidth must be non-negative")
        if flow_rate_cap < 0:
            raise ValueError("flow_rate_cap must be non-negative")
        self.env = env
        self.latency = latency
        self.backbone_bandwidth = backbone_bandwidth
        self.flow_rate_cap = flow_rate_cap
        self.nodes: Dict[str, NetNode] = {}
        self._flows: Dict[int, _Flow] = {}
        self._fid = itertools.count()
        self._last_update = 0.0
        self._timer_generation = 0
        #: lifetime counter of completed transfers
        self.completed_transfers = 0

    # -- topology -----------------------------------------------------------

    def add_node(
        self,
        name: str,
        bandwidth: float | None = None,
        up: float | None = None,
        down: float | None = None,
    ) -> NetNode:
        """Register a node. Give either a symmetric *bandwidth* or
        explicit *up*/*down* capacities."""
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        if bandwidth is not None:
            up = down = bandwidth
        if up is None or down is None:
            raise ValueError("specify bandwidth= or both up= and down=")
        node = NetNode(name, up, down)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> NetNode:
        """Look up a node by name."""
        return self.nodes[name]

    # -- transfers ----------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Move *nbytes* from *src* to *dst*; the event fires on completion.

        Zero-byte transfers still pay one network latency (they model an
        RPC with an empty payload).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        src_node = self.nodes[src]
        dst_node = self.nodes[dst]
        done = Event(self.env)
        if nbytes == 0:
            # latency-only RPC
            t = self.env.timeout(self.latency)
            t.callbacks.append(lambda _ev: done.succeed(0.0))
            return done
        if self.latency > 0:
            t = self.env.timeout(self.latency)
            t.callbacks.append(lambda _ev: self._start_flow(src_node, dst_node, nbytes, done))
        else:
            self._start_flow(src_node, dst_node, nbytes, done)
        return done

    def rpc(self, src: str, dst: str) -> Event:
        """A latency-only round trip (request + reply), no payload."""
        done = Event(self.env)
        t = self.env.timeout(2 * self.latency)
        t.callbacks.append(lambda _ev: done.succeed(None))
        return done

    # -- internals ----------------------------------------------------------

    def _start_flow(
        self, src: NetNode, dst: NetNode, nbytes: float, done: Event
    ) -> None:
        self._advance()
        flow = _Flow(
            fid=next(self._fid),
            src=src,
            dst=dst,
            remaining=float(nbytes),
            event=done,
            local=(src is dst),
        )
        self._flows[flow.fid] = flow
        self._reallocate_and_arm()

    def _advance(self) -> None:
        """Account fluid progress since the last rate change."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        finished: List[_Flow] = []
        for flow in self._flows.values():
            moved = flow.rate * dt
            flow.remaining -= moved
            flow.src.bytes_sent += moved
            flow.dst.bytes_received += moved
            if flow.remaining <= _EPSILON_BYTES:
                finished.append(flow)
        for flow in finished:
            del self._flows[flow.fid]
            self.completed_transfers += 1
            flow.event.succeed(self.env.now)

    def _reallocate_and_arm(self) -> None:
        """Recompute max-min fair rates and arm the next-completion timer."""
        self._compute_rates()
        self._timer_generation += 1
        generation = self._timer_generation
        horizon = min(
            (f.remaining / f.rate for f in self._flows.values() if f.rate > 0),
            default=None,
        )
        if horizon is None:
            return
        timer = self.env.timeout(horizon)
        timer.callbacks.append(lambda _ev: self._on_timer(generation))

    def _on_timer(self, generation: int) -> None:
        if generation != self._timer_generation:
            return  # superseded by a newer rate change
        self._advance()
        self._reallocate_and_arm()

    def _compute_rates(self) -> None:
        """Progressive-filling max-min fair allocation over NIC capacities,
        with an optional per-flow rate cap.

        Every non-local flow consumes its source's up-capacity, its
        destination's down-capacity, and (when configured) the shared
        backbone; a flow additionally freezes once it reaches the
        per-flow cap. Local flows run at the loopback bandwidth.
        """
        unfrozen: Set[int] = set()
        for flow in self._flows.values():
            if flow.local:
                flow.rate = self.LOOPBACK_BANDWIDTH
                if self.flow_rate_cap > 0:
                    flow.rate = min(flow.rate, self.flow_rate_cap)
            else:
                flow.rate = 0.0
                unfrozen.add(flow.fid)
        if not unfrozen:
            return

        # node-direction resources: (node-name, "up"/"down") plus backbone
        cap: Dict[Hashable, float] = {}
        members: Dict[Hashable, Set[int]] = {}

        def register(key: Hashable, capacity: float, fid: int) -> None:
            if key not in cap:
                cap[key] = capacity
                members[key] = set()
            members[key].add(fid)

        for fid in unfrozen:
            flow = self._flows[fid]
            register((flow.src.name, "up"), flow.src.up_capacity, fid)
            register((flow.dst.name, "down"), flow.dst.down_capacity, fid)
            if self.backbone_bandwidth > 0:
                register(("__backbone__", None), self.backbone_bandwidth, fid)

        def flow_keys(flow: _Flow):
            yield (flow.src.name, "up")
            yield (flow.dst.name, "down")
            if self.backbone_bandwidth > 0:
                yield ("__backbone__", None)

        while unfrozen:
            # fair-share increment is set by the most contended resource …
            share = min(cap[key] / len(m) for key, m in members.items() if m)
            # … unless some flow hits its cap first
            headroom = share
            if self.flow_rate_cap > 0:
                headroom = min(
                    self.flow_rate_cap - self._flows[fid].rate for fid in unfrozen
                )
                headroom = min(share, max(headroom, 0.0))
            for fid in unfrozen:
                flow = self._flows[fid]
                flow.rate += headroom
                for key in flow_keys(flow):
                    cap[key] -= headroom
            frozen_now: Set[int] = set()
            if headroom >= share * (1 - 1e-12):
                # a resource saturated: freeze every flow through it
                for key, m in members.items():
                    if m and cap[key] / len(m) <= share * 1e-9:
                        frozen_now |= m
            if self.flow_rate_cap > 0:
                frozen_now |= {
                    fid
                    for fid in unfrozen
                    if self._flows[fid].rate >= self.flow_rate_cap * (1 - 1e-12)
                }
            if not frozen_now:  # pragma: no cover - defensive against fp drift
                frozen_now = set(unfrozen)
            for fid in frozen_now:
                flow = self._flows.get(fid)
                if flow is None:
                    continue
                for key in flow_keys(flow):
                    m = members.get(key)
                    if m is not None:
                        m.discard(fid)
            unfrozen -= frozen_now

    # -- introspection -------------------------------------------------------

    @property
    def active_flows(self) -> int:
        """Number of in-flight transfers."""
        return len(self._flows)

    def current_rate(self, src: str, dst: str) -> float:
        """Aggregate current rate of all flows from *src* to *dst* (B/s)."""
        return sum(
            f.rate
            for f in self._flows.values()
            if f.src.name == src and f.dst.name == dst
        )
