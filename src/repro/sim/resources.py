"""Shared-resource primitives for the simulation kernel.

* :class:`Resource` — a counted resource with FIFO admission (e.g. RPC
  handler threads at the version manager, reducer slots).
* :class:`Lock` — a convenience one-slot resource (mutual exclusion),
  used by the locking-append ablation.
* :class:`Store` — an unbounded FIFO of items (message queues between
  simulated components).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator

from .core import Environment, Event


class Request(Event):
    """Admission ticket for a :class:`Resource`; fires when granted.

    Use as ``yield res.request()`` inside a process, and pass the request
    back to :meth:`Resource.release` when done (or use :meth:`Resource.held`
    as a generator-based context).
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A counted resource with FIFO queueing."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiting: Deque[Request] = deque()

    def request(self) -> Request:
        """Ask for one unit; the returned event fires on grant."""
        req = Request(self)
        if self.in_use < self.capacity:
            self.in_use += 1
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return the unit held by *request*; admits the next waiter."""
        if request.resource is not self:
            raise ValueError("request belongs to a different resource")
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed(nxt)
        else:
            if self.in_use <= 0:  # pragma: no cover - defensive
                raise RuntimeError("release without matching request")
            self.in_use -= 1

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request from the queue."""
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for admission."""
        return len(self._waiting)

    def held(self, work: Generator[Event, Any, Any]) -> Generator[Event, Any, Any]:
        """Run *work* (a process generator) while holding one unit.

        Usage: ``result = yield env.process(res.held(body()))``. The unit
        is released even if *work* raises.
        """
        req = yield self.request()
        try:
            result = yield self.env.process(work)
        finally:
            self.release(req)
        return result


class Lock(Resource):
    """One-slot resource: plain mutual exclusion."""

    def __init__(self, env: Environment) -> None:
        super().__init__(env, capacity=1)


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks (the store is unbounded); ``get`` returns an
    event that fires with the oldest item once one is available. Getters
    are served FIFO.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit *item*; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event firing with the next item (immediately if available)."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
