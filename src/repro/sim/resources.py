"""Shared-resource primitives for the simulation kernel.

* :class:`Resource` — a counted resource with FIFO admission (e.g. RPC
  handler threads at the version manager, reducer slots).
* :class:`Lock` — a convenience one-slot resource (mutual exclusion),
  used by the locking-append ablation.
* :class:`Store` — an unbounded FIFO of items (message queues between
  simulated components).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Optional

from .core import Environment, Event


class Request(Event):
    """Admission ticket for a :class:`Resource`; fires when granted.

    Use as ``yield res.request()`` inside a process, and pass the request
    back to :meth:`Resource.release` when done (or use :meth:`Resource.held`
    as a generator-based context).
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A counted resource with FIFO queueing."""

    __slots__ = ("env", "capacity", "in_use", "_waiting")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        # FIFO of waiters: Request events from generator-based users,
        # bare grant callables from round_trip's contended arrivals
        self._waiting: Deque[Any] = deque()

    def request(self) -> Request:
        """Ask for one unit; the returned event fires on grant."""
        req = Request(self)
        if self.in_use < self.capacity:
            self.in_use += 1
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return the unit held by *request*; admits the next waiter."""
        if request.resource is not self:
            raise ValueError("request belongs to a different resource")
        self._release_unit()

    def _release_unit(self) -> None:
        if self._waiting:
            nxt = self._waiting.popleft()
            # the queue holds Request events (generator-based users) and
            # bare grant callbacks (round_trip's contended arrivals)
            if nxt.__class__ is Request:
                nxt.succeed(nxt)
            else:
                nxt()
        else:
            if self.in_use <= 0:  # pragma: no cover - defensive
                raise RuntimeError("release without matching request")
            self.in_use -= 1

    def round_trip(
        self,
        latency: float,
        service: float,
        fn: Optional[Callable[[], Any]] = None,
        notify: bool = True,
    ) -> Optional[Event]:
        """One RPC round trip against this resource.

        Models the standard simulated RPC: one-way *latency* to the
        server, FIFO admission to one unit, *service* seconds holding
        it, then *latency* back. The returned event fires at the reply's
        arrival with ``fn()``'s result (*fn* runs at the end of service,
        inside the critical section; if it raises, the event fails at
        the service point, as the generator-based equivalent would).

        With ``notify=False`` the round trip is fire-and-forget: no
        completion event and no reply leg at all (asynchronous
        persistence uses this; see :func:`batch_round_trips` for the
        batched fan-in form).

        This is event-chained rather than process-based on purpose:
        RPCs are the hottest construct in the experiment drivers, and
        skipping the Process/generator/Timeout machinery roughly halves
        the kernel work per call.
        """
        env = self.env
        done = Event(env) if notify else None

        def serviced() -> None:
            try:
                value = fn() if fn is not None else None
            except Exception as exc:
                self._release_unit()
                if done is None:
                    raise
                done.fail(exc)
                return
            self._release_unit()
            if done is None:
                return
            # fire `done` with the reply exactly one latency later —
            # equivalent to a Timeout but without a second event
            done.triggered = True
            done._value = value
            env._schedule(done, delay=latency)

        heap = env._heap

        def start_service() -> None:
            # inlined call_in(service, serviced): this is the hottest
            # scheduling site in the kernel — the callable is the queue
            # entry, no wrapper allocation
            when = env.now + service
            if when > env.now:
                env._eid += 1
                heapq.heappush(heap, (when, env._eid, serviced))
            else:
                env._ring.append(serviced)

        def arrive() -> None:
            if self.in_use < self.capacity:
                # uncontended grant: take the unit inline, no Request
                self.in_use += 1
                start_service()
            else:
                # contended: queue a bare grant callback — the unit is
                # transferred at release time without a Request event
                self._waiting.append(start_service)

        if latency:
            when = env.now + latency
            if when > env.now:
                env._eid += 1
                heapq.heappush(heap, (when, env._eid, arrive))
            else:
                env._ring.append(arrive)
        else:
            # a zero-latency round trip (local service, e.g. a disk)
            # joins the queue at the call site, like the generator-based
            # equivalent whose request ran on the bootstrap step
            arrive()
        return done

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request from the queue."""
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for admission."""
        return len(self._waiting)

    def held(self, work: Generator[Event, Any, Any]) -> Generator[Event, Any, Any]:
        """Run *work* (a process generator) while holding one unit.

        Usage: ``result = yield env.process(res.held(body()))``. The unit
        is released even if *work* raises.
        """
        req = yield self.request()
        try:
            result = yield self.env.process(work)
        finally:
            self.release(req)
        return result


def batch_round_trips(
    resources: "list[Resource]",
    latency: float,
    service: float,
    done: Event,
) -> None:
    """Fan one RPC out to each resource in *resources* (duplicates allowed)
    in a single arrival step; *done* fires at the last reply's arrival.

    Equivalent to issuing ``len(resources)`` independent
    :meth:`Resource.round_trip` calls at once and waiting for all of
    them — the batch departs together, so every RPC arrives at the same
    instant and in list order, and the last service to end is the last
    reply home (one shared *latency* hop). Collapsing the batch to one
    arrival entry plus a countdown turns the hottest fan-in
    (metadata-RPC charging) from ~3 queue entries per RPC into ~1.
    """
    env = resources[0].env
    remaining = len(resources)

    def make_serviced(res: Resource):
        def serviced() -> None:
            nonlocal remaining
            res._release_unit()
            remaining -= 1
            if remaining == 0:
                # last service done: the straggler's reply lands one
                # latency later — fire `done` there, no per-RPC reply leg
                done.triggered = True
                done._value = None
                env._schedule(done, delay=latency)

        return serviced

    heap = env._heap

    def arrive() -> None:
        for res in resources:
            serviced = make_serviced(res)
            if res.in_use < res.capacity:
                res.in_use += 1
                when = env.now + service
                if when > env.now:
                    env._eid += 1
                    heapq.heappush(heap, (when, env._eid, serviced))
                else:
                    env._ring.append(serviced)
            else:
                res._waiting.append(
                    lambda s=serviced: env.call_in(service, s)
                )

    if latency:
        env.call_in(latency, arrive)
    else:
        arrive()


class Lock(Resource):
    """One-slot resource: plain mutual exclusion."""

    __slots__ = ()

    def __init__(self, env: Environment) -> None:
        super().__init__(env, capacity=1)


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks (the store is unbounded); ``get`` returns an
    event that fires with the oldest item once one is available. Getters
    are served FIFO.
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit *item*; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event firing with the next item (immediately if available)."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
