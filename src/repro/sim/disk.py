"""Disk service model.

Each simulated machine owns one disk with separate sustained read and
write bandwidths, served first-come-first-served (a single spindle /
single write stream, matching the commodity SATA disks of the Orsay
cluster). Reads optionally hit the OS page cache with a configurable
probability, in which case they bypass the spindle entirely — this is
how a 270-node run keeps read throughput above raw-disk speed, exactly
as on the real testbed where recently appended pages are still resident.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..common.units import GiB
from .core import Environment, Event
from .resources import Resource


class Disk:
    """One FCFS disk with distinct read/write bandwidths."""

    #: service rate of a page-cache hit (memory copy), bytes/s
    CACHE_BANDWIDTH = 3.0 * GiB

    def __init__(
        self,
        env: Environment,
        read_bandwidth: float,
        write_bandwidth: float,
        cache_hit_ratio: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if read_bandwidth <= 0 or write_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if not (0.0 <= cache_hit_ratio <= 1.0):
            raise ValueError("cache_hit_ratio must be in [0, 1]")
        self.env = env
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.cache_hit_ratio = cache_hit_ratio
        self.rng = rng or np.random.default_rng(0)
        self._spindle = Resource(env, capacity=1)
        #: lifetime counters
        self.bytes_written = 0
        self.bytes_read = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- public API ----------------------------------------------------------

    def write(self, nbytes: int) -> Event:
        """Persist *nbytes*; the returned event fires when on disk."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.env.process(self._write_proc(nbytes), name="disk-write")

    def read(self, nbytes: int) -> Event:
        """Fetch *nbytes*; may be served from the page cache."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.env.process(self._read_proc(nbytes), name="disk-read")

    # -- processes -----------------------------------------------------------

    def _write_proc(self, nbytes: int) -> Generator[Event, Any, None]:
        req = yield self._spindle.request()
        try:
            yield self.env.timeout(nbytes / self.write_bandwidth)
            self.bytes_written += nbytes
        finally:
            self._spindle.release(req)

    def _read_proc(self, nbytes: int) -> Generator[Event, Any, None]:
        if nbytes == 0:
            return
        if self.rng.random() < self.cache_hit_ratio:
            self.cache_hits += 1
            yield self.env.timeout(nbytes / self.CACHE_BANDWIDTH)
            self.bytes_read += nbytes
            return
        self.cache_misses += 1
        req = yield self._spindle.request()
        try:
            yield self.env.timeout(nbytes / self.read_bandwidth)
            self.bytes_read += nbytes
        finally:
            self._spindle.release(req)

    @property
    def queue_length(self) -> int:
        """Requests waiting for the spindle."""
        return self._spindle.queue_length
