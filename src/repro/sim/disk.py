"""Disk service model.

Each simulated machine owns one disk with separate sustained read and
write bandwidths, served first-come-first-served (a single spindle /
single write stream, matching the commodity SATA disks of the Orsay
cluster). Reads optionally hit the OS page cache with a configurable
probability, in which case they bypass the spindle entirely — this is
how a 270-node run keeps read throughput above raw-disk speed, exactly
as on the real testbed where recently appended pages are still resident.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from ..common.units import GiB
from .core import Environment, Event
from .resources import Resource


class Disk:
    """One FCFS disk with distinct read/write bandwidths."""

    #: service rate of a page-cache hit (memory copy), bytes/s
    CACHE_BANDWIDTH = 3.0 * GiB

    def __init__(
        self,
        env: Environment,
        read_bandwidth: float,
        write_bandwidth: float,
        cache_hit_ratio: float = 0.0,
        rng: Union[np.random.Generator, Callable[[], np.random.Generator], None] = None,
    ) -> None:
        if read_bandwidth <= 0 or write_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if not (0.0 <= cache_hit_ratio <= 1.0):
            raise ValueError("cache_hit_ratio must be in [0, 1]")
        self.env = env
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.cache_hit_ratio = cache_hit_ratio
        # *rng* may be a ready generator or a zero-arg factory; factories
        # are materialized on the first draw. Building a numpy Generator
        # costs ~100µs, so eagerly constructing one per machine dominated
        # deployment setup on write-only workloads that never draw.
        self._rng: np.random.Generator | None = (
            rng if isinstance(rng, np.random.Generator) else None
        )
        self._rng_factory = rng if callable(rng) else None
        self._spindle = Resource(env, capacity=1)
        #: lifetime counters
        self.bytes_written = 0
        self.bytes_read = 0
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            factory = self._rng_factory
            self._rng = factory() if factory else np.random.default_rng(0)
        return self._rng

    @rng.setter
    def rng(self, value: np.random.Generator) -> None:
        self._rng = value

    # -- public API ----------------------------------------------------------

    def write(self, nbytes: int, notify: bool = True) -> Event:
        """Persist *nbytes*; the returned event fires when on disk.

        With ``notify=False`` no completion event is allocated (returns
        None) — for asynchronous persistence where nobody waits.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")

        def persisted() -> None:
            self.bytes_written += nbytes

        return self._spindle.round_trip(
            0.0, nbytes / self.write_bandwidth, persisted, notify=notify
        )

    def read(self, nbytes: int) -> Event:
        """Fetch *nbytes*; may be served from the page cache."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            done = Event(self.env)
            done.succeed(None)
            return done
        if self.rng.random() < self.cache_hit_ratio:
            # page-cache hit: a memory copy, no spindle involved
            self.cache_hits += 1
            done = Event(self.env)

            def copied() -> None:
                self.bytes_read += nbytes
                done.succeed(None)

            self.env.call_in(nbytes / self.CACHE_BANDWIDTH, copied)
            return done
        self.cache_misses += 1

        def fetched() -> None:
            self.bytes_read += nbytes

        return self._spindle.round_trip(
            0.0, nbytes / self.read_bandwidth, fetched
        )

    @property
    def queue_length(self) -> int:
        """Requests waiting for the spindle."""
        return self._spindle.queue_length
