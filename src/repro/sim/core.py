"""Discrete-event simulation kernel.

A compact, dependency-free process-based DES in the style of SimPy:
*processes* are Python generators that ``yield`` events (timeouts, other
processes, resource requests, …) and are resumed when those events fire.
The kernel is deterministic: events scheduled at the same instant fire in
scheduling order.

The kernel is the substrate for the performance runtime — BlobSeer,
HDFS and the Map/Reduce framework all run as simulated processes on a
modeled cluster (see :mod:`repro.sim.network`, :mod:`repro.sim.disk`,
:mod:`repro.sim.cluster`).

Queue architecture (the 1M events/s push)
-----------------------------------------

The pending-entry store is a **two-tier calendar queue** instead of one
global binary heap:

* the *near tier* is a pair of FIFO rings (plain deques): ``_ring``
  holds every entry scheduled **at the current instant** (delay 0 —
  process resumes, event trigger deliveries, flush-scheduled work) and
  ``_urgent`` holds priority-0 entries (interrupt delivery) that must
  run before every same-instant normal entry. Same-instant bursts are
  the dominant traffic of the coalescing flush hook (a reducer wave
  starting hundreds of fetches, a barrier of flows completing
  together); a deque append+popleft costs ~1/20th of a heap
  push+pop+tuple, and the FIFO order *is* the scheduling order the old
  heap produced via its monotone entry ids.
* the *far tier* is the binary heap of ``(fire_time, eid, entry)``
  tuples for strictly-future work (latency legs, service completions,
  timeouts).

Order equivalence with the single-heap kernel rests on one invariant:
**no entry lands in the far heap at the current instant.** Every
scheduling site routes ``fire_time <= now`` to the near ring (including
the floating-point corner where ``now + tiny_delay == now``), so heap
entries at the current instant can only have been scheduled at an
*earlier* instant — they carry older entry ids than anything in the
ring and are drained first. Within each tier FIFO order equals entry-id
order. The drain order per instant is therefore: urgent ring, then
heap entries at ``now``, then the normal ring — exactly the
``(time, priority, eid)`` order of the old kernel, which the
differential allocator oracle and the DES↔threaded parity suites
re-verify.

Queue entries are one of three shapes, cheapest first:

* a **bare callable** — ``call_in``/``call_at`` fire-and-forget
  callbacks (network latency legs, RPC service completions). No
  wrapper object is allocated at all; the callable itself is the
  entry.
* a pooled :class:`_Resume` — resumes a process whose yield target had
  already been processed. Recycled through a freelist immediately
  after dispatch, so steady-state resume traffic allocates nothing.
* an :class:`Event` — user-visible occurrences with waiter lists.
  Events are *not* pooled: callers legitimately hold references after
  processing (``.value``, ``.ok``), so recycling them would corrupt
  observable state.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..common.errors import InterruptedProcessError, SimDeadlockError

#: type of the generators that implement simulated processes
ProcessGenerator = Generator["Event", Any, Any]


class _Resume:
    """Internal queue entry: resume a process that yielded an event
    which had already been processed.

    Replaces the throwaway ``immediate`` :class:`Event` the kernel used
    to allocate per already-fired yield target. Instances are recycled
    through :attr:`Environment._resume_pool` right after dispatch.
    """

    __slots__ = ("process", "ok", "value")

    def __init__(self, process: "Process", ok: bool, value: Any) -> None:
        self.process = process
        self.ok = ok
        self.value = value


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* when given a value (or failure), and
    *processed* once the kernel has run its callbacks. Waiting on an
    already-processed event resumes the waiter immediately (next step).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "triggered", "processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool = True
        self.triggered = False
        self.processed = False

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self.triggered = True
        self._ok = True
        self._value = value
        self.env._ring.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see *exception* raised."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self.triggered = True
        self._ok = False
        self._value = exception
        self.env._ring.append(self)
        return self

    # -- inspection ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the failure exception)."""
        if not self.triggered:
            raise RuntimeError("event value read before trigger")
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at t={self.env.now:.6f}>"


class Timeout(Event):
    """An event that fires *delay* simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        # `not (delay >= 0)` also rejects NaN, which `delay < 0` lets
        # through — a NaN fire time silently corrupts heap order
        if not (delay >= 0):
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self.triggered = True
        self._value = value
        env._schedule(self, delay=delay)


class Interruption(Event):
    """Internal event used to deliver an interrupt into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        self.process = process
        self.triggered = True
        self._ok = False
        self._value = InterruptedProcessError(cause)
        # priority 0: delivered before every same-instant normal entry
        self.env._urgent.append(self)


class Process(Event):
    """A running simulated process; also an event that fires at its return.

    The wrapped generator yields :class:`Event` instances; the process
    sleeps until each fires, then is resumed with the event's value (or
    has the event's exception thrown into it).
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(
        self, env: "Environment", generator: ProcessGenerator, name: str = ""
    ) -> None:
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # bootstrap: resume the generator at t=now on the next kernel step
        env._schedule_resume(self, True, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not returned or raised."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptedProcessError` into the process.

        Used by failure-injection tests to kill providers mid-transfer.
        Interrupting a finished process is a no-op.
        """
        if not self.is_alive:
            return
        Interruption(self, cause).callbacks.append(self._deliver_interrupt)

    def _deliver_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return
        # detach from whatever we were waiting for
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._step(event)

    def _resume(self, event: Event) -> None:
        self._target = None
        self._do_step(event._ok, event._value)

    def _step(self, event: Event) -> None:
        self._do_step(event._ok, event._value)

    def _do_step(self, ok: bool, value: Any) -> None:
        env = self.env
        env._active_process = self
        try:
            if ok:
                target = self.generator.send(value)
            else:
                target = self.generator.throw(value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        env._active_process = None
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.processed:
            # already fired: resume on the next kernel step
            env._schedule_resume(self, target._ok, target._value)
        else:
            self._target = target
            target.callbacks.append(self._resume)


class Condition(Event):
    """Waits for all (or any) of a set of events.

    Succeeds with a list of the values of the events that had fired by
    trigger time, in the order the events were given. Fails as soon as
    any constituent fails.
    """

    __slots__ = ("events", "need", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event], need: int) -> None:
        super().__init__(env)
        # subclasses hand in a list they already materialized; reuse it
        # instead of copying (these fan-ins sit on the page-ship path)
        self.events: List[Event] = (
            events if type(events) is list else list(events)
        )
        if need < 0 or need > len(self.events):
            raise ValueError(f"need={need} out of range for {len(self.events)} events")
        self.need = need
        self._done = 0
        if need == 0 or not self.events:
            self.succeed([])
            return
        on_fire = self._on_fire
        for ev in self.events:
            if ev.processed:
                on_fire(ev)
                if self.triggered:
                    return
            else:
                ev.callbacks.append(on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done >= self.need:
            values = [ev._value for ev in self.events if ev.triggered and ev._ok]
            self.succeed(values)


class AllOf(Condition):
    """Fires when every constituent event has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        events = list(events)
        super().__init__(env, events, need=len(events))


class AnyOf(Condition):
    """Fires when at least one constituent event has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        events = list(events)
        super().__init__(env, events, need=min(1, len(events)))


class Environment:
    """The simulation clock and the two-tier calendar queue."""

    __slots__ = (
        "now",
        "_heap",
        "_ring",
        "_urgent",
        "_eid",
        "_active_process",
        "events_processed",
        "_flush_hooks",
        "_flush_pending",
        "_resume_pool",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        #: far tier: (fire_time, eid, entry) for strictly-future work
        self._heap: List[tuple] = []
        #: near tier: entries firing at the current instant, FIFO
        self._ring: deque = deque()
        #: priority-0 entries (interrupt delivery), before every normal
        #: same-instant entry
        self._urgent: deque = deque()
        self._eid = 0
        self._active_process: Process | None = None
        #: lifetime count of processed queue entries (events, scheduled
        #: callbacks, resumes) — the denominator of events/sec in the
        #: perf harness
        self.events_processed: int = 0
        #: end-of-timestep flush hooks (see :meth:`add_flush_hook`)
        self._flush_hooks: List[Callable[[], None]] = []
        self._flush_pending: bool = False
        #: freelist of recycled _Resume entries
        self._resume_pool: List[_Resume] = []

    # -- end-of-timestep flush ----------------------------------------------

    def add_flush_hook(self, fn: Callable[[], None]) -> None:
        """Register *fn* to run when a timestep ends — after every queue
        entry at the current instant has been processed, but before
        simulated time advances (or the queue drains).

        Hooks only run after :meth:`request_flush` has been called since
        the last flush. The network uses this to coalesce same-instant
        flow churn into one rate reallocation: rates are only observable
        across time advancement, so deferring the refill to the end of
        the timestep is exact, not an approximation. A hook may schedule
        new work at the current instant; that work (and any re-requested
        flush) is processed before time advances.
        """
        self._flush_hooks.append(fn)

    def request_flush(self) -> None:
        """Arm the end-of-timestep flush (idempotent within a timestep)."""
        self._flush_pending = True

    def _run_flush_hooks(self) -> None:
        self._flush_pending = False
        for fn in self._flush_hooks:
            fn()

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        """Internal: enqueue an Event *delay* seconds from now."""
        if not priority:
            self._urgent.append(event)
            return
        if delay == 0.0:
            self._ring.append(event)
            return
        when = self.now + delay
        if when > self.now:
            self._eid += 1
            heapq.heappush(self._heap, (when, self._eid, event))
        elif when == self.now:
            # sub-resolution delay: now + delay rounded back to now
            self._ring.append(event)
        else:
            raise ValueError(f"negative schedule delay: {delay}")

    def _schedule_resume(self, process: "Process", ok: bool, value: Any) -> None:
        """Enqueue a (pooled) resume of *process* at the current instant."""
        pool = self._resume_pool
        if pool:
            entry = pool.pop()
            entry.process = process
            entry.ok = ok
            entry.value = value
        else:
            entry = _Resume(process, ok, value)
        self._ring.append(entry)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run *callback* at absolute simulated time *when*; returns the
        event so callers can also wait on it."""
        if not (when >= self.now):
            raise ValueError(f"cannot schedule in the past ({when} < {self.now})")
        ev = Timeout(self, when - self.now)
        ev.callbacks.append(lambda _ev: callback())
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Run bare callback *fn* after *delay* seconds — the fast path
        for fire-and-forget scheduling (no object is allocated at all;
        the callable itself is the queue entry, so the occurrence cannot
        be yielded on). Rejects negative and NaN delays — an entry
        behind ``now`` would corrupt the calendar-queue order."""
        if delay > 0.0:
            when = self.now + delay
            if when > self.now:
                self._eid += 1
                heapq.heappush(self._heap, (when, self._eid, fn))
            else:
                # delay too small for the clock to resolve: fire this instant
                self._ring.append(fn)
        elif delay == 0.0:
            self._ring.append(fn)
        else:
            raise ValueError(f"negative delay: {delay}")

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run bare callback *fn* at absolute time *when* — unlike
        ``call_in(when - now, …)`` the fire time is *when* to the bit,
        which the network's completion heap relies on. Rejects past (and
        NaN) deadlines instead of silently scheduling behind ``now``."""
        now = self.now
        if when > now:
            self._eid += 1
            heapq.heappush(self._heap, (when, self._eid, fn))
        elif when == now:
            self._ring.append(fn)
        else:
            raise ValueError(f"cannot schedule in the past ({when} < {now})")

    def every(
        self,
        period: float,
        fn: Callable[[], None],
        double_after: Optional[int] = None,
    ) -> None:
        """Run bare callback *fn* every *period* seconds, starting one
        period from now, for as long as *other* work keeps the queue
        alive.

        The tick does not reschedule itself when it would be the only
        queue entry left, so a drain-the-queue ``run()`` still
        terminates — the periodic samplers built on this stop with the
        workload instead of keeping the simulation alive forever.

        With *double_after* set, the period doubles after every that
        many ticks: short runs get fine-grained coverage from the
        initial period while the lifetime tick count grows only
        logarithmically with the run's simulated duration — a fixed
        fine period would make sampling dominate the event count of a
        multi-hour simulation.
        """
        if not (period > 0):
            raise ValueError(f"period must be positive: {period}")
        if double_after is not None and double_after < 1:
            raise ValueError(f"double_after must be >= 1: {double_after}")
        state = {"period": period, "ticks": 0}

        def tick() -> None:
            fn()
            if double_after is not None:
                state["ticks"] += 1
                if state["ticks"] % double_after == 0:
                    state["period"] *= 2.0
            if self._heap or self._ring or self._urgent or self._flush_pending:
                self.call_in(state["period"], tick)

        self.call_in(state["period"], tick)

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing after *delay* simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a process from a generator; returns its completion event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing once every event in *events* has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing once any event in *events* has fired."""
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------------

    def _pending(self) -> bool:
        """Any queue entry at all (either tier)?"""
        return bool(self._urgent or self._ring or self._heap)

    def step(self) -> None:
        """Process the next scheduled entry (running a pending flush
        first when the current instant is exhausted)."""
        urgent = self._urgent
        ring = self._ring
        heap = self._heap
        now = self.now
        if self._flush_pending and not urgent and not ring and (
            not heap or heap[0][0] > now
        ):
            self._run_flush_hooks()
        # drain order within the instant: urgent ring, then heap entries
        # scheduled at `now` from earlier instants (older entry ids),
        # then the normal ring — see the module docstring
        if urgent:
            entry = urgent.popleft()
        elif heap and heap[0][0] <= now:
            entry = heapq.heappop(heap)[2]
        elif ring:
            entry = ring.popleft()
        elif heap:
            when, _eid, entry = heapq.heappop(heap)
            self.now = when
        else:
            raise IndexError("step from an empty queue")
        self.events_processed += 1
        self._dispatch(entry)

    def _dispatch(self, entry: Any) -> None:
        """Run one queue entry (shared by step(); run() inlines this)."""
        cls = entry.__class__
        if cls is _Resume:
            process, ok, value = entry.process, entry.ok, entry.value
            entry.process = entry.value = None
            self._resume_pool.append(entry)
            process._do_step(ok, value)
            return
        if cls is Event or isinstance(entry, Event):
            callbacks = entry.callbacks
            entry.callbacks = None
            entry.processed = True
            if callbacks:
                for cb in callbacks:
                    cb(entry)
            elif not entry._ok and not isinstance(entry, Interruption):
                # an unwaited-for failure must not pass silently
                raise entry._value
            return
        entry()  # bare callable from call_in/call_at

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None`` — run until the queue drains.
        * ``until=<float>`` — run until simulated time reaches the value.
        * ``until=<Event>`` — run until that event is processed, returning
          its value (raising its exception if it failed); raises
          :class:`SimDeadlockError` if the queue drains first.
        """
        if isinstance(until, Event):
            # the hot loop of every experiment driver: dispatch is fully
            # inlined so a near-tier entry costs one deque popleft plus
            # the callback itself, with the events_processed tally kept
            # in a local
            target = until
            urgent = self._urgent
            ring = self._ring
            heap = self._heap
            pop = heapq.heappop
            resume_pool = self._resume_pool
            processed = 0
            try:
                while not target.processed:
                    if urgent:
                        entry = urgent.popleft()
                    elif heap and heap[0][0] <= self.now:
                        entry = pop(heap)[2]
                    elif ring:
                        entry = ring.popleft()
                    else:
                        # instant exhausted: run deferred work (e.g. the
                        # network's coalesced reallocation) before time
                        # advances, then re-peek — the flush may have
                        # scheduled same-instant entries
                        if self._flush_pending:
                            self._run_flush_hooks()
                            continue
                        if not heap:
                            raise SimDeadlockError(
                                f"event queue drained before {target!r} fired"
                            )
                        when, _eid, entry = pop(heap)
                        self.now = when
                    processed += 1
                    cls = entry.__class__
                    if cls is _Resume:
                        process, ok, value = entry.process, entry.ok, entry.value
                        entry.process = entry.value = None
                        resume_pool.append(entry)
                        process._do_step(ok, value)
                        continue
                    if cls is Event or isinstance(entry, Event):
                        callbacks = entry.callbacks
                        entry.callbacks = None
                        entry.processed = True
                        if callbacks:
                            for cb in callbacks:
                                cb(entry)
                        elif not entry._ok and not isinstance(entry, Interruption):
                            raise entry._value
                        continue
                    entry()
            finally:
                self.events_processed += processed
            if not target._ok:
                raise target._value
            return target._value
        if until is None:
            while True:
                if self._pending():
                    self.step()
                elif self._flush_pending:
                    # a pending flush may arm new work (e.g. deferred
                    # flow-completion timers) before the queue drains
                    self._run_flush_hooks()
                else:
                    return None
        horizon = float(until)
        if horizon < self.now:
            raise ValueError(f"until={horizon} is in the past (now={self.now})")
        heap = self._heap
        while True:
            if self._urgent or self._ring:
                self.step()
                continue
            if self._flush_pending and (not heap or heap[0][0] > self.now):
                self._run_flush_hooks()
                continue
            if heap and heap[0][0] <= horizon:
                self.step()
                continue
            break
        self.now = horizon
        return None

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None between steps)."""
        return self._active_process
