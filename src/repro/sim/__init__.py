"""Discrete-event cluster simulator: the stand-in for the Grid'5000
testbed on which the paper's evaluation ran."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Process,
    Timeout,
)
from .resources import Lock, Request, Resource, Store
from .network import Network, NetNode
from .disk import Disk
from .cluster import SimCluster, SimNode
from .metrics import Metrics, OpSample

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Lock",
    "Request",
    "Resource",
    "Store",
    "Network",
    "NetNode",
    "Disk",
    "SimCluster",
    "SimNode",
    "Metrics",
    "OpSample",
]
