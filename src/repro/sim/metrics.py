"""Measurement helpers for simulated experiments.

The paper reports, per microbenchmark, the *average throughput* achieved
by concurrent clients each performing a set of operations. We record one
:class:`OpSample` per client operation and aggregate exactly that way:
per-client throughput is bytes moved over that client's wall time; the
reported figure is the mean over clients.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass(frozen=True, slots=True)
class OpSample:
    """One completed client operation."""

    client: str
    kind: str  # "append" | "read" | "write" | ...
    start: float
    end: float
    nbytes: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def throughput(self) -> float:
        """Bytes per second of this single operation.

        A zero-duration operation (possible in simulation when every
        modelled cost is zero) reports 0.0 rather than ``inf``: an
        infinity would poison every mean it enters downstream.
        """
        if self.duration <= 0:
            return 0.0
        return self.nbytes / self.duration


@dataclass(slots=True)
class Metrics:
    """Collects operation samples plus free-form counters."""

    samples: List[OpSample] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def record(
        self, client: str, kind: str, start: float, end: float, nbytes: int
    ) -> None:
        """Record one finished operation."""
        if end < start:
            raise ValueError("operation ends before it starts")
        self.samples.append(OpSample(client, kind, start, end, nbytes))

    def bump(self, name: str, amount: float = 1.0) -> None:
        """Increment a named counter."""
        self.counters[name] += amount

    # -- aggregation ---------------------------------------------------------

    def of_kind(self, kind: str) -> List[OpSample]:
        """All samples of one operation kind."""
        return [s for s in self.samples if s.kind == kind]

    def per_client_throughput(self, kind: str) -> Dict[str, float]:
        """Each client's overall throughput for *kind*: total bytes over the
        client's busy span (first start to last end)."""
        spans: Dict[str, List[OpSample]] = defaultdict(list)
        for s in self.of_kind(kind):
            spans[s.client].append(s)
        out: Dict[str, float] = {}
        for client, ops in spans.items():
            start = min(o.start for o in ops)
            end = max(o.end for o in ops)
            total = sum(o.nbytes for o in ops)
            out[client] = total / (end - start) if end > start else 0.0
        return out

    def average_client_throughput(self, kind: str) -> float:
        """The paper's headline metric: mean per-client throughput (B/s)."""
        per = self.per_client_throughput(kind)
        if not per:
            return 0.0
        return float(np.mean(list(per.values())))

    def aggregate_throughput(self, kind: str) -> float:
        """Total bytes of *kind* over the experiment's span (B/s)."""
        ops = self.of_kind(kind)
        if not ops:
            return 0.0
        start = min(o.start for o in ops)
        end = max(o.end for o in ops)
        total = sum(o.nbytes for o in ops)
        return total / (end - start) if end > start else 0.0

    def makespan(self, kind: str | None = None) -> float:
        """Wall time from the first start to the last end (optionally of
        one kind)."""
        ops = self.samples if kind is None else self.of_kind(kind)
        if not ops:
            return 0.0
        return max(o.end for o in ops) - min(o.start for o in ops)
