"""Simulated cluster: machines with NICs and disks on a shared fabric.

:class:`SimCluster` materializes a :class:`~repro.common.config.ClusterConfig`
into a network of :class:`~repro.sim.network.NetNode` s and
:class:`~repro.sim.disk.Disk` s, one pair per machine, all driven by one
:class:`~repro.sim.core.Environment`. Experiment deployments
(:mod:`repro.experiments.deploy`) assign roles (version manager, metadata
providers, data providers / namenode, datanodes, clients) to these
machines following the paper's Grid'5000 setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List

from typing import Optional

from ..common.config import ClusterConfig
from ..common.rng import substream
from ..obs import Observability
from .core import Environment
from .disk import Disk
from .network import Network, NetNode


@dataclass(slots=True)
class SimNode:
    """One simulated machine."""

    name: str
    net: NetNode
    disk: Disk


class SimCluster:
    """All machines of one experiment reservation."""

    def __init__(
        self, config: ClusterConfig, obs: Optional[Observability] = None
    ) -> None:
        config.validate()
        self.config = config
        self.env = Environment()
        self.network = Network(
            self.env,
            latency=config.latency,
            backbone_bandwidth=config.backbone_bandwidth,
            flow_rate_cap=config.flow_rate_cap,
            allocator=config.allocator,
            obs=obs,
        )
        rack_names: List[str] = []
        if config.racks > 0:
            for r in range(config.racks):
                rack_name = f"rack-{r:02d}"
                self.network.add_rack(rack_name, bandwidth=config.rack_bandwidth)
                rack_names.append(rack_name)
        self.nodes: List[SimNode] = []
        self._by_name: Dict[str, SimNode] = {}
        for i in range(config.nodes):
            name = f"node-{i:03d}"
            net = self.network.add_node(
                name,
                bandwidth=config.nic_bandwidth,
                # round-robin rack assignment spreads every role's nodes
                # across racks, like the real reservation would
                rack=rack_names[i % len(rack_names)] if rack_names else None,
            )
            disk = Disk(
                self.env,
                read_bandwidth=config.disk_read_bandwidth,
                write_bandwidth=config.disk_write_bandwidth,
                cache_hit_ratio=config.page_cache_hit_ratio,
                # lazy: building 270 generators up front dominated setup
                rng=partial(substream, config.seed, "disk", i),
            )
            node = SimNode(name, net, disk)
            self.nodes.append(node)
            self._by_name[name] = node

    def node(self, name: str) -> SimNode:
        """Look up a machine by name."""
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self.nodes)

    def names(self) -> List[str]:
        """All machine names, in index order."""
        return [n.name for n in self.nodes]
