"""HDFS reimplementation — the paper's baseline storage layer.

Namenode + datanodes with 64 MB chunks, random placement, client write
buffering, whole-chunk readahead, write-once-read-many semantics and —
crucially for this paper — *no* append support: the call exists in the
:class:`~repro.common.fs.FileSystem` interface but raises
:class:`~repro.common.errors.AppendNotSupportedError`.
"""

from .block import BlockId, BlockInfo
from .datanode import DataNode
from .namenode import INodeFile, NameNode
from .client import HDFSCluster, HDFSFileSystem, HDFSInputStream, HDFSOutputStream

__all__ = [
    "BlockId",
    "BlockInfo",
    "DataNode",
    "INodeFile",
    "NameNode",
    "HDFSCluster",
    "HDFSFileSystem",
    "HDFSInputStream",
    "HDFSOutputStream",
]
