"""HDFS client: the :class:`~repro.common.fs.FileSystem` implementation.

Reproduces the client-side behaviours the paper calls out:

* **write buffering** — "Clients buffer all write operations until the
  data reaches the size of a chunk (64MB)"; only then is a chunk
  allocated at the namenode and shipped to datanodes;
* **readahead** — "when HDFS receives a read request for a small block,
  it prefetches the entire chunk that contains the required block";
* **no append** — :meth:`HDFSFileSystem.append` raises
  :class:`~repro.common.errors.AppendNotSupportedError`;
* single writer, write-once-read-many.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, List, Optional, Set, Tuple

from ..common.config import HDFSConfig
from ..common.errors import (
    AppendNotSupportedError,
    FileClosedError,
    PageNotFoundError,
    ProviderUnavailableError,
    ReplicationError,
)
from ..common.fs import (
    BlockLocation,
    FileStatus,
    FileSystem,
    InputStream,
    OutputStream,
    normalize_path,
)
from ..common.rng import substream
from .block import BlockId, BlockInfo
from .datanode import DataNode
from .namenode import INodeFile, NameNode


class HDFSCluster:
    """One in-process HDFS deployment: a namenode plus datanodes."""

    def __init__(
        self,
        n_datanodes: int = 4,
        config: Optional[HDFSConfig] = None,
        seed: int = 0,
    ) -> None:
        self.config = config or HDFSConfig()
        self.config.validate()
        self.seed = seed
        names = [f"datanode-{i:03d}" for i in range(n_datanodes)]
        self.datanodes: Dict[str, DataNode] = {n: DataNode(n) for n in names}
        self.namenode = NameNode(names, config=self.config, seed=seed)

    def file_system(self, client_name: str = "client") -> "HDFSFileSystem":
        """A client endpoint bound to this deployment."""
        return HDFSFileSystem(self, client_name)

    def fail_datanode(self, name: str) -> None:
        """Fault injection: crash a datanode and exclude it from placement."""
        self.datanodes[name].fail()
        self.namenode.mark_down(name)

    def recover_datanode(self, name: str) -> None:
        self.datanodes[name].recover()
        self.namenode.mark_up(name)


class HDFSFileSystem(FileSystem):
    """Hadoop ``FileSystem`` facade over an :class:`HDFSCluster`."""

    scheme = "hdfs"

    def __init__(self, cluster: HDFSCluster, client_name: str) -> None:
        self.cluster = cluster
        self.client_name = client_name

    # -- data paths ---------------------------------------------------------------

    def create(self, path: str, overwrite: bool = False) -> "HDFSOutputStream":
        path = normalize_path(path)
        self.cluster.namenode.create(path, self.client_name, overwrite=overwrite)
        return HDFSOutputStream(self, path)

    def open(self, path: str) -> "HDFSInputStream":
        path = normalize_path(path)
        inode = self.cluster.namenode.get_file(path)
        return HDFSInputStream(self, path, inode)

    def append(self, path: str) -> OutputStream:
        """Present in the interface, refused by this file system."""
        self.cluster.namenode.append(path)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- namespace ------------------------------------------------------------------

    def mkdirs(self, path: str) -> None:
        self.cluster.namenode.mkdirs(path)

    def delete(self, path: str, recursive: bool = False) -> bool:
        return self.cluster.namenode.delete(path, recursive=recursive) is not None

    def rename(self, src: str, dst: str) -> None:
        self.cluster.namenode.rename(src, dst)

    def exists(self, path: str) -> bool:
        return self.cluster.namenode.exists(path)

    def get_status(self, path: str) -> FileStatus:
        return self.cluster.namenode.get_status(path)

    def list_dir(self, path: str) -> List[FileStatus]:
        return self.cluster.namenode.list_dir(path)

    def get_block_locations(
        self, path: str, offset: int, length: int
    ) -> List[BlockLocation]:
        return self.cluster.namenode.get_block_locations(path, offset, length)

    # -- datanode I/O helpers -----------------------------------------------------------

    def _write_block(
        self, path: str, data: bytes
    ) -> None:
        """Allocate a chunk at the namenode and ship it to every replica."""
        nn = self.cluster.namenode
        block_id, targets = nn.allocate_block(path, self.client_name)
        stored: List[str] = []
        for name in targets:
            node = self.cluster.datanodes[name]
            try:
                node.put_block(block_id, data)
                stored.append(name)
            except ProviderUnavailableError:
                nn.mark_down(name)
        if not stored:
            raise ReplicationError(f"chunk {block_id} stored nowhere")
        nn.commit_block(path, self.client_name, block_id, len(data), tuple(stored))

    def _read_block_range(
        self,
        block: BlockInfo,
        offset: int,
        size: int,
        dead: Optional[Set[str]] = None,
        start: int = 0,
    ) -> bytes:
        """Read a range of one chunk, falling back across replicas.

        *start* rotates the replica tried first (so readers spread over
        replicas instead of hammering placement order); datanodes in
        *dead* are tried last and the set is updated in place, giving the
        owning stream a dead-replica memory for its lifetime.
        """
        n = len(block.datanodes)
        order = [block.datanodes[(start + i) % n] for i in range(n)]
        if dead:
            order.sort(key=lambda name: name in dead)
        last_exc: Exception | None = None
        for name in order:
            node = self.cluster.datanodes.get(name)
            if node is None:
                continue
            try:
                data = node.get_block(block.block_id, offset, size)
            except ProviderUnavailableError as exc:
                if dead is not None:
                    dead.add(name)
                last_exc = exc
            except PageNotFoundError as exc:
                # the datanode answered: alive, just missing the chunk
                last_exc = exc
            else:
                if dead is not None:
                    dead.discard(name)
                return data
        raise ReplicationError(
            f"no replica of chunk {block.block_id} is readable"
        ) from last_exc


class HDFSOutputStream(OutputStream):
    """Write stream with chunk-granularity client buffering."""

    def __init__(self, fs: HDFSFileSystem, path: str) -> None:
        self.fs = fs
        self.path = path
        self._buffer = bytearray()
        self._written = 0
        self._closed = False
        self._lock = threading.Lock()
        self._chunk_size = fs.cluster.config.chunk_size
        self._buffer_limit = min(fs.cluster.config.write_buffer, self._chunk_size)

    def write(self, data: bytes) -> int:
        with self._lock:
            self._check_open()
            self._buffer += data
            self._written += len(data)
            while len(self._buffer) >= self._buffer_limit:
                chunk = bytes(self._buffer[: self._buffer_limit])
                del self._buffer[: self._buffer_limit]
                self.fs._write_block(self.path, chunk)
            return len(data)

    def flush(self) -> None:
        """A no-op by design: HDFS only ships full chunks (plus the final
        partial chunk at close) — flushing mid-chunk is not supported by
        the write-once model."""
        with self._lock:
            self._check_open()

    def tell(self) -> int:
        with self._lock:
            return self._written

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            if self._buffer:
                self.fs._write_block(self.path, bytes(self._buffer))
                self._buffer.clear()
            self.fs.cluster.namenode.complete(self.path, self.fs.client_name)
            self._closed = True

    def discard(self) -> None:
        """Abandon the under-construction file entirely (never visible)."""
        with self._lock:
            if self._closed:
                return
            self._buffer.clear()
            self.fs.cluster.namenode.abandon(self.path, self.fs.client_name)
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise FileClosedError(self.path)


class HDFSInputStream(InputStream):
    """Read stream with whole-chunk readahead caching."""

    def __init__(self, fs: HDFSFileSystem, path: str, inode: INodeFile) -> None:
        self.fs = fs
        self.path = path
        self._blocks = list(inode.blocks)
        self._offsets: List[int] = []
        pos = 0
        for b in self._blocks:
            self._offsets.append(pos)
            pos += b.length
        self._size = pos
        self._pos = 0
        self._closed = False
        self._lock = threading.Lock()
        # readahead cache: (block index, chunk bytes)
        self._cached: Optional[Tuple[int, bytes]] = None
        #: lifetime counter of datanode fetches (readahead effectiveness)
        self.fetches = 0
        # replica rotation: seeded per-stream phase, stepped per fetch
        self._replica_rr = itertools.count(
            int(
                substream(
                    fs.cluster.seed, "hdfs-read", fs.client_name, path
                ).integers(1 << 30)
            )
        )
        #: datanodes seen failing, remembered for this stream's lifetime
        self._dead: Set[str] = set()

    # -- positioning -----------------------------------------------------------------

    def seek(self, offset: int) -> None:
        with self._lock:
            self._check_open()
            if offset < 0 or offset > self._size:
                raise ValueError(f"seek to {offset} outside [0, {self._size}]")
            self._pos = offset

    def tell(self) -> int:
        with self._lock:
            return self._pos

    @property
    def size(self) -> int:
        """Total file size."""
        return self._size

    # -- reads ------------------------------------------------------------------------

    def read(self, n: int) -> bytes:
        with self._lock:
            self._check_open()
            data = self._pread_locked(self._pos, n)
            self._pos += len(data)
            return data

    def pread(self, offset: int, n: int) -> bytes:
        with self._lock:
            self._check_open()
            return self._pread_locked(offset, n)

    def _pread_locked(self, offset: int, n: int) -> bytes:
        if n < 0:
            raise ValueError("negative read size")
        if offset >= self._size or n == 0:
            return b""
        n = min(n, self._size - offset)
        pieces: List[bytes] = []
        remaining = n
        pos = offset
        while remaining > 0:
            index = self._block_index(pos)
            block = self._blocks[index]
            base = self._offsets[index]
            in_block = pos - base
            take = min(remaining, block.length - in_block)
            pieces.append(self._read_from_block(index, in_block, take))
            pos += take
            remaining -= take
        return b"".join(pieces)

    def _block_index(self, pos: int) -> int:
        # binary search over block start offsets
        lo, hi = 0, len(self._blocks) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._offsets[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _read_from_block(self, index: int, offset: int, size: int) -> bytes:
        block = self._blocks[index]
        if self._cached is not None and self._cached[0] == index:
            return self._cached[1][offset : offset + size]
        if self.fs.cluster.config.readahead:
            # prefetch the entire chunk containing the requested range
            chunk = self.fs._read_block_range(
                block, 0, block.length,
                dead=self._dead, start=next(self._replica_rr),
            )
            self.fetches += 1
            self._cached = (index, chunk)
            return chunk[offset : offset + size]
        self.fetches += 1
        return self.fs._read_block_range(
            block, offset, size, dead=self._dead, start=next(self._replica_rr)
        )

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._cached = None

    def _check_open(self) -> None:
        if self._closed:
            raise FileClosedError(self.path)
