"""HDFS client: the :class:`~repro.common.fs.FileSystem` implementation.

A shim over :mod:`repro.hdfs.protocol` on the threaded engine. The
behaviours the paper calls out — chunk-granularity write buffering,
whole-chunk readahead, **no append**, single writer — live in the
protocol's stream cores; the streams here keep only locking and
lifecycle.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..common.config import HDFSConfig
from ..common.errors import FileClosedError
from ..common.fs import (
    BlockLocation,
    FileStatus,
    FileSystem,
    InputStream,
    OutputStream,
    normalize_path,
)
from ..engine.threaded import ThreadedEngine
from ..obs import NULL_OBS, Observability
from .datanode import DataNode
from .namenode import INodeFile, NameNode
from .protocol import BlockReadCore, ChunkStreamCore, HDFSProtocol


class HDFSCluster:
    """One in-process HDFS deployment: a namenode plus datanodes."""

    def __init__(
        self,
        n_datanodes: int = 4,
        config: Optional[HDFSConfig] = None,
        seed: int = 0,
        obs: Optional[Observability] = None,
    ) -> None:
        self.config = config or HDFSConfig()
        self.config.validate()
        self.seed = seed
        self.obs = obs or NULL_OBS
        names = [f"datanode-{i:03d}" for i in range(n_datanodes)]
        self.datanodes: Dict[str, DataNode] = {n: DataNode(n) for n in names}
        self.namenode = NameNode(names, config=self.config, seed=seed)
        self.engine = ThreadedEngine(seed=seed, obs=self.obs)
        self.engine.bind("nn", self.namenode)
        for name in names:
            # resolve through the dict at call time so restarted
            # datanode objects are picked up
            self.engine.bind_data(
                name,
                lambda bid, data, n=name: self.datanodes[n].put_block(bid, data),
                lambda bid, off, sz, n=name: self.datanodes[n].get_block(
                    bid, off, sz
                ),
            )
        self.protocol = HDFSProtocol(self.engine, self.config)

    def file_system(self, client_name: str = "client") -> "HDFSFileSystem":
        """A client endpoint bound to this deployment."""
        return HDFSFileSystem(self, client_name)

    def fail_datanode(self, name: str) -> None:
        """Fault injection: crash a datanode and exclude it from placement."""
        self.datanodes[name].fail()
        self.namenode.mark_down(name)
        self.engine.fail_endpoint(name)

    def recover_datanode(self, name: str) -> None:
        self.datanodes[name].recover()
        self.namenode.mark_up(name)
        self.engine.recover_endpoint(name)


class HDFSFileSystem(FileSystem):
    """Hadoop ``FileSystem`` facade over an :class:`HDFSCluster`."""

    scheme = "hdfs"

    def __init__(self, cluster: HDFSCluster, client_name: str) -> None:
        self.cluster = cluster
        self.client_name = client_name

    # -- data paths ---------------------------------------------------------------

    def create(self, path: str, overwrite: bool = False) -> "HDFSOutputStream":
        path = normalize_path(path)
        self.cluster.namenode.create(path, self.client_name, overwrite=overwrite)
        return HDFSOutputStream(self, path)

    def open(self, path: str) -> "HDFSInputStream":
        path = normalize_path(path)
        inode = self.cluster.namenode.get_file(path)
        return HDFSInputStream(self, path, inode)

    def append(self, path: str) -> OutputStream:
        """Present in the interface, refused by this file system."""
        self.cluster.namenode.append(path)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- namespace ------------------------------------------------------------------

    def mkdirs(self, path: str) -> None:
        self.cluster.namenode.mkdirs(path)

    def delete(self, path: str, recursive: bool = False) -> bool:
        return self.cluster.namenode.delete(path, recursive=recursive) is not None

    def rename(self, src: str, dst: str) -> None:
        self.cluster.namenode.rename(src, dst)

    def exists(self, path: str) -> bool:
        return self.cluster.namenode.exists(path)

    def get_status(self, path: str) -> FileStatus:
        return self.cluster.namenode.get_status(path)

    def list_dir(self, path: str) -> List[FileStatus]:
        return self.cluster.namenode.list_dir(path)

    def get_block_locations(
        self, path: str, offset: int, length: int
    ) -> List[BlockLocation]:
        return self.cluster.namenode.get_block_locations(path, offset, length)


class HDFSOutputStream(OutputStream):
    """Write stream with chunk-granularity client buffering."""

    def __init__(self, fs: HDFSFileSystem, path: str) -> None:
        self.fs = fs
        self.path = path
        self._closed = False
        self._lock = threading.Lock()
        self._core = ChunkStreamCore(fs.cluster.protocol, fs.client_name, path)

    def write(self, data: bytes) -> int:
        with self._lock:
            self._check_open()
            self.fs.cluster.engine.run(self._core.write(data))
            return len(data)

    def flush(self) -> None:
        """A no-op by design: HDFS only ships full chunks (plus the
        final partial chunk at close)."""
        with self._lock:
            self._check_open()

    def tell(self) -> int:
        with self._lock:
            return self._core.written

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self.fs.cluster.engine.run(self._core.close())
            self._closed = True

    def discard(self) -> None:
        """Abandon the under-construction file entirely (never visible)."""
        with self._lock:
            if self._closed:
                return
            self._core.buffer.clear()
            self.fs.cluster.namenode.abandon(self.path, self.fs.client_name)
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise FileClosedError(self.path)


class HDFSInputStream(InputStream):
    """Read stream with whole-chunk readahead caching."""

    def __init__(self, fs: HDFSFileSystem, path: str, inode: INodeFile) -> None:
        self.fs = fs
        self.path = path
        self._pos = 0
        self._closed = False
        self._lock = threading.Lock()
        self._core = BlockReadCore(
            fs.cluster.protocol,
            fs.client_name,
            path,
            inode.blocks,
            fs.cluster.config.readahead,
        )

    @property
    def _dead(self):
        """Datanodes this stream has seen failing (sweep-last memory)."""
        return self._core.selector.dead

    @property
    def fetches(self) -> int:
        """Lifetime counter of datanode fetches (readahead effectiveness)."""
        return self._core.fetches

    @property
    def size(self) -> int:
        """Total file size."""
        return self._core.size

    # -- positioning -----------------------------------------------------------------

    def seek(self, offset: int) -> None:
        with self._lock:
            self._check_open()
            if offset < 0 or offset > self._core.size:
                raise ValueError(f"seek to {offset} outside [0, {self._core.size}]")
            self._pos = offset

    def tell(self) -> int:
        with self._lock:
            return self._pos

    # -- reads ------------------------------------------------------------------------

    def read(self, n: int) -> bytes:
        with self._lock:
            self._check_open()
            data = self.fs.cluster.engine.run(self._core.pread(self._pos, n))
            self._pos += len(data)
            return data

    def pread(self, offset: int, n: int) -> bytes:
        with self._lock:
            self._check_open()
            return self.fs.cluster.engine.run(self._core.pread(offset, n))

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._core.cached = None

    def _check_open(self) -> None:
        if self._closed:
            raise FileClosedError(self.path)
