"""HDFS namenode — centralized file metadata and chunk placement.

The namenode keeps the namespace (via the shared
:class:`~repro.common.namespace.NamespaceTree`), maps each file to its
list of chunks, and answers chunk-location queries (what makes the
jobtracker's scheduling data-location aware). Placement follows the
paper's description: "When distributing the chunks among datanodes,
HDFS picks random servers to store the data".

Semantics reproduced from the paper's Hadoop release:

* write-once-read-many — a file under construction is invisible to
  readers and becomes immutable at ``complete()``;
* single writer per file;
* **no append** — :meth:`append` raises
  :class:`~repro.common.errors.AppendNotSupportedError`.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.config import HDFSConfig
from ..common.errors import (
    AppendNotSupportedError,
    ConcurrentWriteError,
    FileAlreadyExistsError,
    FileNotFoundInNamespaceError,
    ImmutableFileError,
    IsADirectoryError_,
    ReplicationError,
)
from ..common.fs import BlockLocation, FileStatus, normalize_path
from ..common.namespace import NamespaceTree
from ..common.rng import substream
from .block import BlockId, BlockInfo


@dataclass(slots=True)
class INodeFile:
    """Per-file metadata payload stored in the namespace tree."""

    inode: int
    blocks: List[BlockInfo] = field(default_factory=list)
    under_construction: bool = True
    writer: Optional[str] = None
    replication: int = 1
    block_size: int = 0
    creation_time: float = field(default_factory=time.time)

    @property
    def size(self) -> int:
        return sum(b.length for b in self.blocks)


class NameNode:
    """The centralized master of the HDFS deployment."""

    def __init__(
        self,
        datanode_names: Sequence[str],
        config: Optional[HDFSConfig] = None,
        seed: int = 0,
    ) -> None:
        if not datanode_names:
            raise ValueError("need at least one datanode")
        self.config = config or HDFSConfig()
        self.config.validate()
        self.tree = NamespaceTree()
        self._datanodes = list(datanode_names)
        self._down: set[str] = set()
        self._rng = substream(seed, "hdfs-placement")
        self._inode_ids = itertools.count(1)
        self._lock = threading.Lock()

    # -- datanode membership ------------------------------------------------------

    def mark_down(self, name: str) -> None:
        """Exclude a datanode from future placement."""
        with self._lock:
            if name not in self._datanodes:
                raise KeyError(name)
            self._down.add(name)

    def mark_up(self, name: str) -> None:
        with self._lock:
            self._down.discard(name)

    # -- file lifecycle -------------------------------------------------------------

    def create(self, path: str, writer: str, overwrite: bool = False) -> INodeFile:
        """Register a new file under construction, held by *writer*."""
        with self._lock:
            try:
                existing = self.tree.lookup(path)
            except FileNotFoundInNamespaceError:
                existing = None
            if existing is not None:
                if existing.is_directory:
                    raise IsADirectoryError_(path)
                payload: INodeFile = existing.payload
                if payload.under_construction:
                    raise ConcurrentWriteError(
                        f"{path} is being written by {payload.writer!r}"
                    )
                if not overwrite:
                    raise FileAlreadyExistsError(path)
            inode = INodeFile(
                inode=next(self._inode_ids),
                writer=writer,
                replication=self.config.replication,
                block_size=self.config.chunk_size,
            )
            self.tree.create_file(path, inode, overwrite=True)
            return inode

    def allocate_block(self, path: str, writer: str) -> Tuple[BlockId, Tuple[str, ...]]:
        """Pick random datanodes for the file's next chunk."""
        with self._lock:
            inode = self._writable_inode(path, writer)
            alive = [d for d in self._datanodes if d not in self._down]
            k = min(inode.replication, len(alive))
            if k < 1:
                raise ReplicationError("no alive datanodes")
            picks = self._rng.choice(len(alive), size=k, replace=False)
            targets = tuple(alive[int(i)] for i in picks)
            return BlockId(inode.inode, len(inode.blocks)), targets

    def commit_block(
        self,
        path: str,
        writer: str,
        block_id: BlockId,
        length: int,
        datanodes: Tuple[str, ...],
    ) -> None:
        """Record a chunk the client finished writing."""
        if length <= 0:
            raise ValueError("cannot commit an empty block")
        with self._lock:
            inode = self._writable_inode(path, writer)
            if block_id.index != len(inode.blocks):
                raise ValueError(
                    f"out-of-order block commit: got index {block_id.index}, "
                    f"expected {len(inode.blocks)}"
                )
            inode.blocks.append(BlockInfo(block_id, length, datanodes))

    def complete(self, path: str, writer: str) -> None:
        """Close the file: it becomes visible and immutable."""
        with self._lock:
            inode = self._writable_inode(path, writer)
            inode.under_construction = False
            inode.writer = None

    def abandon(self, path: str, writer: str) -> None:
        """Drop an under-construction file (failed writer cleanup)."""
        with self._lock:
            inode = self._writable_inode(path, writer)
            self.tree.delete(path)

    def recover_lease(self, path: str) -> bool:
        """Force-close a file abandoned under construction (HDFS's lease
        recovery): the chunks committed so far become the file's final,
        visible content. Returns False when the file was already closed.
        """
        with self._lock:
            entry = self.tree.lookup_file(path)
            inode: INodeFile = entry.payload
            if not inode.under_construction:
                return False
            inode.under_construction = False
            inode.writer = None
            return True

    def append(self, path: str) -> None:
        """Not supported — exactly the paper's Hadoop release behaviour."""
        raise AppendNotSupportedError(
            "HDFS does not support append: the operation exists in the "
            "FileSystem interface but is not implemented in this release"
        )

    def _writable_inode(self, path: str, writer: str) -> INodeFile:
        entry = self.tree.lookup_file(path)
        inode: INodeFile = entry.payload
        if not inode.under_construction:
            raise ImmutableFileError(f"{path} is closed (write-once)")
        if inode.writer != writer:
            raise ConcurrentWriteError(
                f"{path} is held by {inode.writer!r}, not {writer!r}"
            )
        return inode

    # -- read-side metadata -----------------------------------------------------------

    def _visible_file(self, path: str) -> INodeFile:
        entry = self.tree.lookup_file(path)
        inode: INodeFile = entry.payload
        if inode.under_construction:
            # not yet visible: paper-era HDFS shows files only after close
            raise FileNotFoundInNamespaceError(
                f"{path} is under construction and not yet visible"
            )
        return inode

    def get_file(self, path: str) -> INodeFile:
        """Metadata of a closed (visible) file."""
        with self._lock:
            return self._visible_file(path)

    def get_status(self, path: str) -> FileStatus:
        """Status of a file or directory."""
        with self._lock:
            entry = self.tree.lookup(path)
            if entry.is_directory:
                return FileStatus(
                    path=normalize_path(path),
                    is_directory=True,
                    size=0,
                    modification_time=entry.modification_time,
                )
            inode = self._visible_file(path)
            return FileStatus(
                path=normalize_path(path),
                is_directory=False,
                size=inode.size,
                replication=inode.replication,
                block_size=inode.block_size,
                modification_time=entry.modification_time,
            )

    def get_block_locations(
        self, path: str, offset: int, length: int
    ) -> List[BlockLocation]:
        """Which datanodes hold each chunk overlapping the range."""
        with self._lock:
            inode = self._visible_file(path)
            out: List[BlockLocation] = []
            pos = 0
            for block in inode.blocks:
                if pos + block.length > offset and pos < offset + length:
                    out.append(
                        BlockLocation(
                            offset=pos, length=block.length, hosts=block.datanodes
                        )
                    )
                pos += block.length
            return out

    def list_dir(self, path: str) -> List[FileStatus]:
        """Visible children of a directory."""
        with self._lock:
            out: List[FileStatus] = []
            for child_path, entry in self.tree.list_dir(path):
                if entry.is_directory:
                    out.append(
                        FileStatus(
                            path=child_path,
                            is_directory=True,
                            size=0,
                            modification_time=entry.modification_time,
                        )
                    )
                else:
                    inode: INodeFile = entry.payload
                    if inode.under_construction:
                        continue
                    out.append(
                        FileStatus(
                            path=child_path,
                            is_directory=False,
                            size=inode.size,
                            replication=inode.replication,
                            block_size=inode.block_size,
                            modification_time=entry.modification_time,
                        )
                    )
            return out

    # -- namespace mutations (delegate to the tree) --------------------------------------

    def mkdirs(self, path: str) -> None:
        with self._lock:
            self.tree.mkdirs(path)

    def delete(self, path: str, recursive: bool = False) -> Optional[List[INodeFile]]:
        """Delete; returns removed file payloads (for datanode GC)."""
        with self._lock:
            return self.tree.delete(path, recursive=recursive)

    def rename(self, src: str, dst: str) -> None:
        with self._lock:
            self.tree.rename(src, dst)

    def exists(self, path: str) -> bool:
        with self._lock:
            if not self.tree.exists(path):
                return False
            entry = self.tree.lookup(path)
            if entry.is_directory:
                return True
            return not entry.payload.under_construction
