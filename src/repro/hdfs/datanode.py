"""HDFS datanode — chunk storage.

Like a BlobSeer provider, a datanode is storage without policy: it holds
immutable chunk replicas and serves byte ranges of them. Replication is
client-driven here (the client writes each replica) rather than modeling
the full datanode-to-datanode pipeline; the bytes moved are the same.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from ..common.errors import PageNotFoundError, ProviderUnavailableError
from .block import BlockId


class DataNode:
    """One chunk-storage machine."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._blocks: dict[bytes, bytes] = {}
        self._lock = threading.Lock()
        self._failed = False
        #: lifetime counters
        self.bytes_stored = 0
        self.bytes_served = 0

    # -- fault injection ---------------------------------------------------------

    def fail(self) -> None:
        """Crash the datanode: subsequent calls error."""
        with self._lock:
            self._failed = True

    def recover(self) -> None:
        """Bring it back (stored chunks survive)."""
        with self._lock:
            self._failed = False

    @property
    def is_failed(self) -> bool:
        return self._failed

    def _check_alive(self) -> None:
        if self._failed:
            raise ProviderUnavailableError(f"datanode {self.name} is down")

    # -- chunk I/O ------------------------------------------------------------------

    def put_block(self, block_id: BlockId, data: bytes) -> None:
        """Store one immutable chunk replica."""
        self._check_alive()
        if not data:
            raise ValueError("empty block")
        with self._lock:
            self._blocks[block_id.key()] = data
            self.bytes_stored += len(data)

    def get_block(
        self, block_id: BlockId, offset: int = 0, size: Optional[int] = None
    ) -> bytes:
        """Serve ``[offset, offset+size)`` of a stored chunk."""
        self._check_alive()
        with self._lock:
            data = self._blocks.get(block_id.key())
        if data is None:
            raise PageNotFoundError(f"datanode {self.name}: no block {block_id}")
        if size is None:
            size = len(data) - offset
        if offset < 0 or size < 0 or offset + size > len(data):
            raise PageNotFoundError(
                f"range [{offset}, {offset + size}) outside block of "
                f"{len(data)} bytes"
            )
        piece = data[offset : offset + size]
        with self._lock:
            self.bytes_served += len(piece)
        return piece

    def has_block(self, block_id: BlockId) -> bool:
        with self._lock:
            return block_id.key() in self._blocks

    def block_count(self) -> int:
        with self._lock:
            return len(self._blocks)

    def block_keys(self) -> List[bytes]:
        with self._lock:
            return list(self._blocks)
