"""Simulated HDFS — a shim over the protocol core on the DES engine.

The real (threaded) :class:`~repro.hdfs.namenode.NameNode` is reused as
the control plane — bound to the engine as the ``nn`` endpoint, its
calls execute instantly inside simulated processes while each is
*charged* as a serialized RPC at the dedicated namenode machine. The
data plane (chunk transfers, datanode disks) flows through the shared
network/disk models, so HDFS and BSFS contend under identical physics
in head-to-head experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

from ..common.config import HDFSConfig
from ..engine.base import Payload
from ..engine.des import DesEngine
from ..obs import NULL_OBS, Observability
from ..sim.cluster import SimCluster
from ..sim.core import Event
from ..sim.metrics import Metrics
from .namenode import NameNode
from .protocol import HDFSProtocol


@dataclass(frozen=True, slots=True)
class HDFSRoles:
    """Which machines form the HDFS deployment: "the namenode on a
    dedicated machine and the datanodes on the remaining nodes"."""

    namenode: str
    datanodes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.datanodes:
            raise ValueError("need at least one datanode")


class SimHDFS:
    """An HDFS deployment on a simulated cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        roles: HDFSRoles,
        config: Optional[HDFSConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.roles = roles
        self.config = config or HDFSConfig()
        self.config.validate()
        self.obs = obs or NULL_OBS
        self.namenode = NameNode(
            list(roles.datanodes), config=self.config, seed=cluster.config.seed
        )
        self.metrics = Metrics()
        self.engine = DesEngine(cluster, obs=self.obs)
        self.engine.bind(
            "nn", self.namenode, cluster.config.namespace_rpc_time
        )
        self.retry = self.engine.retry
        self.protocol = HDFSProtocol(
            self.engine, self.config, metrics=self.metrics
        )

    # -- fault injection -----------------------------------------------------------

    def fail_datanode(self, name: str) -> None:
        """Crash a datanode: excluded from placement, reads must fail over."""
        if name not in self.roles.datanodes:
            raise ValueError(f"unknown datanode {name!r}")
        self.namenode.mark_down(name)
        self.engine.fail_endpoint(name)

    def recover_datanode(self, name: str) -> None:
        self.namenode.mark_up(name)
        self.engine.recover_endpoint(name)

    # -- file operations ------------------------------------------------------------

    def write_file_proc(
        self, client: str, path: str, nbytes: int
    ) -> Generator[Event, None, None]:
        """Create + write + close a file of *nbytes* from *client*,
        buffered chunk-by-chunk (64 MB) to randomly placed replicas."""
        yield from self.protocol.write_file(client, path, Payload(nbytes=nbytes))

    def read_proc(
        self, client: str, path: str, offset: int, nbytes: int
    ) -> Generator[Event, None, None]:
        """Read a byte range: one namenode location RPC, then parallel
        chunk fetches (datanode disk/page-cache + network)."""
        yield from self.protocol.read_range(client, path, offset, nbytes)

    # -- experiment plumbing -------------------------------------------------------------

    def preload(self, path: str, nbytes: int, writer: str = "preload") -> None:
        """Instantly materialize a file (control plane only), for setting
        up read-side experiments."""
        self.namenode.create(path, writer)
        remaining = nbytes
        while remaining > 0:
            chunk = min(self.config.chunk_size, remaining)
            remaining -= chunk
            block_id, targets = self.namenode.allocate_block(path, writer)
            self.namenode.commit_block(path, writer, block_id, chunk, targets)
        self.namenode.complete(path, writer)
