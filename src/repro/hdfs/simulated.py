"""Simulated HDFS — the baseline's performance model on the DES cluster.

The real (threaded) :class:`~repro.hdfs.namenode.NameNode` is reused as
the control plane — its calls execute instantly inside simulated
processes, while each call is *charged* as a serialized RPC at the
dedicated namenode machine. The data plane (chunk transfers, datanode
disks) flows through the shared network/disk models, so HDFS and BSFS
contend under identical physics in head-to-head experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence, Set, Tuple

from ..common.config import HDFSConfig
from ..common.errors import ReplicationError
from ..common.rng import substream
from ..faults.plan import RetryPolicy
from ..obs import NULL_OBS, Observability
from ..sim.cluster import SimCluster
from ..sim.core import Event
from ..sim.metrics import Metrics
from ..sim.resources import Resource
from .namenode import NameNode


@dataclass(frozen=True, slots=True)
class HDFSRoles:
    """Which machines form the HDFS deployment: "the namenode on a
    dedicated machine and the datanodes on the remaining nodes"."""

    namenode: str
    datanodes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.datanodes:
            raise ValueError("need at least one datanode")


class SimHDFS:
    """An HDFS deployment on a simulated cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        roles: HDFSRoles,
        config: Optional[HDFSConfig] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.roles = roles
        self.config = config or HDFSConfig()
        self.config.validate()
        self.obs = obs or NULL_OBS
        self.namenode = NameNode(
            list(roles.datanodes), config=self.config, seed=cluster.config.seed
        )
        self._nn_slot = Resource(self.env, capacity=1)
        self.metrics = Metrics()
        self._c_rpc_timeouts = self.obs.registry.counter("net.rpc_timeouts")
        # fault-injection state: crashed datanodes, and a flag that keeps
        # the fault-free fast paths branch-free until the first injection
        self._down: Set[str] = set()
        self._faults_on = False
        self.retry = RetryPolicy.from_cluster(cluster.config)
        self._read_rng = substream(cluster.config.seed, "hdfs", "replica-rotation")

    # -- fault injection -----------------------------------------------------------

    def fail_datanode(self, name: str) -> None:
        """Crash a datanode: excluded from placement, reads must fail over."""
        if name not in self.roles.datanodes:
            raise ValueError(f"unknown datanode {name!r}")
        self._down.add(name)
        self.namenode.mark_down(name)
        self._faults_on = True

    def recover_datanode(self, name: str) -> None:
        self._down.discard(name)
        self.namenode.mark_up(name)

    # -- namenode RPC ------------------------------------------------------------

    def _nn_call(self, fn) -> Event:
        """Round trip to the namenode (serialized service)."""
        return self._nn_slot.round_trip(
            self.cluster.config.latency,
            self.cluster.config.namespace_rpc_time,
            fn,
        )

    # -- file operations ------------------------------------------------------------

    def write_file_proc(
        self, client: str, path: str, nbytes: int
    ) -> Generator[Event, None, None]:
        """Create + write + close a file of *nbytes* from *client*.

        The client buffers chunk-by-chunk (64 MB) and ships each chunk to
        its randomly placed replicas; datanodes persist asynchronously,
        like the providers (both systems buffer writes in memory).
        """
        if nbytes <= 0:
            raise ValueError("write of zero bytes")
        start = self.env.now
        yield self._nn_call(lambda: self.namenode.create(path, client))
        remaining = nbytes
        while remaining > 0:
            chunk = min(self.config.chunk_size, remaining)
            remaining -= chunk
            block_id, targets = yield self._nn_call(
                lambda: self.namenode.allocate_block(path, client)
            )
            if self._faults_on:
                # targets may have crashed between allocation and shipping;
                # drop them, and re-allocate (with backoff) if none survive.
                # Abandoned allocations are harmless: block ids are derived
                # from the committed block count, not reserved state.
                sweep = 0
                while not (alive := tuple(t for t in targets if t not in self._down)):
                    if sweep >= self.retry.max_attempts:
                        raise ReplicationError(
                            f"chunk of {path} could not be placed: "
                            "all allocated datanodes are down"
                        )
                    yield self.env.timeout(self.retry.backoff(sweep))
                    sweep += 1
                    block_id, targets = yield self._nn_call(
                        lambda: self.namenode.allocate_block(path, client)
                    )
                targets = alive
            # replication fan-out: all replicas start at the same instant,
            # so batch them into one coalesced reallocation
            transfers = self.cluster.network.transfer_many(
                (client, dn, chunk) for dn in targets
            )
            yield self.env.all_of(transfers)
            for dn in targets:
                # async persistence: fire-and-forget, no completion event
                self.cluster.node(dn).disk.write(chunk, notify=False)
            yield self._nn_call(
                lambda bid=block_id, t=targets, c=chunk: self.namenode.commit_block(
                    path, client, bid, c, t
                )
            )
        yield self._nn_call(lambda: self.namenode.complete(path, client))
        self.metrics.record(client, "write", start, self.env.now, nbytes)

    def read_proc(
        self, client: str, path: str, offset: int, nbytes: int
    ) -> Generator[Event, None, None]:
        """Read a byte range: one namenode location RPC, then parallel
        chunk fetches (datanode disk/page-cache + network)."""
        if nbytes <= 0:
            raise ValueError("read of zero bytes")
        start = self.env.now
        locations = yield self._nn_call(
            lambda: self.namenode.get_block_locations(path, offset, nbytes)
        )
        fetchers = []
        for loc in locations:
            lo = max(offset, loc.offset)
            hi = min(offset + nbytes, loc.offset + loc.length)
            if hi <= lo:
                continue
            if self._faults_on:
                fetchers.append(
                    self.env.process(
                        self._fetch_retry(client, loc.hosts, hi - lo)
                    )
                )
            else:
                fetchers.append(self._fetch(client, loc.hosts[0], hi - lo))
        yield self.env.all_of(fetchers)
        self.metrics.record(client, "read", start, self.env.now, nbytes)

    def _fetch(self, client: str, datanode: str, nbytes: int) -> Event:
        """Datanode disk/page-cache service, then the network transfer;
        the returned event fires when the bytes reach the client."""
        done = Event(self.env)

        def off_disk(ev: Event) -> None:
            if not ev._ok:
                done.fail(ev._value)
                return
            t = self.cluster.network.transfer(datanode, client, nbytes)
            t.callbacks.append(
                lambda tv: done.succeed(None)
                if tv._ok
                else done.fail(tv._value)
            )

        self.cluster.node(datanode).disk.read(nbytes).callbacks.append(off_disk)
        return done

    def _fetch_retry(
        self, client: str, hosts: Sequence[str], nbytes: int
    ) -> Generator[Event, None, None]:
        """Fault-aware fetch: rotate over the chunk's replicas, charging a
        timeout per attempt on a crashed datanode and backing off between
        full sweeps."""
        policy = self.retry
        hosts = list(hosts)
        n = len(hosts)
        start = int(self._read_rng.integers(n)) if n > 1 else 0
        for attempt in range(policy.max_attempts):
            dn = hosts[(start + attempt) % n]
            if dn in self._down:
                self._c_rpc_timeouts.inc()
                yield self.env.timeout(policy.rpc_timeout)
            else:
                yield self.cluster.node(dn).disk.read(nbytes)
                yield self.cluster.network.transfer(dn, client, nbytes)
                return
            if (attempt + 1) % n == 0 and attempt + 1 < policy.max_attempts:
                yield self.env.timeout(policy.backoff(attempt // n))
        raise ReplicationError(
            f"no replica of the chunk is reachable from {client}"
        )

    # -- experiment plumbing -------------------------------------------------------------

    def preload(self, path: str, nbytes: int, writer: str = "preload") -> None:
        """Instantly materialize a file (control plane only), for setting
        up read-side experiments."""
        self.namenode.create(path, writer)
        remaining = nbytes
        while remaining > 0:
            chunk = min(self.config.chunk_size, remaining)
            remaining -= chunk
            block_id, targets = self.namenode.allocate_block(path, writer)
            self.namenode.commit_block(path, writer, block_id, chunk, targets)
        self.namenode.complete(path, writer)
