"""The HDFS client protocol, sans-IO.

Pipeline writes (chunk allocation → replica fan-out → commit) and
replica-rotating reads as engine-parameterized generators, shared by the
simulated deployment (:mod:`repro.hdfs.simulated`) and the threaded
:class:`~repro.common.fs.FileSystem` implementation
(:mod:`repro.hdfs.client`).

The namenode is a bound control endpoint (charged, serialized RPCs under
the DES engine; plain locked calls under the threaded engine); datanodes
are data endpoints. Failure handling is the shared policy: allocations
are re-requested with backoff while every target is down, chunk stores
skip over datanodes that time out (reporting them to the namenode), and
reads fail over replicas through
:func:`~repro.engine.replica.sweep_fetch`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..common.errors import ReplicationError, RpcTimeoutError
from ..engine.base import Engine, Payload
from ..engine.replica import ReplicaSelector, sweep_fetch
from .block import BlockInfo


class HDFSProtocol:
    """The one HDFS client stack, bound to a runtime through its engine."""

    def __init__(
        self, engine: Engine, config, metrics=None
    ) -> None:
        self.engine = engine
        self.config = config
        self.metrics = metrics
        self._selectors: Dict[str, ReplicaSelector] = {}

    def selector(self, client: str) -> ReplicaSelector:
        """The client's replica selector (rotation phase + dead memory)."""
        sel = self._selectors.get(client)
        if sel is None:
            sel = self._selectors.setdefault(
                client,
                ReplicaSelector(self.engine.rng("replica", "hdfs", client)),
            )
        return sel

    # -- write path ----------------------------------------------------------

    def write_block(self, client: str, path: str, payload: Payload):
        """Generator: allocate one chunk, ship it to its replicas, commit.

        Returns ``(block_id, stored)`` — the datanodes actually holding
        the chunk.
        """
        engine = self.engine
        block_id, targets = yield engine.call(
            "nn", "allocate_block", path, client
        )
        if engine.faults_active:
            # targets may have crashed between allocation and shipping;
            # drop them, and re-allocate (with backoff) if none survive.
            # Abandoned allocations are harmless: block ids are derived
            # from the committed block count, not reserved state.
            sweep = 0
            while not (
                alive := tuple(t for t in targets if not engine.is_down(t))
            ):
                if sweep >= engine.retry.max_attempts:
                    raise ReplicationError(
                        f"chunk of {path} could not be placed: "
                        "all allocated datanodes are down"
                    )
                yield engine.sleep(engine.retry.backoff(sweep))
                sweep += 1
                block_id, targets = yield engine.call(
                    "nn", "allocate_block", path, client
                )
            stored = []
            for name in alive:
                try:
                    yield engine.store(client, name, block_id, payload)
                except RpcTimeoutError:
                    yield engine.wait("nn", "mark_down", name)
                else:
                    stored.append(name)
            if not stored:
                raise ReplicationError(f"chunk {block_id} stored nowhere")
            stored = tuple(stored)
        else:
            # fault-free fast path: one batched fan-out to all replicas
            shippers = engine.ship_many(client, [targets], [len(payload)])
            yield shippers[0]
            stored = tuple(targets)
        yield engine.call(
            "nn", "commit_block", path, client, block_id, len(payload), stored
        )
        return block_id, stored

    def write_file(self, client: str, path: str, payload: Payload):
        """Generator: create + write + close a file of ``len(payload)``
        bytes, chunk by chunk (the client buffers one chunk, 64 MB)."""
        if len(payload) <= 0:
            raise ValueError("write of zero bytes")
        engine = self.engine
        start = engine.now()
        yield engine.call("nn", "create", path, client)
        pos, total = 0, len(payload)
        while pos < total:
            chunk = min(self.config.chunk_size, total - pos)
            yield from self.write_block(
                client, path, payload.slice(pos, pos + chunk)
            )
            pos += chunk
        yield engine.call("nn", "complete", path, client)
        if self.metrics is not None:
            self.metrics.record(client, "write", start, engine.now(), total)

    # -- read path -----------------------------------------------------------

    def read_range(self, client: str, path: str, offset: int, nbytes: int):
        """Generator: read a byte range — one namenode location RPC, then
        the chunk fetches (parallel on the fault-free fast path)."""
        if nbytes <= 0:
            raise ValueError("read of zero bytes")
        engine = self.engine
        start = engine.now()
        locations = yield engine.call(
            "nn", "get_block_locations", path, offset, nbytes
        )
        jobs = []
        for loc in locations:
            lo = max(offset, loc.offset)
            hi = min(offset + nbytes, loc.offset + loc.length)
            if hi <= lo:
                continue
            jobs.append((loc, lo - loc.offset, hi - lo))
        pieces = []
        if engine.faults_active:
            sel = self.selector(client)
            for loc, in_chunk, size in jobs:
                data = yield from sweep_fetch(
                    engine,
                    sel,
                    client,
                    loc.hosts,
                    None,
                    in_chunk,
                    size,
                    f"the chunk at {loc.offset} of {path}",
                )
                pieces.append(data)
        else:
            fetchers = [
                engine.fetch(client, loc.hosts[0], None, in_chunk, size)
                for loc, in_chunk, size in jobs
            ]
            yield engine.gather(fetchers)
        if self.metrics is not None:
            self.metrics.record(client, "read", start, engine.now(), nbytes)
        return b"".join(pieces) if pieces and pieces[0] is not None else None

    def read_block_range(
        self,
        client: str,
        block: BlockInfo,
        offset: int,
        size: int,
        selector: Optional[ReplicaSelector] = None,
    ):
        """Generator: read a range of one committed chunk, failing over
        across its replicas. Streams pass their own selector so the
        dead-replica memory lives as long as the stream."""
        data = yield from sweep_fetch(
            self.engine,
            selector if selector is not None else self.selector(client),
            client,
            block.datanodes,
            block.block_id,
            offset,
            size,
            f"chunk {block.block_id}",
        )
        return data


class ChunkStreamCore:
    """Client-side chunk buffering for the write path.

    "Clients buffer all write operations until the data reaches the
    size of a chunk (64MB)"; only then is a chunk allocated and shipped.
    The runtime shims own locking and lifecycle; this core owns the
    buffer and the allocate → ship → commit protocol per full chunk.
    """

    def __init__(self, protocol: HDFSProtocol, client: str, path: str) -> None:
        self.protocol = protocol
        self.client = client
        self.path = path
        cfg = protocol.config
        self.buffer = bytearray()
        self.buffer_limit = min(cfg.write_buffer, cfg.chunk_size)
        #: total bytes accepted
        self.written = 0

    def write(self, data: bytes):
        """Generator: accept *data*, shipping every chunk it completes."""
        self.buffer += data
        self.written += len(data)
        while len(self.buffer) >= self.buffer_limit:
            chunk = bytes(self.buffer[: self.buffer_limit])
            del self.buffer[: self.buffer_limit]
            yield from self.protocol.write_block(
                self.client, self.path, Payload(chunk)
            )

    def close(self):
        """Generator: ship the final partial chunk, then complete the
        file at the namenode."""
        if self.buffer:
            yield from self.protocol.write_block(
                self.client, self.path, Payload(bytes(self.buffer))
            )
            self.buffer.clear()
        yield self.protocol.engine.call(
            "nn", "complete", self.path, self.client
        )


class BlockReadCore:
    """Readahead walk for the read path.

    "When HDFS receives a read request for a small block, it prefetches
    the entire chunk that contains the required block" — the core caches
    the last prefetched chunk and fails reads over across replicas via
    the stream's :class:`~repro.engine.replica.ReplicaSelector` (seeded
    rotation + dead-datanode memory, scoped to the stream's lifetime).
    """

    def __init__(
        self,
        protocol: HDFSProtocol,
        client: str,
        path: str,
        blocks: Sequence[BlockInfo],
        readahead: bool,
    ) -> None:
        self.protocol = protocol
        self.client = client
        self.blocks = list(blocks)
        self.offsets: List[int] = []
        pos = 0
        for b in self.blocks:
            self.offsets.append(pos)
            pos += b.length
        #: total file size
        self.size = pos
        self.readahead = readahead
        self.selector = ReplicaSelector(
            protocol.engine.rng("replica", "hdfs-read", client, path)
        )
        # readahead cache: (block index, chunk bytes)
        self.cached: Optional[Tuple[int, bytes]] = None
        #: lifetime counter of datanode fetches (readahead effectiveness)
        self.fetches = 0

    def pread(self, offset: int, n: int):
        """Generator: positional read, clipped to the file size."""
        if n < 0:
            raise ValueError("negative read size")
        if offset >= self.size or n == 0:
            return b""
        n = min(n, self.size - offset)
        pieces: List[bytes] = []
        remaining, pos = n, offset
        while remaining > 0:
            index = self._block_index(pos)
            in_block = pos - self.offsets[index]
            take = min(remaining, self.blocks[index].length - in_block)
            piece = yield from self._read_from_block(index, in_block, take)
            pieces.append(piece)
            pos += take
            remaining -= take
        if any(piece is None for piece in pieces):
            return None  # simulated reads carry no bytes
        return b"".join(pieces)

    def _block_index(self, pos: int) -> int:
        # binary search over block start offsets
        lo, hi = 0, len(self.blocks) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.offsets[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _read_from_block(self, index: int, offset: int, size: int):
        block = self.blocks[index]
        if self.cached is not None and self.cached[0] == index:
            return self.cached[1][offset : offset + size]
        if self.readahead:
            # prefetch the entire chunk containing the requested range
            chunk = yield from self.protocol.read_block_range(
                self.client, block, 0, block.length, self.selector
            )
            self.fetches += 1
            if chunk is None:
                return None
            self.cached = (index, chunk)
            return chunk[offset : offset + size]
        self.fetches += 1
        data = yield from self.protocol.read_block_range(
            self.client, block, offset, size, self.selector
        )
        return data
