"""HDFS block (chunk) model.

HDFS splits each file into fixed-size chunks (64 MB in the paper) placed
on datanodes. A block is identified by the file's inode id plus its
index within the file; the namenode tracks, per block, its byte length
and the datanodes holding replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True, slots=True)
class BlockId:
    """Identity of one chunk of one file."""

    inode: int
    index: int

    def key(self) -> bytes:
        """Stable byte key for datanode-local storage."""
        return f"block/{self.inode}/{self.index}".encode()


@dataclass(frozen=True, slots=True)
class BlockInfo:
    """What the namenode records about one block."""

    block_id: BlockId
    length: int
    datanodes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("negative block length")
        if not self.datanodes:
            raise ValueError("block must have at least one datanode")

    @property
    def primary(self) -> str:
        """First-choice replica for reads."""
        return self.datanodes[0]
