"""Legacy setup shim.

The execution environment has no network access and no ``wheel``
package, so PEP 660 editable installs are unavailable; this shim lets
``pip install -e .`` take the legacy ``setup.py develop`` path. All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
