"""Unit tests for the BSFS namespace manager."""

import pytest

from repro.bsfs.namespace import NamespaceManager
from repro.common.errors import (
    FileAlreadyExistsError,
    FileNotFoundInNamespaceError,
)


@pytest.fixture()
def ns():
    return NamespaceManager()


def test_create_and_get(ns):
    ns.create("/a/f", blob_id=7, page_size=1024)
    rec = ns.get("/a/f")
    assert (rec.blob_id, rec.page_size, rec.size) == (7, 1024, 0)


def test_exclusive_create(ns):
    ns.create("/f", 1, 64)
    with pytest.raises(FileAlreadyExistsError):
        ns.create("/f", 2, 64)
    ns.create("/f", 3, 64, overwrite=True)
    assert ns.get("/f").blob_id == 3


def test_update_size_monotonic_max(ns):
    """Concurrent appenders report completion out of order; the size must
    be the max of the end offsets, never regressing."""
    ns.create("/f", 1, 64)
    assert ns.update_size("/f", 200) == 200
    assert ns.update_size("/f", 100) == 200  # late, smaller: no regress
    assert ns.update_size("/f", 300) == 300


def test_status_and_list(ns):
    ns.create("/d/f1", 1, 64)
    ns.create("/d/f2", 2, 64)
    ns.update_size("/d/f1", 500)
    st = ns.get_status("/d/f1")
    assert st.size == 500 and not st.is_directory and st.block_size == 64
    names = [s.path for s in ns.list_dir("/d")]
    assert names == ["/d/f1", "/d/f2"]
    assert ns.get_status("/d").is_directory


def test_rename_keeps_payload(ns):
    ns.create("/tmp/x", 9, 64)
    ns.update_size("/tmp/x", 42)
    ns.rename("/tmp/x", "/final/x")
    assert ns.get("/final/x").size == 42
    assert not ns.exists("/tmp/x")


def test_delete_returns_blob_payloads(ns):
    ns.create("/d/a", 1, 64)
    ns.create("/d/b", 2, 64)
    payloads = ns.delete("/d", recursive=True)
    assert sorted(p.blob_id for p in payloads) == [1, 2]
    assert ns.delete("/ghost") is None


def test_missing_file(ns):
    with pytest.raises(FileNotFoundInNamespaceError):
        ns.get("/ghost")


def test_file_count(ns):
    assert ns.file_count() == 0
    ns.create("/a", 1, 64)
    ns.create("/d/b", 2, 64)
    ns.mkdirs("/empty")
    assert ns.file_count() == 2
