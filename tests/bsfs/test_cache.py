"""Unit + property tests for the BSFS client cache components."""

import pytest
from hypothesis import given, strategies as st

from repro.bsfs.cache import ReadBlockCache, WriteBehindBuffer


class TestReadBlockCache:
    def test_miss_then_hit(self):
        cache = ReadBlockCache(block_size=100, capacity_blocks=2)
        fetches = []
        fetch = lambda i: fetches.append(i) or b"%03d" % i  # noqa: E731
        assert cache.get(5, fetch) == b"005"
        assert cache.get(5, fetch) == b"005"
        assert fetches == [5]
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction(self):
        cache = ReadBlockCache(block_size=10, capacity_blocks=2)
        fetch = lambda i: bytes([i])  # noqa: E731
        cache.get(1, fetch)
        cache.get(2, fetch)
        cache.get(1, fetch)  # refresh 1
        cache.get(3, fetch)  # evicts 2
        assert len(cache) == 2
        misses = cache.misses
        cache.get(1, fetch)  # still cached
        assert cache.misses == misses
        cache.get(2, fetch)  # was evicted
        assert cache.misses == misses + 1

    def test_invalidate_one_and_all(self):
        cache = ReadBlockCache(10, 4)
        fetch = lambda i: bytes([i])  # noqa: E731
        cache.get(1, fetch)
        cache.get(2, fetch)
        cache.invalidate(1)
        assert len(cache) == 1
        cache.invalidate()
        assert len(cache) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadBlockCache(0, 1)
        with pytest.raises(ValueError):
            ReadBlockCache(10, 0)


class TestWriteBehindBuffer:
    def test_small_writes_accumulate(self):
        buf = WriteBehindBuffer(100)
        assert buf.add(b"x" * 30) == []
        assert buf.add(b"y" * 30) == []
        assert buf.pending == 60

    def test_exceeding_block_releases_buffer_first(self):
        buf = WriteBehindBuffer(100)
        buf.add(b"a" * 80)
        out = buf.add(b"b" * 40)
        assert out == [b"a" * 80]
        assert buf.pending == 40

    def test_exact_fill_releases(self):
        buf = WriteBehindBuffer(100)
        buf.add(b"a" * 60)
        out = buf.add(b"b" * 40)
        assert out == [b"a" * 60 + b"b" * 40]
        assert buf.pending == 0

    def test_oversized_write_is_its_own_batch(self):
        buf = WriteBehindBuffer(100)
        buf.add(b"head")
        out = buf.add(b"Z" * 500)
        assert out == [b"head", b"Z" * 500]

    def test_drain(self):
        buf = WriteBehindBuffer(100)
        buf.add(b"tail")
        assert buf.drain() == b"tail"
        assert buf.drain() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            WriteBehindBuffer(0)

    @given(
        writes=st.lists(st.binary(min_size=1, max_size=300), max_size=20),
        block=st.integers(min_value=1, max_value=128),
    )
    def test_record_atomicity_property(self, writes, block):
        """Batches concatenate to the input, and no single write is ever
        split across two batches (record-append atomicity)."""
        buf = WriteBehindBuffer(block)
        batches = []
        for w in writes:
            batches.extend(buf.add(w))
        tail = buf.drain()
        if tail:
            batches.append(tail)
        assert b"".join(batches) == b"".join(writes)
        # verify no split: every write below the block size must appear
        # wholly inside one batch boundary walk
        boundaries = set()
        pos = 0
        for b in batches:
            boundaries.add(pos)
            pos += len(b)
        boundaries.add(pos)
        pos = 0
        for w in writes:
            start, end = pos, pos + len(w)
            pos = end
            if len(w) > block:
                continue  # oversized writes are single batches by construction
            inside = [b for b in boundaries if start < b < end]
            assert not inside, f"write [{start},{end}) split at {inside}"
