"""Integration tests for BSFS: the FileSystem facade with working append."""

import threading

import pytest

from repro.bsfs import BSFS
from repro.common.config import BlobSeerConfig
from repro.common.errors import (
    FileAlreadyExistsError,
    FileClosedError,
    FileNotFoundInNamespaceError,
)


@pytest.fixture()
def dep():
    return BSFS(
        config=BlobSeerConfig(page_size=1024, metadata_providers=4),
        n_providers=6,
        seed=5,
    )


@pytest.fixture()
def fs(dep):
    return dep.file_system("c0")


class TestBasics:
    def test_create_write_read(self, fs):
        fs.write_all("/d/f", b"hello bsfs" * 200)
        assert fs.read_all("/d/f") == b"hello bsfs" * 200
        assert fs.get_status("/d/f").size == 2000

    def test_exclusive_create(self, fs):
        fs.write_all("/f", b"1")
        with pytest.raises(FileAlreadyExistsError):
            fs.create("/f")
        fs.write_all("/f", b"2", overwrite=True)
        assert fs.read_all("/f") == b"2"

    def test_namespace_ops(self, fs):
        fs.mkdirs("/a/b")
        assert fs.exists("/a/b")
        fs.write_all("/a/b/f", b"x")
        assert [s.path for s in fs.list_dir("/a/b")] == ["/a/b/f"]
        fs.rename("/a/b/f", "/a/g")
        assert fs.read_all("/a/g") == b"x"
        assert fs.delete("/a", recursive=True)
        assert not fs.exists("/a")

    def test_open_missing(self, fs):
        with pytest.raises(FileNotFoundInNamespaceError):
            fs.open("/ghost")

    def test_closed_stream_rejects_io(self, fs):
        out = fs.create("/f")
        out.close()
        with pytest.raises(FileClosedError):
            out.write(b"late")
        s = fs.open("/f")
        s.close()
        with pytest.raises(FileClosedError):
            s.read(1)


class TestAppendStreams:
    def test_append_extends_file(self, fs):
        fs.write_all("/log", b"first|")
        with fs.append("/log") as out:
            out.write(b"second|")
        with fs.append("/log") as out:
            out.write(b"third")
        assert fs.read_all("/log") == b"first|second|third"

    def test_concurrent_appenders_one_file(self, dep):
        fs0 = dep.file_system("creator")
        fs0.create("/shared").close()
        n = 12
        payloads = {i: bytes([0x61 + i]) * (200 + i * 97) for i in range(n)}

        def appender(i):
            afs = dep.file_system(f"a{i}")
            with afs.append("/shared") as out:
                out.write(payloads[i])

        threads = [threading.Thread(target=appender, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        data = fs0.read_all("/shared")
        assert len(data) == sum(len(p) for p in payloads.values())
        for p in payloads.values():
            assert p in data  # each output intact and contiguous

    def test_write_behind_batches_appends(self, dep):
        fs = dep.file_system("c")
        with fs.create("/f") as out:
            for _ in range(10):
                out.write(b"x" * 300)  # 3000B over 1024B blocks
            issued_during_writes = out.appends_issued
        assert issued_during_writes <= 3
        assert fs.get_status("/f").size == 3000

    def test_cache_disabled_appends_per_write(self):
        dep = BSFS(
            config=BlobSeerConfig(
                page_size=1024, metadata_providers=2, cache_enabled=False
            ),
            n_providers=3,
        )
        fs = dep.file_system("c")
        with fs.create("/f") as out:
            out.write(b"a" * 10)
            out.write(b"b" * 10)
            assert out.appends_issued == 2

    def test_flush_publishes_partial_block(self, dep):
        """Unlike HDFS, BSFS can make a partial block visible on demand —
        the HBase transaction-log use case."""
        fs = dep.file_system("hbase")
        out = fs.create("/wal")
        out.write(b"txn1;")
        assert fs.get_status("/wal").size == 0  # still buffered
        out.flush()
        assert fs.get_status("/wal").size == 5
        reader = dep.file_system("recovery")
        assert reader.read_all("/wal") == b"txn1;"
        out.write(b"txn2;")
        out.close()
        assert reader.read_all("/wal") == b"txn1;txn2;"

    def test_discard_drops_buffered_data(self, fs):
        fs.create("/f").close()
        out = fs.append("/f")
        out.write(b"doomed")
        out.discard()
        assert fs.get_status("/f").size == 0


class TestReadStreams:
    def test_sequential_and_positional(self, fs):
        fs.write_all("/f", bytes(range(256)) * 10)
        with fs.open("/f") as s:
            assert s.read(4) == bytes([0, 1, 2, 3])
            assert s.tell() == 4
            assert s.pread(1000, 4) == bytes([232, 233, 234, 235])
            assert s.tell() == 4  # pread does not move the cursor
            s.seek(2550)
            assert s.read(100) == bytes(range(246, 256))  # clipped at EOF

    def test_prefetch_amortizes_small_reads(self, fs):
        fs.write_all("/f", b"z" * 3000)
        with fs.open("/f") as s:
            for off in range(0, 3000, 64):
                s.pread(off, 64)
            assert s.fetches <= 4  # one per 1024B block (+ tail growth)

    def test_reader_follows_growing_file(self, dep):
        fs = dep.file_system("r")
        fs.create("/grow").close()
        writer = dep.file_system("w")
        stream = fs.open("/grow")
        assert stream.read(10) == b""
        with writer.append("/grow") as out:
            out.write(b"fresh data")
        assert stream.pread(0, 10) == b"fresh data"

    def test_tail_block_refetched_after_growth(self, dep):
        fs = dep.file_system("r")
        fs.write_all("/f", b"a" * 100)  # partial block
        stream = fs.open("/f")
        assert stream.pread(0, 100) == b"a" * 100
        with dep.file_system("w").append("/f") as out:
            out.write(b"b" * 100)
        assert stream.pread(50, 150) == b"a" * 50 + b"b" * 100

    def test_iter_lines(self, fs):
        fs.write_all("/f", b"one\ntwo\nthree")
        with fs.open("/f") as s:
            assert list(s.iter_lines()) == [b"one\n", b"two\n", b"three"]


class TestLocality:
    def test_block_locations_cover_file(self, fs):
        fs.write_all("/f", b"q" * 5000)
        locs = fs.get_block_locations("/f", 0, 5000)
        assert sum(l.length for l in locs) == 5000
        assert all(l.hosts for l in locs)

    def test_block_locations_range_filter(self, fs):
        fs.write_all("/f", b"q" * 5000)
        locs = fs.get_block_locations("/f", 2048, 100)
        assert all(
            l.offset < 2148 and l.offset + l.length > 2048 for l in locs
        )

    def test_locations_clipped_to_namespace_size(self, dep):
        """A reader must never be told about bytes past the file size."""
        fs = dep.file_system("c")
        fs.write_all("/f", b"x" * 100)
        locs = fs.get_block_locations("/f", 0, 10_000)
        assert sum(l.length for l in locs) == 100
