"""Property tests of BSFS streams against byte-string references."""

from hypothesis import given, settings, strategies as st

from repro.bsfs import BSFS
from repro.common.config import BlobSeerConfig


def make_fs(page=256):
    dep = BSFS(
        config=BlobSeerConfig(page_size=page, metadata_providers=2),
        n_providers=3,
    )
    return dep.file_system("prop")


@settings(max_examples=25, deadline=None)
@given(
    pieces=st.lists(st.binary(min_size=1, max_size=700), min_size=1, max_size=6),
    reads=st.lists(
        st.tuples(st.integers(0, 4000), st.integers(0, 900)), max_size=8
    ),
)
def test_random_preads_match_reference(pieces, reads):
    """Arbitrary append history + arbitrary positional reads == slicing a
    plain byte string."""
    fs = make_fs()
    fs.create("/f").close()
    reference = b""
    for piece in pieces:
        with fs.append("/f") as out:
            out.write(piece)
        reference += piece
    with fs.open("/f") as stream:
        for offset, size in reads:
            expected = reference[offset : offset + size]
            assert stream.pread(offset, size) == expected


@settings(max_examples=25, deadline=None)
@given(
    writes=st.lists(st.binary(min_size=1, max_size=300), min_size=1, max_size=10),
    chunk=st.integers(min_value=1, max_value=512),
)
def test_sequential_reads_reassemble(writes, chunk):
    """Reading a file in arbitrary chunk sizes reassembles the writes."""
    fs = make_fs()
    with fs.create("/f") as out:
        for w in writes:
            out.write(w)
    reference = b"".join(writes)
    with fs.open("/f") as stream:
        got = b""
        while True:
            piece = stream.read(chunk)
            if not piece:
                break
            got += piece
    assert got == reference


@settings(max_examples=15, deadline=None)
@given(
    history=st.lists(
        st.tuples(st.sampled_from(["append", "snapshot"]), st.binary(min_size=1, max_size=400)),
        min_size=1,
        max_size=8,
    )
)
def test_versioned_snapshots_are_immutable(history):
    """Interleave appends with 'snapshot' probes: every probed prefix
    must still read identically after all later appends."""
    fs = make_fs()
    fs.create("/f").close()
    reference = b""
    probes = []  # (size, bytes at probe time)
    for op, payload in history:
        if op == "append":
            with fs.append("/f") as out:
                out.write(payload)
            reference += payload
        else:
            probes.append((len(reference), reference))
    with fs.open("/f") as stream:
        for size, expected in probes:
            assert stream.pread(0, size) == expected
