"""Shared fixtures: small in-process deployments of every system."""

from __future__ import annotations

import pytest

from repro.blobseer import BlobSeerService
from repro.bsfs import BSFS
from repro.common.config import BlobSeerConfig, HDFSConfig, MapReduceConfig
from repro.hdfs import HDFSCluster
from repro.mapreduce import MapReduceCluster

#: small page/chunk size so tests exercise multi-page paths cheaply
SMALL_PAGE = 1024


@pytest.fixture()
def blobseer() -> BlobSeerService:
    """A 6-provider BlobSeer service with 1 KiB pages."""
    return BlobSeerService(
        BlobSeerConfig(page_size=SMALL_PAGE, metadata_providers=4),
        n_providers=6,
        seed=1234,
    )


@pytest.fixture()
def bsfs() -> BSFS:
    """A BSFS deployment (namespace manager + BlobSeer) with 1 KiB blocks."""
    return BSFS(
        config=BlobSeerConfig(page_size=SMALL_PAGE, metadata_providers=4),
        n_providers=6,
        seed=1234,
    )


@pytest.fixture()
def hdfs() -> HDFSCluster:
    """An HDFS deployment with 1 KiB chunks and 2-way replication."""
    return HDFSCluster(
        n_datanodes=5,
        config=HDFSConfig(chunk_size=SMALL_PAGE, replication=2),
        seed=1234,
    )


@pytest.fixture()
def mr_on_bsfs(bsfs: BSFS) -> MapReduceCluster:
    """A Map/Reduce cluster whose tasktrackers are co-located with the
    BSFS data providers (host names match the providers')."""
    hosts = list(bsfs.service.providers)
    return MapReduceCluster(
        bsfs.file_system("mr"), hosts=hosts, config=MapReduceConfig()
    )


@pytest.fixture()
def mr_on_hdfs(hdfs: HDFSCluster) -> MapReduceCluster:
    """A Map/Reduce cluster co-located with the HDFS datanodes."""
    return MapReduceCluster(
        hdfs.file_system("mr"), hosts=list(hdfs.datanodes), config=MapReduceConfig()
    )
