"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.common.errors import InterruptedProcessError, SimDeadlockError
from repro.sim.core import Environment


@pytest.fixture()
def env():
    return Environment()


class TestTimeouts:
    def test_time_advances(self, env):
        def proc():
            yield env.timeout(1.5)
            return env.now

        assert env.run(env.process(proc())) == 1.5

    def test_zero_delay(self, env):
        def proc():
            yield env.timeout(0)
            return "done"

        assert env.run(env.process(proc())) == "done"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_value(self, env):
        def proc():
            got = yield env.timeout(1, value="payload")
            return got

        assert env.run(env.process(proc())) == "payload"

    def test_same_instant_fifo(self, env):
        """Events at the same time fire in scheduling order."""
        order = []

        def proc(tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestProcesses:
    def test_process_return_value(self, env):
        def child():
            yield env.timeout(2)
            return 99

        def parent():
            value = yield env.process(child())
            return value + 1

        assert env.run(env.process(parent())) == 100

    def test_waiting_on_finished_process(self, env):
        def child():
            yield env.timeout(1)
            return "early"

        ch = env.process(child())

        def parent():
            yield env.timeout(5)
            value = yield ch  # already processed
            return value

        assert env.run(env.process(parent())) == "early"

    def test_exception_propagates_to_waiter(self, env):
        def child():
            yield env.timeout(1)
            raise ValueError("boom")

        def parent():
            with pytest.raises(ValueError, match="boom"):
                yield env.process(child())
            return "caught"

        assert env.run(env.process(parent())) == "caught"

    def test_unwaited_failure_raises_at_run(self, env):
        def child():
            yield env.timeout(1)
            raise RuntimeError("unobserved")

        env.process(child())
        with pytest.raises(RuntimeError, match="unobserved"):
            env.run()

    def test_run_until_failed_process_raises(self, env):
        def child():
            yield env.timeout(1)
            raise KeyError("k")

        with pytest.raises(KeyError):
            env.run(env.process(child()))

    def test_yield_non_event_is_error(self, env):
        def bad():
            yield 42

        with pytest.raises(TypeError):
            env.run(env.process(bad()))


class TestConditions:
    def test_all_of_collects_values(self, env):
        def child(d, v):
            yield env.timeout(d)
            return v

        def parent():
            values = yield env.all_of(
                [env.process(child(2, "a")), env.process(child(1, "b"))]
            )
            return (env.now, sorted(values))

        assert env.run(env.process(parent())) == (2.0, ["a", "b"])

    def test_any_of_fires_on_first(self, env):
        def child(d, v):
            yield env.timeout(d)
            return v

        def parent():
            yield env.any_of(
                [env.process(child(5, "slow")), env.process(child(1, "fast"))]
            )
            return env.now

        assert env.run(env.process(parent())) == 1.0

    def test_all_of_empty(self, env):
        def parent():
            values = yield env.all_of([])
            return values

        assert env.run(env.process(parent())) == []

    def test_all_of_propagates_failure(self, env):
        def ok():
            yield env.timeout(10)

        def bad():
            yield env.timeout(1)
            raise ValueError("member failed")

        def parent():
            yield env.all_of([env.process(ok()), env.process(bad())])

        with pytest.raises(ValueError, match="member failed"):
            env.run(env.process(parent()))


class TestEvents:
    def test_manual_event(self, env):
        ev = env.event()

        def trigger():
            yield env.timeout(3)
            ev.succeed("signal")

        def waiter():
            value = yield ev
            return (env.now, value)

        env.process(trigger())
        assert env.run(env.process(waiter())) == (3.0, "signal")

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")


class TestRunModes:
    def test_run_until_time(self, env):
        ticks = []

        def clock():
            while True:
                yield env.timeout(1)
                ticks.append(env.now)

        env.process(clock())
        env.run(until=3.5)
        assert ticks == [1, 2, 3]
        assert env.now == 3.5

    def test_run_drains_queue(self, env):
        def proc():
            yield env.timeout(7)

        env.process(proc())
        env.run()
        assert env.now == 7

    def test_deadlock_detected(self, env):
        ev = env.event()  # never triggered

        def waiter():
            yield ev

        with pytest.raises(SimDeadlockError):
            env.run(env.process(waiter()))

    def test_run_until_past_is_error(self, env):
        def proc():
            yield env.timeout(10)

        env.process(proc())
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=1)


class TestInterrupts:
    def test_interrupt_wakes_sleeper(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
            except InterruptedProcessError:
                return env.now

        p = env.process(sleeper())

        def killer():
            yield env.timeout(2)
            p.interrupt("stop")

        env.process(killer())
        assert env.run(p) == 2.0

    def test_interrupt_finished_is_noop(self, env):
        def quick():
            yield env.timeout(1)
            return "ok"

        p = env.process(quick())
        env.run(p)
        p.interrupt("late")  # no effect, no error

    def test_uncaught_interrupt_fails_process(self, env):
        def sleeper():
            yield env.timeout(100)

        p = env.process(sleeper())

        def killer():
            yield env.timeout(1)
            p.interrupt("die")

        env.process(killer())
        with pytest.raises(InterruptedProcessError):
            env.run(p)


def test_schedule_at_callback(env):
    fired = []
    env.schedule_at(4.0, lambda: fired.append(env.now))

    def proc():
        yield env.timeout(10)

    env.run(env.process(proc()))
    assert fired == [4.0]


class TestEvery:
    def test_ticks_at_period_and_stops_with_the_workload(self, env):
        ticks = []
        env.every(1.0, lambda: ticks.append(env.now))

        def proc():
            yield env.timeout(3.5)

        env.run(env.process(proc()))
        # fires at 1, 2, 3; the tick at 3 sees the queue still alive
        # (the 3.5 timeout), but the one scheduled for 4 never fires
        # because run() ends when the driving process does
        assert ticks == [1.0, 2.0, 3.0]

    def test_does_not_keep_an_idle_queue_alive(self, env):
        ticks = []
        env.every(1.0, lambda: ticks.append(env.now))

        def proc():
            yield env.timeout(2.0)

        env.run()  # drain mode: no processes at all after this one
        env.process(proc())
        env.run()
        # the tick that fires with nothing else queued stops ticking
        assert ticks and ticks[-1] <= 3.0

    def test_double_after_decimates_long_runs(self, env):
        ticks = []
        env.every(1.0, lambda: ticks.append(env.now), double_after=2)

        def proc():
            yield env.timeout(20.0)

        env.run(env.process(proc()))
        # periods: 1,1 then 2,2 then 4,4 ... -> ticks at 1,2,4,6,10,14
        assert ticks == [1.0, 2.0, 4.0, 6.0, 10.0, 14.0]

    def test_validation(self, env):
        with pytest.raises(ValueError):
            env.every(0.0, lambda: None)
        with pytest.raises(ValueError):
            env.every(1.0, lambda: None, double_after=0)


class TestSchedulingValidation:
    """call_in/call_at must reject entries that would land behind
    ``now`` (they would corrupt the calendar-queue order)."""

    def test_call_in_negative_delay_rejected(self, env):
        with pytest.raises(ValueError, match="negative delay"):
            env.call_in(-0.5, lambda: None)

    def test_call_in_nan_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.call_in(float("nan"), lambda: None)

    def test_call_at_past_deadline_rejected(self, env):
        def proc():
            yield env.timeout(2.0)
            env.call_at(1.0, lambda: None)

        with pytest.raises(ValueError, match="in the past"):
            env.run(env.process(proc()))

    def test_call_at_nan_deadline_rejected(self, env):
        with pytest.raises(ValueError):
            env.call_at(float("nan"), lambda: None)

    def test_timeout_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_nan_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(float("nan"))

    def test_schedule_at_past_rejected(self, env):
        def proc():
            yield env.timeout(2.0)
            env.schedule_at(1.0, lambda: None)

        with pytest.raises(ValueError, match="in the past"):
            env.run(env.process(proc()))

    def test_call_in_zero_fires_this_instant(self, env):
        fired = []
        env.call_in(0.0, lambda: fired.append(env.now))
        env.run()
        assert fired == [0.0]

    def test_call_at_now_fires_this_instant(self, env):
        fired = []

        def proc():
            yield env.timeout(1.0)
            env.call_at(env.now, lambda: fired.append(env.now))
            yield env.timeout(1.0)

        env.run(env.process(proc()))
        assert fired == [1.0]

    def test_call_in_subresolution_delay_fires_this_instant(self, env):
        # a delay too small for the float clock to resolve must fire at
        # the current instant (ring), never land in the heap at `now`
        fired = []

        def proc():
            yield env.timeout(1e9)
            env.call_in(1e-12, lambda: fired.append(env.now))
            yield env.timeout(1.0)

        env.run(env.process(proc()))
        assert fired == [1e9]
