"""Unit tests for the event-chained RPC fast paths.

``Resource.round_trip`` / ``batch_round_trips`` bypass the
Process/Timeout machinery; these tests pin their semantics to the
generator-based equivalent: same timing, same FIFO admission (also when
mixed with generator-based ``request()`` users), same failure point.
"""

import pytest

from repro.sim.core import Environment
from repro.sim.resources import Resource, batch_round_trips


@pytest.fixture()
def env():
    return Environment()


class TestRoundTrip:
    def test_uncontended_timing(self, env):
        res = Resource(env, capacity=1)

        def proc():
            value = yield res.round_trip(0.5, 2.0, fn=lambda: "ok")
            return (env.now, value)

        # latency + service + latency
        assert env.run(env.process(proc())) == (3.0, "ok")
        assert res.in_use == 0

    def test_zero_latency(self, env):
        res = Resource(env, capacity=1)

        def proc():
            yield res.round_trip(0.0, 1.5)
            return env.now

        assert env.run(env.process(proc())) == 1.5

    def test_contended_serializes_fifo(self, env):
        res = Resource(env, capacity=1)
        ends = []

        def proc(tag):
            yield res.round_trip(0.0, 1.0)
            ends.append((tag, env.now))

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert ends == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_mixes_fifo_with_generator_requests(self, env):
        res = Resource(env, capacity=1)
        order = []

        def generator_user():
            req = yield res.request()
            order.append("gen-granted")
            yield env.timeout(1.0)
            res.release(req)

        def rpc_user():
            yield res.round_trip(0.0, 1.0)
            order.append("rpc-done")

        def late_generator_user():
            yield env.timeout(0.5)  # arrives while the rpc waits
            req = yield res.request()
            order.append("late-gen-granted")
            res.release(req)

        env.process(generator_user())
        env.process(rpc_user())
        env.process(late_generator_user())
        env.run()
        # the rpc is admitted first (FIFO), and its release at end of
        # service grants the late requester before the reply leg lands
        assert order == ["gen-granted", "late-gen-granted", "rpc-done"]

    def test_notify_false_returns_none_but_serializes(self, env):
        res = Resource(env, capacity=1)
        assert res.round_trip(0.0, 2.0, notify=False) is None

        def proc():
            # queued behind the fire-and-forget call's service
            yield res.round_trip(0.0, 1.0)
            return env.now

        assert env.run(env.process(proc())) == 3.0
        assert res.in_use == 0

    def test_fn_failure_fails_event_and_releases(self, env):
        res = Resource(env, capacity=1)

        def bad():
            raise RuntimeError("service exploded")

        def proc():
            with pytest.raises(RuntimeError, match="service exploded"):
                yield res.round_trip(0.25, 1.0, fn=bad)
            # the unit must be free again
            yield res.round_trip(0.0, 1.0)
            return env.now

        # failure surfaces at the service point (1.25), then 1s more
        assert env.run(env.process(proc())) == 2.25


class TestBatchRoundTrips:
    def test_fires_at_last_reply(self, env):
        a = Resource(env, capacity=1)
        b = Resource(env, capacity=1)
        from repro.sim.core import Event

        done = Event(env)
        batch_round_trips([a, b], latency=0.5, service=2.0, done=done)

        def proc():
            yield done
            return env.now

        assert env.run(env.process(proc())) == 3.0  # 0.5 + 2.0 + 0.5

    def test_duplicate_resource_serializes(self, env):
        res = Resource(env, capacity=1)
        from repro.sim.core import Event

        done = Event(env)
        # both RPCs hit the same single-slot server: back-to-back service
        batch_round_trips([res, res], latency=0.5, service=1.0, done=done)

        def proc():
            yield done
            return env.now

        assert env.run(env.process(proc())) == 3.0  # 0.5 + 1 + 1 + 0.5
        assert res.in_use == 0

    def test_matches_individual_round_trips(self, env):
        """The batch is timing-equivalent to k independent round trips."""
        servers = [Resource(env, capacity=1) for _ in range(3)]

        def individual():
            evs = [s.round_trip(0.3, 1.1) for s in servers]
            yield env.all_of(evs)
            return env.now

        t_individual = env.run(env.process(individual()))

        env2 = Environment()
        servers2 = [Resource(env2, capacity=1) for _ in range(3)]
        from repro.sim.core import Event

        done = Event(env2)
        batch_round_trips(servers2, latency=0.3, service=1.1, done=done)

        def batched():
            yield done
            return env2.now

        assert env2.run(env2.process(batched())) == t_individual


class TestCallInCallAt:
    def test_call_in_fires_after_delay(self, env):
        fired = []
        env.call_in(2.5, lambda: fired.append(env.now))
        env.run()
        assert fired == [2.5]

    def test_call_at_fires_at_instant(self, env):
        fired = []

        def proc():
            yield env.timeout(1.0)
            env.call_at(4.0, lambda: fired.append(env.now))

        env.process(proc())
        env.run()
        assert fired == [4.0]

    def test_same_instant_callbacks_fifo(self, env):
        order = []
        env.call_in(1.0, lambda: order.append("first"))
        env.call_in(1.0, lambda: order.append("second"))
        env.run()
        assert order == ["first", "second"]
