"""Unit tests for the simulated cluster builder."""

import pytest

from repro.common.config import ClusterConfig
from repro.sim.cluster import SimCluster


def test_builds_requested_nodes():
    cluster = SimCluster(ClusterConfig(nodes=10))
    assert len(cluster) == 10
    assert cluster.names()[0] == "node-000"
    assert cluster.names()[-1] == "node-009"


def test_node_lookup():
    cluster = SimCluster(ClusterConfig(nodes=5))
    node = cluster.node("node-003")
    assert node.name == "node-003"
    assert node.net is cluster.network.node("node-003")


def test_shared_environment():
    cluster = SimCluster(ClusterConfig(nodes=4))
    assert cluster.network.env is cluster.env
    assert all(n.disk.env is cluster.env for n in cluster.nodes)


def test_config_capacities_applied():
    cfg = ClusterConfig(nodes=4, nic_bandwidth=500.0, disk_write_bandwidth=7.0,
                        disk_read_bandwidth=9.0)
    cluster = SimCluster(cfg)
    node = cluster.node("node-000")
    assert node.net.up_capacity == 500.0
    assert node.disk.write_bandwidth == 7.0
    assert node.disk.read_bandwidth == 9.0


def test_disks_have_independent_rngs():
    cluster = SimCluster(ClusterConfig(nodes=4, page_cache_hit_ratio=0.5))
    a = [cluster.node("node-000").disk.rng.random() for _ in range(5)]
    b = [cluster.node("node-001").disk.rng.random() for _ in range(5)]
    assert a != b


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        SimCluster(ClusterConfig(nodes=1))
