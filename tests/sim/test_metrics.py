"""Unit tests for experiment metrics aggregation."""

import pytest

from repro.sim.metrics import Metrics, OpSample


def test_sample_throughput():
    s = OpSample("c", "read", start=1.0, end=3.0, nbytes=200)
    assert s.duration == 2.0
    assert s.throughput == 100.0


def test_record_rejects_reversed_interval():
    m = Metrics()
    with pytest.raises(ValueError):
        m.record("c", "read", start=2.0, end=1.0, nbytes=1)


def test_per_client_throughput_uses_busy_span():
    m = Metrics()
    # client does two 100-byte ops back to back: 200 bytes over 2 s
    m.record("c1", "append", 0.0, 1.0, 100)
    m.record("c1", "append", 1.0, 2.0, 100)
    # another client is slower
    m.record("c2", "append", 0.0, 4.0, 100)
    per = m.per_client_throughput("append")
    assert per["c1"] == pytest.approx(100.0)
    assert per["c2"] == pytest.approx(25.0)
    assert m.average_client_throughput("append") == pytest.approx(62.5)


def test_kinds_are_separate():
    m = Metrics()
    m.record("c", "append", 0, 1, 100)
    m.record("c", "read", 0, 2, 100)
    assert m.average_client_throughput("read") == pytest.approx(50.0)
    assert m.average_client_throughput("append") == pytest.approx(100.0)
    assert m.average_client_throughput("write") == 0.0


def test_aggregate_throughput():
    m = Metrics()
    m.record("a", "read", 0.0, 2.0, 100)
    m.record("b", "read", 1.0, 2.0, 100)
    assert m.aggregate_throughput("read") == pytest.approx(100.0)


def test_makespan():
    m = Metrics()
    m.record("a", "read", 1.0, 2.0, 1)
    m.record("b", "append", 0.5, 4.0, 1)
    assert m.makespan() == pytest.approx(3.5)
    assert m.makespan("read") == pytest.approx(1.0)
    assert m.makespan("write") == 0.0


def test_counters():
    m = Metrics()
    m.bump("versions")
    m.bump("versions", 2)
    assert m.counters["versions"] == 3


def test_zero_duration_sample_throughput_is_finite():
    # regression: instantaneous ops used to report inf B/s, which then
    # poisoned every mean they entered
    s = OpSample("c", "append", start=1.0, end=1.0, nbytes=100)
    assert s.throughput == 0.0


def test_zero_duration_client_does_not_poison_average():
    import math

    m = Metrics()
    m.record("fast", "append", 0.0, 0.0, 100)  # zero busy span
    m.record("slow", "append", 0.0, 1.0, 100)
    per = m.per_client_throughput("append")
    assert per["fast"] == 0.0
    avg = m.average_client_throughput("append")
    assert math.isfinite(avg)
    assert avg == pytest.approx(50.0)


def test_zero_span_aggregate_throughput_is_finite():
    m = Metrics()
    m.record("a", "read", 2.0, 2.0, 100)
    assert m.aggregate_throughput("read") == 0.0
