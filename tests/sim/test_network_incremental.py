"""Differential tests: incremental allocator vs the reference recompute.

``Network.check_reference = True`` re-runs the reference progressive
filling over the whole flow table after every incremental flow-change
event and asserts each flow's rate agrees to 1e-6 relative — the oracle
is exercised here over hundreds of seeded random topologies, with and
without a blocking backbone and per-flow caps, plus an end-to-end check
that both allocators produce the same completion times.
"""

import random
import zlib

import pytest

from repro.sim.core import Environment
from repro.sim.network import Network

#: seeded topology/workload count per scenario (4 scenarios -> 240 total)
SEEDS_PER_SCENARIO = 60

SCENARIOS = {
    "plain": dict(backbone=0.0, cap=0.0),
    "capped": dict(backbone=0.0, cap=35.0),
    "backbone": dict(backbone=180.0, cap=0.0),
    "backbone-capped": dict(backbone=180.0, cap=35.0),
}


def _drive_random_workload(
    seed: int,
    backbone: float,
    cap: float,
    allocator: str = "incremental",
    check: bool = True,
):
    """Random topology + arrival pattern; returns per-transfer finish times."""
    rng = random.Random(seed)
    env = Environment()
    net = Network(
        env,
        latency=rng.choice([0.0, 0.001]),
        backbone_bandwidth=backbone,
        flow_rate_cap=cap,
        allocator=allocator,
    )
    net.check_reference = check
    n_nodes = rng.randint(3, 9)
    for i in range(n_nodes):
        net.add_node(f"n{i}", bandwidth=rng.choice([40.0, 100.0, 250.0]))
    n_transfers = rng.randint(4, 18)
    finished = {}
    events = []

    def driver():
        for t in range(n_transfers):
            src = f"n{rng.randrange(n_nodes)}"
            dst = f"n{rng.randrange(n_nodes)}"  # src==dst (local) allowed
            nbytes = rng.choice([0, rng.uniform(0.5, 400.0)])
            events.append((t, net.transfer(src, dst, nbytes)))
            if rng.random() < 0.6:
                yield env.timeout(rng.uniform(0.0, 2.5))
        for t, ev in events:
            finished[t] = yield ev

    env.run(env.process(driver()))
    assert net.active_flows == 0
    return env.now, finished


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", range(SEEDS_PER_SCENARIO))
def test_incremental_matches_reference_oracle(scenario, seed):
    """Every flow-change event's rates agree with the full recompute."""
    params = SCENARIOS[scenario]
    _drive_random_workload(
        seed * 7919 + zlib.crc32(scenario.encode()) % 1000, **params
    )


@pytest.mark.parametrize("seed", range(25))
def test_allocators_agree_on_completion_times(seed):
    """Same workload end-to-end under both allocators: identical finish
    times (up to fp accumulation-order noise)."""
    t_inc, fin_inc = _drive_random_workload(
        seed, backbone=0.0, cap=50.0, allocator="incremental", check=False
    )
    t_ref, fin_ref = _drive_random_workload(
        seed, backbone=0.0, cap=50.0, allocator="reference", check=False
    )
    assert t_inc == pytest.approx(t_ref, rel=1e-9)
    assert fin_inc.keys() == fin_ref.keys()
    for t in fin_inc:
        assert fin_inc[t] == pytest.approx(fin_ref[t], rel=1e-9, abs=1e-12)


class TestRpc:
    def _net(self, latency=0.001):
        env = Environment()
        net = Network(env, latency=latency)
        net.add_node("a", bandwidth=100.0)
        net.add_node("b", bandwidth=100.0)
        return env, net

    def test_unknown_endpoints_rejected(self):
        env, net = self._net()
        with pytest.raises(ValueError, match="rpc from unknown node"):
            net.rpc("ghost", "b")
        with pytest.raises(ValueError, match="rpc to unknown node"):
            net.rpc("a", "ghost")

    def test_counts_both_endpoints(self):
        env, net = self._net()
        def proc():
            yield net.rpc("a", "b")
            yield net.rpc("a", "b")
            yield net.rpc("b", "a")
        env.run(env.process(proc()))
        assert net.node("a").rpcs_sent == 2
        assert net.node("a").rpcs_received == 1
        assert net.node("b").rpcs_sent == 1
        assert net.node("b").rpcs_received == 2

    def test_takes_round_trip_latency(self):
        env, net = self._net(latency=0.25)
        def proc():
            yield net.rpc("a", "b")
            return env.now
        assert env.run(env.process(proc())) == pytest.approx(0.5)


class TestPairIndex:
    def test_active_flows_between_tracks_and_drains(self):
        env = Environment()
        net = Network(env)
        for n in ("a", "b", "c"):
            net.add_node(n, bandwidth=100.0)
        seen = []

        def probe():
            yield env.timeout(0.1)
            seen.append(
                (
                    net.active_flows_between("a", "b"),
                    net.active_flows_between("a", "c"),
                    net.active_flows_between("b", "a"),
                )
            )

        evs = [
            net.transfer("a", "b", 100.0),
            net.transfer("a", "b", 100.0),
            net.transfer("a", "c", 100.0),
        ]
        env.process(probe())

        def main():
            for ev in evs:
                yield ev

        env.run(env.process(main()))
        assert seen == [(2, 1, 0)]
        assert net.active_flows_between("a", "b") == 0
        assert net.active_flows_between("a", "c") == 0
        assert net.active_flows == 0
