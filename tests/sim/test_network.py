"""Unit + property tests for the flow-level network model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.core import Environment
from repro.sim.network import Network


def make_net(n_nodes=4, bw=100.0, latency=0.0, cap=0.0, backbone=0.0):
    env = Environment()
    net = Network(
        env, latency=latency, backbone_bandwidth=backbone, flow_rate_cap=cap
    )
    for i in range(n_nodes):
        net.add_node(f"n{i}", bandwidth=bw)
    return env, net


def finish_times(env, events):
    times = {}

    def main():
        for name, ev in events.items():
            times[name] = (yield ev)

    env.run(env.process(main()))
    return times


class TestSingleFlow:
    def test_full_rate(self):
        env, net = make_net()
        ev = net.transfer("n0", "n1", 200.0)
        t = finish_times(env, {"x": ev})["x"]
        assert t == pytest.approx(2.0)

    def test_latency_added(self):
        env, net = make_net(latency=0.5)
        ev = net.transfer("n0", "n1", 100.0)
        assert finish_times(env, {"x": ev})["x"] == pytest.approx(1.5)

    def test_zero_bytes_is_latency_only(self):
        env, net = make_net(latency=0.25)
        ev = net.transfer("n0", "n1", 0)
        times = finish_times(env, {"x": ev})
        assert env.now == pytest.approx(0.25)

    def test_local_transfer_is_fast(self):
        env, net = make_net()
        ev = net.transfer("n0", "n0", 100.0)
        t = finish_times(env, {"x": ev})["x"]
        assert t < 0.001  # loopback, not NIC-limited


class TestSharing:
    def test_two_flows_into_one_destination_halve(self):
        env, net = make_net()
        e1 = net.transfer("n0", "n2", 100.0)
        e2 = net.transfer("n1", "n2", 100.0)
        times = finish_times(env, {"a": e1, "b": e2})
        assert times["a"] == times["b"] == pytest.approx(2.0)

    def test_two_flows_out_of_one_source_halve(self):
        env, net = make_net()
        e1 = net.transfer("n0", "n1", 100.0)
        e2 = net.transfer("n0", "n2", 100.0)
        times = finish_times(env, {"a": e1, "b": e2})
        assert times["a"] == times["b"] == pytest.approx(2.0)

    def test_disjoint_flows_do_not_interfere(self):
        env, net = make_net()
        e1 = net.transfer("n0", "n1", 100.0)
        e2 = net.transfer("n2", "n3", 100.0)
        times = finish_times(env, {"a": e1, "b": e2})
        assert times["a"] == times["b"] == pytest.approx(1.0)

    def test_released_bandwidth_is_reused(self):
        """A short flow finishing releases capacity to a longer one."""
        env, net = make_net()
        long = net.transfer("n0", "n2", 150.0)
        short = net.transfer("n1", "n2", 50.0)
        times = finish_times(env, {"long": long, "short": short})
        # both at 50 B/s until short finishes at t=1 (50B); long then has
        # 100B left at 100 B/s -> t=2
        assert times["short"] == pytest.approx(1.0)
        assert times["long"] == pytest.approx(2.0)

    def test_max_min_three_flow_asymmetry(self):
        """Two flows into n2 and one n1->n3: the n1 uplink carries two
        flows only in one direction; max-min gives the lone flow more."""
        env, net = make_net(n_nodes=5)
        a = net.transfer("n0", "n2", 100.0)  # shares n2 down
        b = net.transfer("n1", "n2", 100.0)  # shares n2 down + n1 up
        c = net.transfer("n3", "n4", 100.0)  # independent
        times = finish_times(env, {"a": a, "b": b, "c": c})
        assert times["c"] == pytest.approx(1.0)
        assert times["a"] == pytest.approx(2.0)
        assert times["b"] == pytest.approx(2.0)


class TestBackbone:
    def test_backbone_caps_aggregate(self):
        env, net = make_net(backbone=100.0)
        e1 = net.transfer("n0", "n1", 100.0)
        e2 = net.transfer("n2", "n3", 100.0)
        times = finish_times(env, {"a": e1, "b": e2})
        # each gets 50 B/s through the shared 100 B/s backbone
        assert times["a"] == times["b"] == pytest.approx(2.0)


class TestFlowCap:
    def test_cap_limits_single_flow(self):
        env, net = make_net(cap=25.0)
        ev = net.transfer("n0", "n1", 100.0)
        assert finish_times(env, {"x": ev})["x"] == pytest.approx(4.0)

    def test_capped_flows_leave_headroom(self):
        """With a 40 B/s cap on a 100 B/s NIC, two flows into one node
        run at 40 each instead of 50/50."""
        env, net = make_net(cap=40.0)
        e1 = net.transfer("n0", "n2", 80.0)
        e2 = net.transfer("n1", "n2", 80.0)
        times = finish_times(env, {"a": e1, "b": e2})
        assert times["a"] == times["b"] == pytest.approx(2.0)

    def test_three_capped_flows_share_fairly(self):
        """Three 40-capped flows into one 100 B/s NIC: fair share 33.3."""
        env, net = make_net(n_nodes=5, cap=40.0)
        evs = {
            i: net.transfer(f"n{i}", "n4", 100.0) for i in range(3)
        }
        times = finish_times(env, evs)
        for t in times.values():
            assert t == pytest.approx(3.0)


class TestRPCAndIntrospection:
    def test_rpc_is_round_trip_latency(self):
        env, net = make_net(latency=0.1)
        ev = net.rpc("n0", "n1")
        finish_times(env, {"x": ev})
        assert env.now == pytest.approx(0.2)

    def test_current_rate_during_transfer(self):
        env, net = make_net()
        net.transfer("n0", "n1", 1000.0)
        net.transfer("n0", "n2", 1000.0)

        def probe():
            yield env.timeout(1.0)
            return net.current_rate("n0", "n1"), net.active_flows

        rate, flows = env.run(env.process(probe()))
        assert rate == pytest.approx(50.0)  # n0's uplink split two ways
        assert flows == 2
        env.run()

    def test_active_flows_drains(self):
        env, net = make_net()
        ev = net.transfer("n0", "n1", 10.0)
        finish_times(env, {"x": ev})
        assert net.active_flows == 0


class TestAccounting:
    def test_byte_counters(self):
        env, net = make_net()
        ev = net.transfer("n0", "n1", 123.0)
        finish_times(env, {"x": ev})
        assert net.node("n0").bytes_sent == pytest.approx(123.0)
        assert net.node("n1").bytes_received == pytest.approx(123.0)
        assert net.completed_transfers == 1

    def test_duplicate_node_rejected(self):
        env, net = make_net()
        with pytest.raises(ValueError):
            net.add_node("n0", bandwidth=1.0)

    def test_negative_bytes_rejected(self):
        env, net = make_net()
        with pytest.raises(ValueError):
            net.transfer("n0", "n1", -1)


@settings(max_examples=30, deadline=None)
@given(
    flows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
            st.floats(min_value=1.0, max_value=1000.0),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_conservation_property(flows):
    """All bytes arrive; makespan is bounded below by the most loaded
    NIC direction and above by serial execution."""
    env, net = make_net(n_nodes=6, bw=100.0)
    events = {}
    up = [0.0] * 6
    down = [0.0] * 6
    for i, (s, d, nbytes) in enumerate(flows):
        events[i] = net.transfer(f"n{s}", f"n{d}", nbytes)
        if s != d:
            up[s] += nbytes
            down[d] += nbytes
    finish_times(env, events)
    lower = max(max(up), max(down)) / 100.0
    assert env.now >= lower - 1e-6
    assert env.now <= sum(f[2] for f in flows) / 100.0 * len(flows) + 1.0
    for i in range(6):
        assert net.node(f"n{i}").bytes_sent >= 0
    total = sum(nbytes for _s, _d, nbytes in flows)  # loopback counts too
    assert sum(n.bytes_received for n in net.nodes.values()) == pytest.approx(
        total, rel=1e-6
    )
