"""Tests for the two-level (rack switch + core) topology."""

import pytest

from repro.sim.core import Environment
from repro.sim.network import Network


def make_racked(bw=100.0, rack_bw=150.0, backbone=0.0, racks=2, per_rack=2):
    """*racks* racks of *per_rack* nodes: node r-i is ``n{r}{i}``."""
    env = Environment()
    net = Network(env, latency=0.0, backbone_bandwidth=backbone)
    for r in range(racks):
        net.add_rack(f"rack{r}", bandwidth=rack_bw)
    for r in range(racks):
        for i in range(per_rack):
            net.add_node(f"n{r}{i}", bandwidth=bw, rack=f"rack{r}")
    return env, net


def finish(env, ev):
    done = {}

    def main():
        done["t"] = yield ev

    env.run(env.process(main()))
    return done["t"]


class TestRackWiring:
    def test_duplicate_rack_rejected(self):
        env = Environment()
        net = Network(env)
        net.add_rack("r", bandwidth=10.0)
        with pytest.raises(ValueError):
            net.add_rack("r", bandwidth=10.0)

    def test_non_positive_rack_bandwidth_rejected(self):
        env = Environment()
        net = Network(env)
        with pytest.raises(ValueError):
            net.add_rack("r", bandwidth=0.0)

    def test_unknown_rack_rejected(self):
        env = Environment()
        net = Network(env)
        with pytest.raises(ValueError):
            net.add_node("n0", bandwidth=10.0, rack="nope")

    def test_asymmetric_up_down(self):
        env = Environment()
        net = Network(env)
        net.add_rack("r", up=10.0, down=20.0)
        net.add_node("a", bandwidth=100.0, rack="r")
        net.add_node("b", bandwidth=100.0)
        # a -> b crosses only the rack uplink: pinched to 10
        assert finish(env, net.transfer("a", "b", 100.0)) == pytest.approx(10.0)


class TestRackRates:
    def test_intra_rack_bypasses_uplink(self):
        # rack uplink (150) is slower than two NICs could go; an
        # intra-rack flow turns around at the rack switch and gets the
        # full NIC rate anyway
        env, net = make_racked(bw=100.0, rack_bw=50.0)
        t = finish(env, net.transfer("n00", "n01", 100.0))
        assert t == pytest.approx(1.0)  # NIC-limited, not uplink-limited

    def test_inter_rack_pinched_by_uplink(self):
        env, net = make_racked(bw=100.0, rack_bw=50.0)
        t = finish(env, net.transfer("n00", "n10", 100.0))
        assert t == pytest.approx(2.0)  # 50 B/s through the uplinks

    def test_uplink_shared_by_concurrent_inter_rack_flows(self):
        env, net = make_racked(bw=100.0, rack_bw=100.0)
        e1 = net.transfer("n00", "n10", 100.0)
        e2 = net.transfer("n01", "n11", 100.0)
        done = {}

        def main():
            done["t1"] = yield e1
            done["t2"] = yield e2

        env.run(env.process(main()))
        # both flows share rack0's 100 B/s uplink: 50 each
        assert done["t1"] == pytest.approx(2.0)
        assert done["t2"] == pytest.approx(2.0)

    def test_backbone_still_applies_between_racks(self):
        env, net = make_racked(bw=100.0, rack_bw=100.0, backbone=25.0)
        t = finish(env, net.transfer("n00", "n10", 100.0))
        assert t == pytest.approx(4.0)  # core is the bottleneck

    def test_unracked_nodes_unaffected(self):
        # nodes without a rack keep the flat-fabric behavior even when
        # racks exist elsewhere in the topology
        env, net = make_racked(bw=100.0, rack_bw=10.0)
        net.add_node("flat0", bandwidth=100.0)
        net.add_node("flat1", bandwidth=100.0)
        t = finish(env, net.transfer("flat0", "flat1", 100.0))
        assert t == pytest.approx(1.0)

    def test_oracle_agrees_on_mixed_rack_topology(self):
        env, net = make_racked(bw=100.0, rack_bw=120.0, per_rack=3)
        # check_reference makes every reallocation verify the
        # incremental rates against the full-recompute oracle (which
        # walks each flow's rack-aware resource path independently)
        net.check_reference = True
        events = [
            net.transfer("n00", "n01", 300.0),  # intra-rack
            net.transfer("n02", "n10", 300.0),  # inter-rack
            net.transfer("n11", "n12", 300.0),  # intra-rack, other side
            net.transfer("n12", "n00", 200.0),  # inter-rack, reverse
        ]

        def main():
            for ev in events:
                yield ev

        env.run(env.process(main()))
        assert env.now > 0.0
