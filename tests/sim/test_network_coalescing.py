"""Coalesced end-of-timestep reallocation: correctness and batch API.

PR 3 defers same-instant flow churn to one flush that runs just before
simulated time advances. These tests pin down the three properties that
make the deferral safe: (1) the order in which same-instant starts and
finishes are processed cannot change any observable rate or completion
time, (2) the reference-allocator differential oracle still validates
the rate table at every coalesced flush point, and (3)
``transfer_many`` is semantically identical to N individual
``transfer`` calls — on random topologies, under both allocators.
"""

import random

import pytest

from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sim.core import Environment
from repro.sim.network import Network

SCENARIOS = {
    "plain": dict(backbone=0.0, cap=0.0),
    "capped": dict(backbone=0.0, cap=35.0),
    "backbone": dict(backbone=180.0, cap=0.0),
    "backbone-capped": dict(backbone=180.0, cap=35.0),
}


def _random_requests(rng, n_nodes, k):
    return [
        (
            f"n{rng.randrange(n_nodes)}",
            f"n{rng.randrange(n_nodes)}",
            rng.choice([0, rng.uniform(0.5, 300.0)]),
        )
        for _ in range(k)
    ]


class TestSameInstantDeterminism:
    """Event-order permutations of same-instant churn → identical rates."""

    #: a fig6-like shape: several equal flows (their finishes then
    #: coincide) plus unequal ones sharing the same NICs
    REQUESTS = [
        ("n0", "n3", 120.0),
        ("n1", "n3", 120.0),
        ("n2", "n3", 120.0),
        ("n0", "n3", 40.0),
        ("n1", "n2", 200.0),
        ("n0", "n1", 75.0),
        ("n2", "n3", 120.0),
    ]

    def _completion_times(self, order, backbone, cap):
        env = Environment()
        net = Network(
            env, latency=0.001, backbone_bandwidth=backbone, flow_rate_cap=cap
        )
        for i in range(4):
            net.add_node(f"n{i}", bandwidth=120.0)
        times = {}

        def driver():
            evs = []
            for i in order:  # all started at the same instant, this order
                ev = net.transfer(*self.REQUESTS[i])
                ev.callbacks.append(
                    lambda _e, i=i: times.__setitem__(i, env.now)
                )
                evs.append(ev)
            for ev in evs:
                yield ev

        env.run(env.process(driver()))
        assert net.active_flows == 0
        assert len(times) == len(self.REQUESTS)
        return times

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("seed", range(8))
    def test_permutations_agree(self, scenario, seed):
        params = SCENARIOS[scenario]
        base = self._completion_times(
            list(range(len(self.REQUESTS))), params["backbone"], params["cap"]
        )
        order = list(range(len(self.REQUESTS)))
        random.Random(seed).shuffle(order)
        permuted = self._completion_times(
            order, params["backbone"], params["cap"]
        )
        for i in base:
            assert permuted[i] == pytest.approx(base[i], rel=1e-12, abs=1e-12)

    def test_rates_observable_before_time_advances(self):
        """current_rate forces the pending flush, so same-instant starts
        are immediately observable at their final coalesced rates."""
        env = Environment()
        net = Network(env, latency=0.0)
        for n in ("a", "b", "c"):
            net.add_node(n, bandwidth=100.0)
        seen = []

        def driver():
            evs = net.transfer_many([("a", "c", 50.0), ("b", "c", 50.0)])
            # same simulated instant: the flush has not run yet
            seen.append(net.current_rate("a", "c"))
            seen.append(net.current_rate("b", "c"))
            for ev in evs:
                yield ev

        env.run(env.process(driver()))
        # c's ingress NIC (100) split max-min between the two flows
        assert seen == [pytest.approx(50.0), pytest.approx(50.0)]


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", range(20))
def test_oracle_validated_at_flush_points(scenario, seed):
    """check_reference re-runs the full recompute after every coalesced
    flush; bursty batched workloads must keep it green."""
    params = SCENARIOS[scenario]
    rng = random.Random(seed * 6151 + len(scenario))
    env = Environment()
    net = Network(
        env,
        latency=rng.choice([0.0, 0.001]),
        backbone_bandwidth=params["backbone"],
        flow_rate_cap=params["cap"],
    )
    net.check_reference = True
    n_nodes = rng.randint(3, 8)
    for i in range(n_nodes):
        net.add_node(f"n{i}", bandwidth=rng.choice([40.0, 100.0, 250.0]))

    def driver():
        pending = []
        for _ in range(rng.randint(2, 5)):
            k = rng.randint(1, 12)
            pending.extend(
                net.transfer_many(_random_requests(rng, n_nodes, k))
            )
            if rng.random() < 0.7:
                yield env.timeout(rng.uniform(0.0, 2.0))
        for ev in pending:
            yield ev

    env.run(env.process(driver()))
    assert net.active_flows == 0


class TestTransferManyEquivalence:
    """transfer_many == N× transfer, on seeded random topologies."""

    def _run(self, seed, use_batch, allocator):
        rng = random.Random(seed)
        env = Environment()
        net = Network(
            env,
            latency=rng.choice([0.0, 0.001]),
            backbone_bandwidth=rng.choice([0.0, 200.0]),
            flow_rate_cap=rng.choice([0.0, 45.0]),
            allocator=allocator,
        )
        n_nodes = rng.randint(3, 7)
        for i in range(n_nodes):
            net.add_node(f"n{i}", bandwidth=rng.choice([60.0, 150.0]))
        times = {}

        def driver():
            evs = []
            for wave in range(rng.randint(1, 3)):
                reqs = _random_requests(rng, n_nodes, rng.randint(2, 10))
                if use_batch:
                    started = net.transfer_many(reqs)
                else:
                    started = [net.transfer(*r) for r in reqs]
                for j, ev in enumerate(started):
                    ev.callbacks.append(
                        lambda _e, key=(wave, j): times.__setitem__(
                            key, env.now
                        )
                    )
                evs.extend(started)
                yield env.timeout(rng.uniform(0.5, 2.0))
            for ev in evs:
                yield ev

        env.run(env.process(driver()))
        assert net.active_flows == 0
        return times

    @pytest.mark.parametrize("seed", range(25))
    def test_batch_matches_individual_incremental(self, seed):
        batch = self._run(seed, use_batch=True, allocator="incremental")
        loose = self._run(seed, use_batch=False, allocator="incremental")
        assert batch.keys() == loose.keys()
        for key in batch:
            assert batch[key] == pytest.approx(
                loose[key], rel=1e-12, abs=1e-12
            )

    @pytest.mark.parametrize("seed", range(25))
    def test_batch_matches_reference_allocator(self, seed):
        batch = self._run(seed, use_batch=True, allocator="incremental")
        ref = self._run(seed, use_batch=False, allocator="reference")
        assert batch.keys() == ref.keys()
        for key in batch:
            assert batch[key] == pytest.approx(ref[key], rel=1e-9, abs=1e-12)

    def test_returns_events_in_request_order(self):
        env = Environment()
        net = Network(env, latency=0.01)
        for n in ("a", "b"):
            net.add_node(n, bandwidth=100.0)
        # mixes zero-byte (latency-only) and data-bearing requests
        reqs = [("a", "b", 0.0), ("a", "b", 100.0), ("b", "a", 0.0)]
        results = {}

        def driver():
            evs = net.transfer_many(reqs)
            assert len(evs) == len(reqs)
            for i, ev in enumerate(evs):
                ev.callbacks.append(
                    lambda _e, i=i: results.__setitem__(i, env.now)
                )
            for ev in evs:
                yield ev

        env.run(env.process(driver()))
        assert results[0] == pytest.approx(0.01)  # one latency leg
        assert results[2] == pytest.approx(0.01)
        assert results[1] == pytest.approx(0.01 + 1.0)  # 100 B at 100 B/s

    def test_rejects_negative_nbytes(self):
        env = Environment()
        net = Network(env)
        net.add_node("a", bandwidth=100.0)
        with pytest.raises(ValueError, match="non-negative"):
            net.transfer_many([("a", "a", -1.0)])


class TestCoalescingCounters:
    def _obs(self):
        return Observability(
            tracer=Tracer(enabled=False), registry=MetricsRegistry()
        )

    def test_burst_coalesces_into_few_flushes(self):
        obs = self._obs()
        env = Environment()
        net = Network(env, latency=0.0, obs=obs)
        for i in range(6):
            net.add_node(f"n{i}", bandwidth=100.0)
        reqs = [(f"n{i}", "n5", 80.0) for i in range(5) for _ in range(4)]

        def driver():
            for ev in net.transfer_many(reqs):
                yield ev

        env.run(env.process(driver()))
        reg = obs.registry
        flushes = reg.value("sim.net.flushes")
        coalesced = reg.value("sim.net.coalesced_changes")
        assert flushes > 0
        # 20 starts land in one flush; the equal-split finishes coalesce
        # too — far fewer reallocations than flow-change events
        assert coalesced >= len(reqs)
        assert flushes < coalesced
        assert reg.value("sim.net.reallocs") <= flushes

    def test_reference_allocator_never_flushes(self):
        obs = self._obs()
        env = Environment()
        net = Network(env, latency=0.0, allocator="reference", obs=obs)
        net.add_node("a", bandwidth=100.0)
        net.add_node("b", bandwidth=100.0)

        def driver():
            for ev in net.transfer_many([("a", "b", 10.0), ("a", "b", 5.0)]):
                yield ev

        env.run(env.process(driver()))
        assert obs.registry.value("sim.net.flushes") == 0
