"""Unit tests for the disk service model."""

import numpy as np
import pytest

from repro.sim.core import Environment
from repro.sim.disk import Disk


def make_disk(read=100.0, write=50.0, cache=0.0, seed=0):
    env = Environment()
    rng = np.random.default_rng(seed)
    return env, Disk(env, read_bandwidth=read, write_bandwidth=write,
                     cache_hit_ratio=cache, rng=rng)


def run_and_time(env, event):
    def main():
        yield event
        return env.now

    return env.run(env.process(main()))


def test_write_service_time():
    env, disk = make_disk()
    assert run_and_time(env, disk.write(100)) == pytest.approx(2.0)
    assert disk.bytes_written == 100


def test_read_service_time():
    env, disk = make_disk()
    assert run_and_time(env, disk.read(100)) == pytest.approx(1.0)
    assert disk.bytes_read == 100


def test_fcfs_serialization():
    env, disk = make_disk()
    e1 = disk.write(50)   # 1s
    e2 = disk.write(50)   # queued behind

    def main():
        t1 = yield e1
        t2 = yield e2
        return env.now

    assert env.run(env.process(main())) == pytest.approx(2.0)


def test_reads_and_writes_share_the_spindle():
    env, disk = make_disk()
    disk.write(50)  # holds spindle 1s
    e = disk.read(100)  # 1s service after the write
    assert run_and_time(env, e) == pytest.approx(2.0)


def test_cache_hits_bypass_spindle():
    env, disk = make_disk(cache=1.0)
    disk.write(5000)  # long write holding the spindle
    e = disk.read(100)
    t = run_and_time(env, e)
    assert t < 1.0  # did not wait for the 100 s write
    assert disk.cache_hits == 1 and disk.cache_misses == 0


def test_cache_ratio_statistics():
    env, disk = make_disk(cache=0.5, seed=7)
    events = [disk.read(10) for _ in range(200)]

    def main():
        for e in events:
            yield e

    env.run(env.process(main()))
    ratio = disk.cache_hits / (disk.cache_hits + disk.cache_misses)
    assert 0.35 < ratio < 0.65


def test_zero_byte_read_is_free():
    env, disk = make_disk()
    assert run_and_time(env, disk.read(0)) == pytest.approx(0.0)


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Disk(env, read_bandwidth=0, write_bandwidth=1)
    with pytest.raises(ValueError):
        Disk(env, read_bandwidth=1, write_bandwidth=1, cache_hit_ratio=2.0)
    _env, disk = make_disk()
    with pytest.raises(ValueError):
        disk.write(-1)
    with pytest.raises(ValueError):
        disk.read(-1)
