"""Unit tests for simulation resources and stores."""

import pytest

from repro.sim.core import Environment
from repro.sim.resources import Lock, Resource, Store


@pytest.fixture()
def env():
    return Environment()


class TestResource:
    def test_serializes_beyond_capacity(self, env):
        res = Resource(env, capacity=2)
        spans = {}

        def worker(name):
            req = yield res.request()
            start = env.now
            yield env.timeout(10)
            res.release(req)
            spans[name] = (start, env.now)

        for name in "abcd":
            env.process(worker(name))
        env.run()
        # 4 jobs, 2 at a time, 10s each -> two waves
        assert spans["a"][0] == 0 and spans["b"][0] == 0
        assert spans["c"][0] == 10 and spans["d"][0] == 10

    def test_fifo_admission(self, env):
        res = Resource(env, capacity=1)
        order = []

        def worker(name, hold):
            req = yield res.request()
            order.append(name)
            yield env.timeout(hold)
            res.release(req)

        for name in "abc":
            env.process(worker(name, 1))
        env.run()
        assert order == ["a", "b", "c"]

    def test_queue_length(self, env):
        res = Resource(env, capacity=1)
        observed = []

        def holder():
            req = yield res.request()
            yield env.timeout(5)
            observed.append(res.queue_length)
            res.release(req)

        def waiter():
            req = yield res.request()
            res.release(req)

        env.process(holder())
        env.process(waiter())
        env.run()
        assert observed == [1]

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)

        def holder():
            req = yield res.request()
            yield env.timeout(5)
            res.release(req)

        env.process(holder())

        def canceller():
            yield env.timeout(1)
            req = res.request()
            res.cancel(req)
            return res.queue_length

        assert env.run(env.process(canceller())) == 0
        env.run()

    def test_release_foreign_request_rejected(self, env):
        res1 = Resource(env, capacity=1)
        res2 = Resource(env, capacity=1)

        def proc():
            req = yield res1.request()
            with pytest.raises(ValueError):
                res2.release(req)
            res1.release(req)

        env.run(env.process(proc()))

    def test_held_releases_on_error(self, env):
        res = Resource(env, capacity=1)

        def failing_body():
            yield env.timeout(1)
            raise ValueError("body failed")

        def outer():
            with pytest.raises(ValueError):
                yield env.process(res.held(failing_body()))
            # the unit must be free again
            req = yield res.request()
            res.release(req)
            return "reacquired"

        assert env.run(env.process(outer())) == "reacquired"

    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)


class TestLock:
    def test_is_single_slot(self, env):
        lock = Lock(env)
        assert lock.capacity == 1


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("item")

        def getter():
            value = yield store.get()
            return value

        assert env.run(env.process(getter())) == "item"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def getter():
            value = yield store.get()
            return (env.now, value)

        def putter():
            yield env.timeout(3)
            store.put("late")

        env.process(putter())
        assert env.run(env.process(getter())) == (3.0, "late")

    def test_fifo_ordering(self, env):
        store = Store(env)
        for i in range(3):
            store.put(i)
        got = []

        def getter():
            for _ in range(3):
                got.append((yield store.get()))

        env.run(env.process(getter()))
        assert got == [0, 1, 2]

    def test_len(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
