"""Unit tests for record writers and job-model pieces not covered
elsewhere (Counters, Context, JobResult)."""

import threading

import pytest

from repro.bsfs import BSFS
from repro.common.config import BlobSeerConfig
from repro.mapreduce.io.records import TextRecordWriter, to_bytes
from repro.mapreduce.job import Context, Counters, JobResult, default_partitioner


@pytest.fixture()
def fs():
    return BSFS(
        config=BlobSeerConfig(page_size=1024, metadata_providers=2), n_providers=3
    ).file_system()


class TestToBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (b"raw", b"raw"),
            ("text", b"text"),
            (42, b"42"),
            (3.5, b"3.5"),
            ((b"a", 1), b"(b'a', 1)"),
        ],
    )
    def test_conversions(self, value, expected):
        assert to_bytes(value) == expected


class TestTextRecordWriter:
    def test_tab_newline_framing(self, fs):
        stream = fs.create("/out")
        writer = TextRecordWriter(stream)
        writer.write(b"key", 7)
        writer.write("word", "count")
        writer.close()
        assert fs.read_all("/out") == b"key\t7\nword\tcount\n"
        assert writer.records == 2
        assert writer.bytes_written == len(b"key\t7\nword\tcount\n")


class TestCounters:
    def test_thread_safety(self):
        counters = Counters()

        def bump():
            for _ in range(1000):
                counters.increment("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counters.get("n") == 8000

    def test_snapshot_is_copy(self):
        counters = Counters()
        counters.increment("a", 5)
        snap = counters.snapshot()
        counters.increment("a", 5)
        assert snap == {"a": 5}


class TestContext:
    def test_unbound_emit_fails(self):
        ctx = Context(Counters())
        with pytest.raises(AssertionError):
            ctx.emit(b"k", 1)

    def test_write_is_emit(self):
        ctx = Context(Counters())
        got = []
        ctx._bind(lambda k, v: got.append((k, v)))
        ctx.write(b"k", 1)
        ctx.emit(b"k2", 2)
        assert got == [(b"k", 1), (b"k2", 2)]


class TestDefaultPartitioner:
    def test_in_range_and_stable(self):
        for key in (b"x", "word", 123):
            p = default_partitioner(key, 7)
            assert 0 <= p < 7
            assert p == default_partitioner(key, 7)


class TestJobResult:
    def test_output_file_count(self):
        result = JobResult(
            job_name="j",
            output_files=["/out/a", "/out/b"],
            counters={},
            n_map_tasks=3,
            n_reduce_tasks=2,
            elapsed_seconds=1.0,
        )
        assert result.output_file_count == 2
