"""Tests for pipelined Map/Reduce (the paper's §5 future work)."""

import pytest

from repro.bsfs import BSFS
from repro.common.config import BlobSeerConfig
from repro.common.errors import JobFailedError, MapReduceError
from repro.mapreduce import MapReduceCluster, PipelineStage, run_pipeline
from repro.workloads import text_corpus


def wc_map(off, line, ctx):
    for w in line.split():
        ctx.emit(w, 1)


def wc_red(k, vs, ctx):
    ctx.emit(k, sum(vs))


def count_map(off, line, ctx):
    _w, c = line.split(b"\t")
    ctx.emit(b"total", int(c))


def count_red(k, vs, ctx):
    ctx.emit(k, sum(vs))


@pytest.fixture()
def env():
    dep = BSFS(
        config=BlobSeerConfig(page_size=4096, metadata_providers=2), n_providers=4
    )
    fs = dep.file_system("pipe")
    fs.write_all("/in/doc", text_corpus(30_000, seed=3))
    cluster = MapReduceCluster(
        fs, hosts=[f"provider-{i:03d}" for i in range(4)]
    )
    return fs, cluster


STAGES = [
    PipelineStage("wordcount", wc_map, wc_red, n_reducers=3, combiner_fn=wc_red),
    PipelineStage("total", count_map, count_red, n_reducers=1),
]


class TestSequential:
    def test_two_stage_chain(self, env):
        fs, cluster = env
        result = run_pipeline(cluster, STAGES, ["/in/doc"], "/seq", overlap=False)
        assert not result.overlapped
        assert len(result.stage_outputs) == 2
        total = fs.read_all(result.stage_outputs[-1][0])
        # total word count equals corpus word count
        n_words = len(fs.read_all("/in/doc").split())
        assert total == b"total\t%d\n" % n_words

    def test_separate_mode_many_files(self, env):
        fs, cluster = env
        result = run_pipeline(
            cluster, STAGES, ["/in/doc"], "/sep", output_mode="separate"
        )
        assert len(result.stage_outputs[0]) == 3  # one per reducer

    def test_empty_pipeline_rejected(self, env):
        _fs, cluster = env
        with pytest.raises(MapReduceError):
            run_pipeline(cluster, [], ["/in/doc"], "/x")


class TestOverlapped:
    def test_overlap_equals_sequential_output(self, env):
        fs, cluster = env
        seq = run_pipeline(cluster, STAGES, ["/in/doc"], "/a", overlap=False)
        ov = run_pipeline(cluster, STAGES, ["/in/doc"], "/b", overlap=True)
        assert ov.overlapped
        a = fs.read_all(seq.stage_outputs[-1][0])
        b = fs.read_all(ov.stage_outputs[-1][0])
        assert sorted(a.splitlines()) == sorted(b.splitlines())

    def test_three_stage_overlap(self, env):
        fs, cluster = env

        def ident_map(off, line, ctx):
            ctx.emit(line.split(b"\t")[0], line)

        def ident_red(k, vs, ctx):
            for v in vs:
                ctx.emit(k, b"seen")

        stages = STAGES + [PipelineStage("ident", ident_map, ident_red, n_reducers=1)]
        result = run_pipeline(cluster, stages, ["/in/doc"], "/c", overlap=True)
        out = fs.read_all(result.stage_outputs[-1][0])
        assert out == b"total\tseen\n"

    def test_overlap_requires_shared_mode(self, env):
        _fs, cluster = env
        with pytest.raises(MapReduceError):
            run_pipeline(
                cluster, STAGES, ["/in/doc"], "/d",
                output_mode="separate", overlap=True,
            )

    def test_overlap_counters(self, env):
        _fs, cluster = env
        result = run_pipeline(cluster, STAGES, ["/in/doc"], "/e", overlap=True)
        assert result.counters[1]["map_input_records"] > 0

    def test_upstream_failure_propagates(self, env):
        _fs, cluster = env

        def broken_map(off, line, ctx):
            raise RuntimeError("stage-0 is broken")

        stages = [
            PipelineStage("broken", broken_map, wc_red, n_reducers=1),
            PipelineStage("downstream", count_map, count_red, n_reducers=1),
        ]
        with pytest.raises(JobFailedError):
            run_pipeline(cluster, stages, ["/in/doc"], "/f", overlap=True)
