"""Unit tests for the shuffle machinery."""

import pytest
from hypothesis import given, strategies as st

from repro.mapreduce.job import Counters, default_partitioner
from repro.mapreduce.shuffle import (
    MapOutputStore,
    merge_sorted_partitions,
    partition_and_sort,
)


class TestPartitionAndSort:
    def test_partitions_are_sorted(self):
        pairs = [(b"c", 1), (b"a", 2), (b"b", 3), (b"a", 4)]
        out = partition_and_sort(pairs, lambda k, n: 0, 1)
        assert out[0] == [(b"a", 2), (b"a", 4), (b"b", 3), (b"c", 1)]

    def test_partitioner_routes_keys(self):
        pairs = [(i, i) for i in range(10)]
        out = partition_and_sort(pairs, lambda k, n: k % n, 3)
        assert sorted(out[0]) == [(i, i) for i in range(0, 10, 3)]

    def test_empty_partitions_omitted(self):
        out = partition_and_sort([(b"x", 1)], lambda k, n: 0, 4)
        assert list(out) == [0]

    def test_bad_partitioner_detected(self):
        with pytest.raises(ValueError):
            partition_and_sort([(b"x", 1)], lambda k, n: 7, 2)

    def test_combiner_reduces_pairs(self):
        def summing(key, values, ctx):
            ctx.emit(key, sum(values))

        pairs = [(b"a", 1)] * 5 + [(b"b", 2)] * 3
        out = partition_and_sort(pairs, lambda k, n: 0, 1, combiner=summing)
        assert out[0] == [(b"a", 5), (b"b", 6)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=60
        ),
        st.integers(min_value=1, max_value=5),
    )
    def test_no_pair_lost(self, pairs, n_parts):
        out = partition_and_sort(pairs, default_partitioner, n_parts)
        flat = [p for bucket in out.values() for p in bucket]
        assert sorted(flat) == sorted(pairs)


class TestMerge:
    def test_merge_groups_by_key(self):
        parts = [
            [(b"a", 1), (b"c", 3)],
            [(b"a", 10), (b"b", 2)],
        ]
        grouped = list(merge_sorted_partitions(parts))
        assert grouped == [(b"a", [1, 10]), (b"b", [2]), (b"c", [3])]

    def test_merge_empty(self):
        assert list(merge_sorted_partitions([])) == []
        assert list(merge_sorted_partitions([[], []])) == []

    @given(
        st.lists(
            st.lists(st.tuples(st.integers(0, 10), st.integers()), max_size=20),
            max_size=5,
        )
    )
    def test_merge_property(self, raw_parts):
        parts = [sorted(p, key=lambda kv: kv[0]) for p in raw_parts]
        grouped = list(merge_sorted_partitions(parts))
        keys = [k for k, _v in grouped]
        assert keys == sorted(set(keys))
        all_values = sorted(
            v for _k, vs in grouped for v in vs
        )
        assert all_values == sorted(v for p in parts for _k, v in p)


class TestMapOutputStore:
    def test_put_get(self):
        store = MapOutputStore()
        store.put(3, 0, [(b"k", 1)])
        assert store.get(3, 0) == [(b"k", 1)]
        assert store.get(3, 1) == []
        assert store.get(9, 0) == []

    def test_discard_map(self):
        store = MapOutputStore()
        store.put(1, 0, [(b"a", 1)])
        store.put(1, 1, [(b"b", 1)])
        store.put(2, 0, [(b"c", 1)])
        store.discard_map(1)
        assert store.get(1, 0) == [] and store.get(1, 1) == []
        assert store.get(2, 0) == [(b"c", 1)]

    def test_map_ids(self):
        store = MapOutputStore()
        store.put(5, 0, [])
        store.put(2, 1, [])
        assert store.map_ids() == [2, 5]

    def test_partition_sizes(self):
        store = MapOutputStore()
        store.put(0, 0, [(b"a", 1), (b"b", 2)])
        store.put(1, 0, [(b"c", 3)])
        assert store.partition_sizes(0) == {0: 2, 1: 1}
