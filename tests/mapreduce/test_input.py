"""Unit + property tests for input splitting and record reading —
the Hadoop line-boundary semantics (no record lost, none read twice)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import HDFSConfig
from repro.hdfs import HDFSCluster
from repro.mapreduce.io.input import (
    FileSplit,
    KeyValueLineRecordReader,
    LineRecordReader,
    compute_splits,
    make_record_reader,
)


def make_fs(chunk=256):
    cluster = HDFSCluster(n_datanodes=3, config=HDFSConfig(chunk_size=chunk), seed=4)
    return cluster.file_system()


class TestComputeSplits:
    def test_block_sized_splits(self):
        fs = make_fs(chunk=256)
        fs.write_all("/f", b"x" * 1000)
        splits = compute_splits(fs, ["/f"])
        assert [s.length for s in splits] == [256, 256, 256, 232]
        assert all(s.hosts for s in splits)

    def test_explicit_split_size(self):
        fs = make_fs()
        fs.write_all("/f", b"x" * 1000)
        splits = compute_splits(fs, ["/f"], split_size=500)
        assert [s.length for s in splits] == [500, 500]

    def test_empty_file_no_splits(self):
        fs = make_fs()
        fs.create("/f").close()
        assert compute_splits(fs, ["/f"]) == []

    def test_directory_expands_to_files(self):
        fs = make_fs()
        fs.write_all("/d/a", b"x" * 100)
        fs.write_all("/d/b", b"y" * 100)
        splits = compute_splits(fs, ["/d"])
        assert sorted({s.path for s in splits}) == ["/d/a", "/d/b"]

    def test_hosts_ranked_by_overlap(self):
        fs = make_fs(chunk=256)
        fs.write_all("/f", b"x" * 1000)
        for split in compute_splits(fs, ["/f"]):
            locs = fs.get_block_locations("/f", split.offset, split.length)
            assert set(split.hosts) == {h for l in locs for h in l.hosts}


class TestLineReader:
    def read_all_splits(self, fs, path, split_size):
        size = fs.file_size(path)
        records = []
        offset = 0
        while offset < size:
            length = min(split_size, size - offset)
            split = FileSplit(path, offset, length)
            records.extend(LineRecordReader(fs, split))
            offset += length
        return records

    def test_single_split_reads_everything(self):
        fs = make_fs()
        fs.write_all("/f", b"aa\nbb\ncc\n")
        records = list(LineRecordReader(fs, FileSplit("/f", 0, 9)))
        assert records == [(0, b"aa"), (3, b"bb"), (6, b"cc")]

    def test_no_trailing_newline(self):
        fs = make_fs()
        fs.write_all("/f", b"aa\nbb")
        records = list(LineRecordReader(fs, FileSplit("/f", 0, 5)))
        assert records == [(0, b"aa"), (3, b"bb")]

    def test_boundary_mid_line(self):
        fs = make_fs()
        fs.write_all("/f", b"aaaa\nbbbb\n")
        first = list(LineRecordReader(fs, FileSplit("/f", 0, 7)))
        second = list(LineRecordReader(fs, FileSplit("/f", 7, 3)))
        assert first == [(0, b"aaaa"), (5, b"bbbb")]
        assert second == []

    def test_boundary_exactly_at_line_start(self):
        fs = make_fs()
        fs.write_all("/f", b"aaaa\nbbbb\n")
        first = list(LineRecordReader(fs, FileSplit("/f", 0, 5)))
        second = list(LineRecordReader(fs, FileSplit("/f", 5, 5)))
        # the line starting exactly at the boundary belongs to the FIRST
        # split (Hadoop's pos <= end rule); the second split skips it
        assert first == [(0, b"aaaa"), (5, b"bbbb")]
        assert second == []

    @settings(max_examples=30, deadline=None)
    @given(
        lines=st.lists(
            st.binary(
                min_size=0, max_size=30
            ).filter(lambda b: b"\n" not in b),
            min_size=1,
            max_size=30,
        ),
        split_size=st.integers(min_value=1, max_value=64),
        trailing_newline=st.booleans(),
    )
    def test_exactly_once_property(self, lines, split_size, trailing_newline):
        """Every line is read by exactly one split, in order."""
        payload = b"\n".join(lines) + (b"\n" if trailing_newline else b"")
        if not payload:
            return
        fs = make_fs()
        fs.write_all("/f", payload)
        records = self.read_all_splits(fs, "/f", split_size)
        expected = payload.split(b"\n")
        if payload.endswith(b"\n"):
            expected = expected[:-1]
        assert [r[1] for r in records] == expected


class TestKeyValueReader:
    def test_tab_separation(self):
        fs = make_fs()
        fs.write_all("/f", b"k1\tv1\nk2\tv2 with\ttabs\nplain\n")
        records = list(KeyValueLineRecordReader(fs, FileSplit("/f", 0, 28)))
        assert records == [
            (b"k1", b"v1"),
            (b"k2", b"v2 with\ttabs"),
            (b"plain", b""),
        ]


def test_make_record_reader_dispatch():
    fs = make_fs()
    fs.write_all("/f", b"a\tb\n")
    split = FileSplit("/f", 0, 4)
    assert isinstance(make_record_reader(fs, split, "text"), LineRecordReader)
    assert isinstance(make_record_reader(fs, split, "kv"), KeyValueLineRecordReader)
    with pytest.raises(ValueError):
        make_record_reader(fs, split, "avro")
