"""Tests for the two output committers — the heart of the paper's
framework modification (Figure 1 vs Figure 2)."""

import threading

import pytest

from repro.bsfs import BSFS
from repro.common.config import BlobSeerConfig
from repro.common.errors import AppendNotSupportedError
from repro.hdfs import HDFSCluster
from repro.mapreduce.io.committers import (
    SeparateFileCommitter,
    SharedAppendCommitter,
    make_committer,
)


@pytest.fixture()
def bsfs_fs():
    return BSFS(
        config=BlobSeerConfig(page_size=1024, metadata_providers=2), n_providers=4
    ).file_system()


@pytest.fixture()
def hdfs_fs():
    return HDFSCluster(n_datanodes=4).file_system()


class TestSeparateFileCommitter:
    """Original Hadoop (Figure 1): temp file per reducer, commit-by-rename."""

    def test_commit_renames_to_part_file(self, hdfs_fs):
        c = SeparateFileCommitter(hdfs_fs, "/out")
        c.setup_job()
        with c.open_task_output(3, attempt=1) as out:
            out.write(b"reducer 3 output")
        path = c.commit_task(3, attempt=1)
        assert path == "/out/part-00003"
        assert hdfs_fs.read_all(path) == b"reducer 3 output"

    def test_one_file_per_reducer(self, hdfs_fs):
        c = SeparateFileCommitter(hdfs_fs, "/out")
        c.setup_job()
        for r in range(4):
            with c.open_task_output(r, 1) as out:
                out.write(b"%d" % r)
            c.commit_task(r, 1)
        c.cleanup_job()
        assert c.output_files() == [f"/out/part-{r:05d}" for r in range(4)]

    def test_abort_discards_attempt(self, hdfs_fs):
        c = SeparateFileCommitter(hdfs_fs, "/out")
        c.setup_job()
        out = c.open_task_output(0, 1)
        out.write(b"partial")
        out.discard()
        c.abort_task(0, 1)
        with c.open_task_output(0, 2) as out:
            out.write(b"retry")
        c.commit_task(0, 2)
        assert hdfs_fs.read_all("/out/part-00000") == b"retry"

    def test_cleanup_removes_temp_dir(self, hdfs_fs):
        c = SeparateFileCommitter(hdfs_fs, "/out")
        c.setup_job()
        assert hdfs_fs.exists("/out/_temporary")
        c.cleanup_job()
        assert not hdfs_fs.exists("/out/_temporary")

    def test_works_on_bsfs_too(self, bsfs_fs):
        c = SeparateFileCommitter(bsfs_fs, "/out")
        c.setup_job()
        with c.open_task_output(0, 1) as out:
            out.write(b"x")
        assert c.commit_task(0, 1) == "/out/part-00000"


class TestSharedAppendCommitter:
    """Modified Hadoop (Figure 2): all reducers append to one file."""

    def test_single_output_file(self, bsfs_fs):
        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()
        for r in range(4):
            with c.open_task_output(r, 1) as out:
                out.write(b"reducer-%d;" % r)
            assert c.commit_task(r, 1) == "/out/part-shared"
        c.cleanup_job()
        assert c.output_files() == ["/out/part-shared"]
        data = bsfs_fs.read_all("/out/part-shared")
        for r in range(4):
            assert b"reducer-%d;" % r in data

    def test_concurrent_reducers(self, bsfs_fs):
        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()

        def reducer(r):
            with c.open_task_output(r, 1) as out:
                out.write(b"R%02d|" % r * 50)
            c.commit_task(r, 1)

        threads = [threading.Thread(target=reducer, args=(r,)) for r in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        data = bsfs_fs.read_all("/out/part-shared")
        assert len(data) == 8 * 4 * 50
        for r in range(8):
            assert data.count(b"R%02d|" % r) == 50

    def test_fails_on_hdfs(self, hdfs_fs):
        """The committer requires append; HDFS refuses — exactly why the
        paper needs BlobSeer."""
        c = SharedAppendCommitter(hdfs_fs, "/out")
        c.setup_job()
        with pytest.raises(AppendNotSupportedError):
            c.open_task_output(0, 1)

    def test_abort_before_close_contributes_nothing(self, bsfs_fs):
        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()
        out = c.open_task_output(0, 1)
        out.write(b"doomed")
        out.discard()
        c.abort_task(0, 1)
        assert bsfs_fs.get_status("/out/part-shared").size == 0


def test_make_committer_dispatch(hdfs_fs):
    assert isinstance(
        make_committer("separate", hdfs_fs, "/o"), SeparateFileCommitter
    )
    assert isinstance(make_committer("shared", hdfs_fs, "/o"), SharedAppendCommitter)
    with pytest.raises(ValueError):
        make_committer("mystery", hdfs_fs, "/o")
