"""Tests for the two output committers — the heart of the paper's
framework modification (Figure 1 vs Figure 2)."""

import threading

import pytest

from repro.bsfs import BSFS
from repro.common.config import BlobSeerConfig
from repro.common.errors import AppendNotSupportedError
from repro.hdfs import HDFSCluster
from repro.mapreduce.io.committers import (
    SeparateFileCommitter,
    SharedAppendCommitter,
    make_committer,
)


@pytest.fixture()
def bsfs_fs():
    return BSFS(
        config=BlobSeerConfig(page_size=1024, metadata_providers=2), n_providers=4
    ).file_system()


@pytest.fixture()
def hdfs_fs():
    return HDFSCluster(n_datanodes=4).file_system()


class TestSeparateFileCommitter:
    """Original Hadoop (Figure 1): temp file per reducer, commit-by-rename."""

    def test_commit_renames_to_part_file(self, hdfs_fs):
        c = SeparateFileCommitter(hdfs_fs, "/out")
        c.setup_job()
        with c.open_task_output(3, attempt=1) as out:
            out.write(b"reducer 3 output")
        path = c.commit_task(3, attempt=1)
        assert path == "/out/part-00003"
        assert hdfs_fs.read_all(path) == b"reducer 3 output"

    def test_one_file_per_reducer(self, hdfs_fs):
        c = SeparateFileCommitter(hdfs_fs, "/out")
        c.setup_job()
        for r in range(4):
            with c.open_task_output(r, 1) as out:
                out.write(b"%d" % r)
            c.commit_task(r, 1)
        c.cleanup_job()
        assert c.output_files() == [f"/out/part-{r:05d}" for r in range(4)]

    def test_abort_discards_attempt(self, hdfs_fs):
        c = SeparateFileCommitter(hdfs_fs, "/out")
        c.setup_job()
        out = c.open_task_output(0, 1)
        out.write(b"partial")
        out.discard()
        c.abort_task(0, 1)
        with c.open_task_output(0, 2) as out:
            out.write(b"retry")
        c.commit_task(0, 2)
        assert hdfs_fs.read_all("/out/part-00000") == b"retry"

    def test_cleanup_removes_temp_dir(self, hdfs_fs):
        c = SeparateFileCommitter(hdfs_fs, "/out")
        c.setup_job()
        assert hdfs_fs.exists("/out/_temporary")
        c.cleanup_job()
        assert not hdfs_fs.exists("/out/_temporary")

    def test_works_on_bsfs_too(self, bsfs_fs):
        c = SeparateFileCommitter(bsfs_fs, "/out")
        c.setup_job()
        with c.open_task_output(0, 1) as out:
            out.write(b"x")
        assert c.commit_task(0, 1) == "/out/part-00000"


class TestSharedAppendCommitter:
    """Modified Hadoop (Figure 2): all reducers append to one file."""

    def test_single_output_file(self, bsfs_fs):
        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()
        for r in range(4):
            with c.open_task_output(r, 1) as out:
                out.write(b"reducer-%d;" % r)
            assert c.commit_task(r, 1) == "/out/part-shared"
        c.cleanup_job()
        assert c.output_files() == ["/out/part-shared"]
        data = bsfs_fs.read_all("/out/part-shared")
        for r in range(4):
            assert b"reducer-%d;" % r in data

    def test_concurrent_reducers(self, bsfs_fs):
        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()

        def reducer(r):
            with c.open_task_output(r, 1) as out:
                out.write(b"R%02d|" % r * 50)
            c.commit_task(r, 1)

        threads = [threading.Thread(target=reducer, args=(r,)) for r in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        data = bsfs_fs.read_all("/out/part-shared")
        assert len(data) == 8 * 4 * 50
        for r in range(8):
            assert data.count(b"R%02d|" % r) == 50

    def test_fails_on_hdfs(self, hdfs_fs):
        """The committer requires append; HDFS refuses — exactly why the
        paper needs BlobSeer."""
        c = SharedAppendCommitter(hdfs_fs, "/out")
        c.setup_job()
        with pytest.raises(AppendNotSupportedError):
            c.open_task_output(0, 1)

    def test_abort_before_close_contributes_nothing(self, bsfs_fs):
        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()
        out = c.open_task_output(0, 1)
        out.write(b"doomed")
        out.discard()
        c.abort_task(0, 1)
        assert bsfs_fs.get_status("/out/part-shared").size == 0


def test_make_committer_dispatch(hdfs_fs):
    assert isinstance(
        make_committer("separate", hdfs_fs, "/o"), SeparateFileCommitter
    )
    assert isinstance(make_committer("shared", hdfs_fs, "/o"), SharedAppendCommitter)
    with pytest.raises(ValueError):
        make_committer("mystery", hdfs_fs, "/o")


class TestSharedCommitterUnderFailures:
    """Failed and retried reduce attempts must never leave partial bytes
    in the shared file: an attempt's output is buffered until close and
    lands as exactly one atomic append."""

    def test_abort_contributes_nothing_even_past_page_size(self, bsfs_fs):
        # more than one page (page_size=1024) of doomed output: without
        # buffer-until-close, full pages would already have shipped
        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()
        out = c.open_task_output(0, 1)
        out.write(b"d" * 5000)
        out.flush()  # a no-op by the invariant, never a partial append
        out.discard()
        c.abort_task(0, 1)
        assert bsfs_fs.get_status("/out/part-shared").size == 0

    def test_failed_then_retried_attempt_appends_once(self, bsfs_fs):
        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()
        out = c.open_task_output(0, attempt=1)
        out.write(b"attempt-1 partial " * 100)
        out.discard()
        c.abort_task(0, attempt=1)
        with c.open_task_output(0, attempt=2) as out:
            out.write(b"attempt-2 final")
        c.commit_task(0, attempt=2)
        assert bsfs_fs.read_all("/out/part-shared") == b"attempt-2 final"

    def test_interleaved_attempts_stay_atomic(self, bsfs_fs):
        # a zombie first attempt still writing while the retry commits
        # must not interleave bytes into the shared file
        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()
        zombie = c.open_task_output(0, attempt=1)
        zombie.write(b"Z" * 3000)
        with c.open_task_output(0, attempt=2) as out:
            out.write(b"ok" * 1000)
        c.commit_task(0, attempt=2)
        zombie.write(b"Z" * 3000)  # still open, still buffering
        zombie.discard()
        c.abort_task(0, attempt=1)
        data = bsfs_fs.read_all("/out/part-shared")
        assert data == b"ok" * 1000

    def test_commit_before_close_is_an_error(self, bsfs_fs):
        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()
        out = c.open_task_output(0, 1)
        out.write(b"x")
        with pytest.raises(ValueError):
            c.commit_task(0, 1)
        out.close()
        c.commit_task(0, 1)

    def test_write_after_close_rejected(self, bsfs_fs):
        from repro.common.errors import FileClosedError

        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()
        out = c.open_task_output(0, 1)
        out.write(b"x")
        out.close()
        with pytest.raises(FileClosedError):
            out.write(b"y")

    def test_empty_attempt_appends_nothing(self, bsfs_fs):
        c = SharedAppendCommitter(bsfs_fs, "/out")
        c.setup_job()
        out = c.open_task_output(0, 1)
        out.close()
        c.commit_task(0, 1)
        assert bsfs_fs.get_status("/out/part-shared").size == 0
